//! The CNN demonstration of §5.1: wrap ~300 existing HTML article pages
//! into a data graph, build the general news site, then derive the
//! "sports only" site from the same database — the paper's showcase of
//! generating multiple sites from one database.
//!
//! ```text
//! cargo run -p strudel-core --example cnn_site
//! ```

use strudel::sites::{news_site, sports_only_site};
use strudel_workload::news::{generate, NewsConfig};

fn main() {
    // ~300 synthetic article pages stand in for the 1998 CNN crawl.
    let corpus = generate(&NewsConfig::default());
    println!(
        "wrapped corpus: {} HTML article pages in {} categories",
        corpus.pages.len(),
        corpus.categories.len()
    );

    let general = news_site(&corpus.pages).build().expect("news site builds");
    let general_out = general.render().expect("renders");
    println!(
        "\ngeneral site: {} query lines, {} templates, {} pages",
        general.stats.query_lines,
        general.stats.templates,
        general_out.pages.len()
    );
    general_out
        .write_to_dir(std::path::Path::new("target/site-cnn"))
        .expect("write general site");

    // "The sports-only query is derived from the original query and only
    // differs in two extra predicates in one where clause. Both sites use
    // the same templates."
    let sports = sports_only_site(&corpus.pages)
        .build()
        .expect("sports site builds");
    let sports_out = sports.render().expect("renders");
    println!(
        "sports-only site: same templates, {} pages (from the same database)",
        sports_out.pages.len()
    );
    sports_out
        .write_to_dir(std::path::Path::new("target/site-cnn-sports"))
        .expect("write sports site");

    println!("\nwrote target/site-cnn/ and target/site-cnn-sports/");
    let front = general_out.page_named("FrontPage.html").unwrap();
    println!("\n--- FrontPage.html (first 400 bytes) ---");
    println!("{}", &front.html[..front.html.len().min(400)]);
}
