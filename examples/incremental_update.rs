//! Incremental site-graph maintenance (§7, built here as an extension):
//! when the underlying data changes, propagate the delta through the
//! site-definition query instead of re-evaluating it — new publications
//! slot into the existing year pages.
//!
//! ```text
//! cargo run --release -p strudel-core --example incremental_update
//! ```

use strudel::graph::{GraphDelta, Oid, Value};
use strudel::schema::incremental::{graphs_equivalent, incremental_update};
use strudel::struql::Evaluator;
use strudel_workload::bib::{generate, BibConfig};

fn main() {
    let bib = generate(&BibConfig {
        entries: 200,
        ..Default::default()
    });
    let site = strudel::sites::homepage_site(&bib, strudel::sites::PERSONAL_DDL_EXAMPLE)
        .build()
        .expect("site builds");
    let old = Evaluator::new(&site.database)
        .eval(&site.program)
        .expect("initial evaluation");
    println!(
        "initial site: {} site nodes over {} data nodes",
        old.new_nodes.len(),
        site.database.graph().node_count()
    );

    // The delta: one brand-new publication.
    let base = site.database.graph().node_count();
    let mut delta = GraphDelta::new();
    delta.add_node(Some("hotoffthepress"));
    let new_pub = Oid::from_index(base);
    delta.add_edge(new_pub, "title", Value::string("Hot off the press"));
    delta.add_edge(new_pub, "author", Value::string("A. Newcomer"));
    delta.add_edge(new_pub, "year", Value::Int(1998));
    delta.add_edge(new_pub, "category", Value::string("web"));
    delta.collect("Publications", Value::Node(new_pub));

    let start = std::time::Instant::now();
    let outcome = incremental_update(&site.program, &site.database, &delta, old)
        .expect("incremental update");
    let t_inc = start.elapsed();

    // Reference: full re-evaluation on the updated data.
    let start = std::time::Instant::now();
    let full = {
        let mut g = site.database.graph().clone();
        delta.apply(&mut g).unwrap();
        let db = strudel::repo::Database::from_graph(g, strudel::repo::IndexLevel::Full);
        Evaluator::new(&db).eval(&site.program).unwrap()
    };
    let t_full = start.elapsed();

    println!(
        "incremental: {:.2}ms ({} rows recomputed); full re-evaluation: {:.2}ms",
        t_inc.as_secs_f64() * 1e3,
        outcome.rows_recomputed,
        t_full.as_secs_f64() * 1e3
    );
    println!(
        "results equivalent: {}",
        graphs_equivalent(&outcome.result.graph, &full.graph)
    );

    // The new paper joined the existing 1998 year page.
    let y98 = outcome
        .result
        .skolem_node("YearPage", &[Value::Int(1998)])
        .expect("1998 year page");
    println!(
        "YearPage(1998) now lists {} papers (the new one included)",
        outcome.result.graph.attr_str(y98, "Paper").count()
    );
}
