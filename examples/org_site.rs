//! The AT&T-Labs-style organization site of §5.1: five data sources in
//! three formats, ~400 member home pages, and the headline claim — the
//! external site costs **zero new query lines**, only a handful of
//! changed templates.
//!
//! ```text
//! cargo run --release -p strudel-core --example org_site
//! ```

use strudel::sites::{org_external_templates, org_site};
use strudel_workload::org::{generate, OrgConfig};

fn main() {
    let data = generate(&OrgConfig::default());
    println!(
        "sources: people.csv ({} rows), departments.csv ({} rows), projects.rec ({} records), \
         demos.rec, {} legacy HTML pages",
        data.people_ids.len(),
        data.department_ids.len(),
        data.project_ids.len(),
        data.legacy_html.len()
    );

    let site = org_site(
        &data.people_csv,
        &data.departments_csv,
        &data.projects_rec,
        &data.demos_rec,
        &data.legacy_html,
    )
    .constraint("forall p in PersonPages : exists r in OrgRoot : r -> * -> p")
    .build()
    .expect("org site builds");

    println!("\n{}", strudel::SiteStats::header());
    println!("{}", site.stats.row());
    for r in &site.source_reports {
        println!(
            "  source '{}': {} nodes, {} edges",
            r.name, r.nodes, r.edges
        );
    }
    for v in &site.verifications {
        println!(
            "  constraint [{}]: static = {:?}, runtime holds = {}",
            v.constraint.source, v.static_verdict, v.runtime_result.holds
        );
    }

    let internal = site.render().expect("internal renders");
    println!("\ninternal site: {} pages", internal.pages.len());

    // The external site: same data graph, same site graph, different
    // templates — "no new queries were written for that site".
    let external = site
        .render_with(&org_external_templates())
        .expect("external renders");
    println!("external site: {} pages, 0 new query lines", external.pages.len());

    internal
        .write_to_dir(std::path::Path::new("target/site-org-internal"))
        .expect("write internal");
    external
        .write_to_dir(std::path::Path::new("target/site-org-external"))
        .expect("write external");
    println!("\nwrote target/site-org-internal/ and target/site-org-external/");

    // Show the visibility difference on one member page.
    let person = internal
        .pages
        .iter()
        .find(|p| p.html.contains("Phone"))
        .expect("someone has a phone");
    let same_ext = external.page_for(person.oid).unwrap();
    println!(
        "\nexample: {} — internal mentions a phone: {}, external: {}",
        person.name,
        person.html.contains("Phone"),
        same_ext.html.contains("Phone"),
    );
}
