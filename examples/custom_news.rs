//! Per-user custom sites (§5.2): "a custom STRUQL query would allow the
//! user to organize his news as he wanted" — the unanticipated benefit the
//! CNN team identified. Each user's category preferences become a
//! *generated* site-definition query, assembled through the programmatic
//! query-builder API (the §7 "API to Strudel"), applied to the same shared
//! article database.
//!
//! ```text
//! cargo run --release -p strudel-core --example custom_news
//! ```

use strudel::struql::builder::{q, ProgramBuilder};
use strudel::struql::{pretty, CmpOp, Evaluator};
use strudel::repo::{Database, IndexLevel};
use strudel::wrappers::html::{wrap_documents, HtmlDoc};
use strudel_workload::news::{generate, NewsConfig};

/// Builds one user's site-definition query: a front page with one section
/// per subscribed category, newest-first headlines limited to the user's
/// interests.
fn custom_query(categories: &[&str]) -> strudel::struql::Program {
    let mut builder = ProgramBuilder::new().block(|b| {
        b.create(q::skolem("MyFront", []))
            .collect("Roots", q::skolem("MyFront", []))
    });
    for cat in categories {
        let cat = cat.to_string();
        builder = builder.block(move |b| {
            b.member("Articles", "a")
                .edge("a", "category", q::var("c"))
                .compare(q::var("c"), CmpOp::Eq, q::val(cat.as_str()))
                .create(q::skolem("MySection", [q::var("c")]))
                .create(q::skolem("MyStory", [q::var("a")]))
                .link(
                    q::skolem("MyFront", []),
                    "section",
                    q::skolem("MySection", [q::var("c")]),
                )
                .link(
                    q::skolem("MySection", [q::var("c")]),
                    "story",
                    q::skolem("MyStory", [q::var("a")]),
                )
                .collect("MyStories", q::skolem("MyStory", [q::var("a")]))
                .nested(|n| {
                    n.edge("a", "title", q::var("t")).link(
                        q::skolem("MyStory", [q::var("a")]),
                        "title",
                        q::var("t"),
                    )
                })
                .nested(|n| {
                    n.edge("a", "date", q::var("d")).link(
                        q::skolem("MyStory", [q::var("a")]),
                        "date",
                        q::var("d"),
                    )
                })
        });
    }
    builder.build().expect("generated query is safe")
}

fn main() {
    // The shared database: one wrapped article corpus for every user.
    let corpus = generate(&NewsConfig::default());
    let docs = HtmlDoc::from_pairs(&corpus.pages);
    let graph = wrap_documents(&docs, "Articles").expect("wraps");
    let db = Database::from_graph(graph, IndexLevel::Full);

    let users = [
        ("alice", vec!["sports", "weather"]),
        ("bob", vec!["world", "sci-tech", "travel"]),
        ("carol", vec!["showbiz"]),
    ];

    for (user, categories) in users {
        let program = custom_query(&categories);
        let result = Evaluator::new(&db).eval(&program).expect("evaluates");
        println!(
            "{user}: {} categories -> {} site nodes, {} stories (query generated, {} lines)",
            categories.len(),
            result.new_nodes.len(),
            result.graph.members_str("MyStories").len(),
            pretty(&program).lines().count(),
        );
    }

    // Show one generated query, the artifact a QBE-style GUI would emit.
    println!("\n--- carol's generated STRUQL ---\n{}", pretty(&custom_query(&["showbiz"])));
}
