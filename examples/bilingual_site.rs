//! The INRIA-Rodin-style bilingual site of §5.1: one STRUQL query defines
//! an English view and a French view and cross-links every pair of
//! equivalent pages.
//!
//! ```text
//! cargo run -p strudel-core --example bilingual_site
//! ```

use strudel::sites::bilingual_site;

const ITEMS: &str = r#"
object about in Items {
  title-en : "About the institute";
  title-fr : "A propos de l'institut";
  body-en  : "We study declarative web-site management.";
  body-fr  : "Nous etudions la gestion declarative de sites web.";
}
object pubs in Items {
  title-en : "Publications";
  title-fr : "Publications";
  body-en  : "Technical reports and papers.";
  body-fr  : "Rapports techniques et articles.";
}
object join in Items {
  title-en : "Join us";
  title-fr : "Nous rejoindre";
  body-en  : "Open positions for researchers.";
}
"#;

fn main() {
    let site = bilingual_site(ITEMS).build().expect("site builds");
    println!(
        "one {}-line query defines both views ({} link clauses)",
        site.stats.query_lines, site.stats.link_clauses
    );

    let out = site.render().expect("renders");
    println!("rendered {} pages (both languages):", out.pages.len());
    for p in &out.pages {
        let lang = if p.name.starts_with("Fr") { "fr" } else { "en" };
        println!("  [{lang}] {}", p.name);
    }

    // Every English page links to its French equivalent and vice versa.
    let g = &site.result.graph;
    let about = site.database.graph().node_by_name("about").unwrap();
    let en = site
        .result
        .skolem_node("EnPage", &[strudel::graph::Value::Node(about)])
        .unwrap();
    let fr = site
        .result
        .skolem_node("FrPage", &[strudel::graph::Value::Node(about)])
        .unwrap();
    println!(
        "\ncross-links: EnPage(about) -french-> {:?}; FrPage(about) -english-> {:?}",
        g.first_attr_str(en, "french").and_then(|v| v.as_node()),
        g.first_attr_str(fr, "english").and_then(|v| v.as_node()),
    );
    out.write_to_dir(std::path::Path::new("target/site-bilingual"))
        .expect("write site");
    println!("wrote target/site-bilingual/");
}
