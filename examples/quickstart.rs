//! Quickstart: a researcher homepage from a BibTeX file, end to end.
//!
//! ```text
//! cargo run -p strudel-core --example quickstart
//! ```
//!
//! Demonstrates the three separated tasks of §1: (1) wrap + mediate the
//! data, (2) define the site structure declaratively in STRUQL, (3) render
//! with HTML templates — then writes the browsable site to
//! `target/site-quickstart/`.

use strudel::{SiteBuilder, Source, SourceFormat};

const BIB: &str = r#"
@string{sigmod = "SIGMOD Conference"}

@inproceedings{strudel98,
  title     = {Catching the Boat with Strudel: Experiences with a Web-Site
               Management System},
  author    = {Mary Fernandez and Daniela Florescu and Jaewoo Kang and
               Alon Levy and Dan Suciu},
  booktitle = sigmod,
  year      = 1998,
  category  = {web-site management},
  abstract  = {abstracts/strudel98.txt}
}

@article{strudel97,
  title    = {A Query Language for a Web-Site Management System},
  author   = {Mary Fernandez and Daniela Florescu and Alon Levy and Dan Suciu},
  journal  = {SIGMOD Record},
  year     = 1997,
  month    = {September},
  category = {query languages}
}
"#;

fn main() {
    let site = SiteBuilder::new("quickstart")
        .source(Source::new("bib", SourceFormat::Bibtex, BIB))
        .query(
            r#"
            create HomePage()
            collect Roots(HomePage())

            where Publications(x)
            create PaperPage(x)
            link HomePage() -> "paper" -> PaperPage(x)
            collect Papers(PaperPage(x))
            { where x -> l -> v
              link PaperPage(x) -> l -> v }
            { where x -> "year" -> y
              create YearPage(y)
              link YearPage(y) -> "Year" -> y,
                   YearPage(y) -> "paper" -> PaperPage(x),
                   HomePage() -> "year" -> YearPage(y)
              collect Years(YearPage(y)) }
        "#,
        )
        .template(
            "home",
            r#"<html><head><title>Publications</title></head><body>
<h1>My publications</h1>
<h2>By year</h2>
<SFMT year UL ORDER=descend KEY=Year>
<h2>All papers</h2>
<SFMT paper UL ORDER=ascend KEY=title>
</body></html>"#,
        )
        .template(
            "paper",
            r#"<html><body>
<h2><SFMT title></h2>
<p><SFMT author ENUM DELIM=", "></p>
<SIF booktitle><p>In <SFMT booktitle>, <SFMT year>.</p></SIF>
<SIF journal><p><SFMT journal>, <SFMT year><SIF month> (<SFMT month>)</SIF>.</p></SIF>
</body></html>"#,
        )
        .template("year", r#"<html><body><h1><SFMT Year></h1><SFMT paper UL></body></html>"#)
        .assign_object("HomePage", "home")
        .assign_collection("Papers", "paper")
        .assign_collection("Years", "year")
        .root_collection("Roots")
        .constraint("forall p in Papers : exists r in Roots : r -> * -> p")
        .build()
        .expect("site builds");

    println!("site '{}' built:", site.name);
    println!("  {}", strudel::SiteStats::header());
    println!("  {}", site.stats.row());
    for v in &site.verifications {
        println!(
            "  constraint [{}]: static = {:?}, runtime holds = {}",
            v.constraint.source, v.static_verdict, v.runtime_result.holds
        );
    }

    let output = site.render().expect("site renders");
    let dir = std::path::Path::new("target/site-quickstart");
    output.write_to_dir(dir).expect("write site");
    println!("\nwrote {} pages to {}:", output.pages.len(), dir.display());
    for p in &output.pages {
        println!("  {} ({} bytes)", p.name, p.html.len());
    }
}
