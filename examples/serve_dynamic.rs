//! A dynamic web site served at "click time" by `strudel-serve` — pages
//! are computed on demand from the site schema's incremental queries
//! (§2.5/§7), rendered with the site's real templates, cached, and
//! invalidated precisely when the data changes. Plain `std::net`, no
//! dependencies.
//!
//! The example starts the server on an ephemeral port with a small worker
//! pool, crawls itself over HTTP (front page → section → article), edits
//! one article through a data delta to show precise cache invalidation,
//! prints the server stats, and exits — so it doubles as an end-to-end
//! check. Pass `--serve` to keep it running and browse it yourself.
//!
//! ```text
//! cargo run --release -p strudel-serve --example serve_dynamic            # self-test
//! cargo run --release -p strudel-serve --example serve_dynamic -- --serve # interactive
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use strudel::sites::news_site;
use strudel_schema::dynamic::Mode;
use strudel_serve::{serve, ServerConfig, SiteService};
use strudel_workload::news::{generate, NewsConfig};

fn fetch(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

/// First `/page/…` href in `html` that differs from `not_this`.
fn first_page_link(html: &str, not_this: &str) -> Option<String> {
    html.split("href=\"")
        .skip(1)
        .filter_map(|rest| {
            let href = &rest[..rest.find('"')?];
            href.starts_with("/page/").then(|| href.to_string())
        })
        .find(|href| href != not_this)
}

fn main() {
    let serve_forever = std::env::args().any(|a| a == "--serve");

    let corpus = generate(&NewsConfig {
        articles: 200,
        ..Default::default()
    });
    let site = news_site(&corpus.pages).build().expect("site builds");
    let service = Arc::new(SiteService::new(&site, Mode::ContextLookahead));

    let server = serve(
        service.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    println!("dynamic Strudel site at http://{addr}/ (click-time evaluation, nothing pre-rendered)");

    if serve_forever {
        // Park forever; ^C exits.
        loop {
            std::thread::park();
        }
    }

    // Self-test: front page → first section → first story, over HTTP.
    let index = fetch(addr, "/");
    assert!(index.starts_with("HTTP/1.1 200"), "index serves");
    let front_path = first_page_link(&index, "").expect("index links the front page");
    let front = fetch(addr, &front_path);
    assert!(front.starts_with("HTTP/1.1 200"), "front page serves");
    println!("\nGET {front_path} -> {} bytes", front.len());

    let section_path = first_page_link(&front, &front_path).expect("front links a section");
    let section = fetch(addr, &section_path);
    assert!(section.starts_with("HTTP/1.1 200"));
    println!("GET {section_path} -> {} bytes", section.len());

    let article_path = section
        .split("href=\"")
        .skip(1)
        .filter_map(|rest| {
            let href = &rest[..rest.find('"')?];
            href.starts_with("/page/ArticlePage").then(|| href.to_string())
        })
        .next()
        .expect("section links its stories");
    let article = fetch(addr, &article_path);
    assert!(article.starts_with("HTTP/1.1 200"));
    println!("GET {article_path} -> {} bytes", article.len());

    // Edit one article through a delta: its page (and the pages listing
    // it) re-render; everything else keeps serving from cache.
    let db = service.engine().database();
    let key = strudel_serve::router::parse_page_path(&article_path, db.graph())
        .expect("article URL round-trips");
    let strudel::graph::Value::Node(article_oid) = key.args[0].clone() else {
        panic!("article pages are keyed by their data node");
    };
    let old_title = db
        .graph()
        .first_attr_str(article_oid, "title")
        .expect("articles have titles")
        .clone();
    drop(db);
    let mut delta = strudel::graph::GraphDelta::new();
    delta.remove_edge(article_oid, "title", old_title);
    delta.add_edge(
        article_oid,
        "title",
        strudel::graph::Value::string("BREAKING: delta applied"),
    );
    let outcome = service.apply_delta(&delta).expect("delta applies");
    println!(
        "\ndelta: {} page views evicted, {} cached renditions evicted",
        outcome.engine.evicted, outcome.html_evicted
    );
    let re_fetched = fetch(addr, &article_path);
    assert!(
        re_fetched.contains("BREAKING: delta applied"),
        "edited article re-renders with the new title"
    );

    let metrics = fetch(addr, "/metrics");
    assert!(metrics.contains("strudel_requests_total"));
    let stats = service.stats();
    println!(
        "\nserver stats: {} requests (p50 {} µs, p99 {} µs), html cache {:.0}% hit, {} engine queries",
        stats.total.requests,
        stats.total.p50_us,
        stats.total.p99_us,
        stats.html_cache.hit_rate() * 100.0,
        stats.engine.queries_run,
    );

    server.shutdown();
    println!("\nself-test passed: pages served at click time, delta invalidation precise");
}
