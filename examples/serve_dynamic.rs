//! A dynamic web server over a Strudel site — pages are computed at
//! "click time" from the site schema's incremental queries (§2.5/§7),
//! never materialized up front. Plain `std::net`, no dependencies.
//!
//! The example starts the server on an ephemeral port, issues a few HTTP
//! requests against itself (front page → section → article), prints what
//! it got, and exits — so it doubles as an end-to-end check. Pass
//! `--serve` to keep it running and browse it yourself.
//!
//! ```text
//! cargo run --release -p strudel-core --example serve_dynamic            # self-test
//! cargo run --release -p strudel-core --example serve_dynamic -- --serve # interactive
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

use strudel::schema::dynamic::{DynTarget, DynamicSite, Mode, PageKey};
use strudel::sites::news_site;
use strudel_workload::news::{generate, NewsConfig};

/// Maps URL paths to page keys (and back) for the session.
#[derive(Default)]
struct Router {
    by_id: Vec<PageKey>,
    ids: HashMap<PageKey, usize>,
}

impl Router {
    fn url_for(&mut self, key: &PageKey) -> String {
        let id = *self.ids.entry(key.clone()).or_insert_with(|| {
            self.by_id.push(key.clone());
            self.by_id.len() - 1
        });
        format!("/p/{id}")
    }

    fn key_for(&self, path: &str) -> Option<PageKey> {
        let id: usize = path.strip_prefix("/p/")?.parse().ok()?;
        self.by_id.get(id).cloned()
    }
}

fn render_page(
    engine: &mut DynamicSite<'_>,
    router: &mut Router,
    key: &PageKey,
) -> Result<String, String> {
    let view = engine.visit(key).map_err(|e| e.to_string())?;
    let mut html = format!(
        "<html><head><title>{}</title></head><body><h1>{}</h1>\n<dl>\n",
        key.symbol, key.symbol
    );
    for (label, target) in &view.edges {
        html.push_str("<dt>");
        html.push_str(label);
        html.push_str("</dt><dd>");
        match target {
            DynTarget::Page(k) => {
                let url = router.url_for(k);
                html.push_str(&format!("<a href=\"{url}\">{}</a>", k.symbol));
            }
            DynTarget::Data(v) => {
                html.push_str(&strudel::template::escape_html(&v.display_text()));
            }
        }
        html.push_str("</dd>\n");
    }
    html.push_str("</dl>\n<p><a href=\"/\">front page</a></p></body></html>\n");
    Ok(html)
}

fn handle(
    stream: &mut TcpStream,
    engine: &mut DynamicSite<'_>,
    router: &mut Router,
    front: &PageKey,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let path = request_line.split_whitespace().nth(1).unwrap_or("/").to_string();
    // Drain headers.
    let mut line = String::new();
    while reader.read_line(&mut line)? > 2 {
        line.clear();
    }

    let key = if path == "/" {
        Some(front.clone())
    } else {
        router.key_for(&path)
    };
    let (status, body) = match key {
        Some(k) => match render_page(engine, router, &k) {
            Ok(html) => ("200 OK", html),
            Err(e) => ("500 Internal Server Error", format!("<pre>{e}</pre>")),
        },
        None => ("404 Not Found", "<h1>404</h1>".to_string()),
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: text/html; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn fetch(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

fn main() {
    let serve_forever = std::env::args().any(|a| a == "--serve");

    let corpus = generate(&NewsConfig {
        articles: 200,
        ..Default::default()
    });
    let site = news_site(&corpus.pages).build().expect("site builds");
    let program = site.program.clone();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    println!("dynamic Strudel site at http://{addr}/ (click-time evaluation, nothing pre-rendered)");

    let served = Arc::new(Mutex::new(0usize));
    let served_clone = Arc::clone(&served);

    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut engine = DynamicSite::new(&site.database, &program, Mode::Context);
            let mut router = Router::default();
            let front = engine.roots("FrontRoot").expect("roots")[0].clone();
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                let _ = handle(&mut stream, &mut engine, &mut router, &front);
                let mut count = served_clone.lock().unwrap();
                *count += 1;
                if !serve_forever && *count >= 3 {
                    let m = engine.metrics();
                    println!(
                        "\nserver stats: {} clicks, {} guard evaluations, {} rows, {} cached pages",
                        m.clicks,
                        m.queries_run,
                        m.rows_produced,
                        engine.cached_pages()
                    );
                    break;
                }
            }
        });

        if !serve_forever {
            // Self-test: front page → first section → first story.
            let front_html = fetch(addr, "/");
            assert!(front_html.starts_with("HTTP/1.1 200"), "front page serves");
            println!("\nGET / -> {} bytes", front_html.len());

            let section_path = front_html
                .split("href=\"")
                .find_map(|s| s.strip_prefix("/p/").map(|r| {
                    format!("/p/{}", &r[..r.find('"').unwrap()])
                }))
                .expect("front page links to a section");
            let section_html = fetch(addr, &section_path);
            assert!(section_html.starts_with("HTTP/1.1 200"));
            println!("GET {section_path} -> {} bytes", section_html.len());

            let article_path = section_html
                .split("href=\"")
                .filter_map(|s| {
                    s.strip_prefix("/p/")
                        .map(|r| format!("/p/{}", &r[..r.find('"').unwrap()]))
                })
                .find(|p| p != &section_path)
                .expect("section links to stories");
            let article_html = fetch(addr, &article_path);
            assert!(article_html.starts_with("HTTP/1.1 200"));
            println!("GET {article_path} -> {} bytes", article_html.len());
            println!("\nself-test passed: three pages served at click time");
        }
    });
}
