//! Dynamic ("click-time") site evaluation (§2.5/§7): instead of
//! materializing the whole site, serve each page's out-edges on demand
//! from per-node incremental queries derived from the site schema —
//! comparing the naive, context-seeded, and look-ahead strategies.
//!
//! ```text
//! cargo run --release -p strudel-core --example dynamic_browsing
//! ```

use strudel::schema::dynamic::{DynTarget, DynamicSite, Mode, PageKey};
use strudel::sites::news_site;
use strudel_workload::news::{generate, NewsConfig};

fn main() {
    let corpus = generate(&NewsConfig {
        articles: 500,
        ..Default::default()
    });
    let site = news_site(&corpus.pages).build().expect("site builds");
    let program = site.program.clone();

    for mode in [Mode::Naive, Mode::Context, Mode::ContextLookahead] {
        let engine = DynamicSite::new(site.database.clone(), &program, mode);
        let roots = engine.roots("FrontRoot").expect("roots");
        let mut current: PageKey = roots[0].clone();
        let mut visited = vec![current.clone()];

        let start = std::time::Instant::now();
        for _ in 0..20 {
            let view = engine.visit(&current).expect("click");
            // Follow the first link to an unvisited page, else jump home.
            current = view
                .edges
                .iter()
                .find_map(|(_, t)| match t {
                    DynTarget::Page(k) if !visited.contains(k) => Some(k.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| roots[0].clone());
            visited.push(current.clone());
        }
        let elapsed = start.elapsed();
        let m = engine.metrics();
        println!(
            "{mode:?}: 20 clicks in {:.2}ms — {} guard evaluations, {} rows, {} cache hits, {} pages cached",
            elapsed.as_secs_f64() * 1e3,
            m.queries_run,
            m.rows_produced,
            m.cache_hits,
            engine.cached_pages()
        );
    }

    // Show one dynamically computed page.
    let engine = DynamicSite::new(site.database.clone(), &program, Mode::Context);
    let article = site.database.graph().node_by_name("article7.html").unwrap();
    let key = PageKey {
        symbol: "ArticlePage".into(),
        args: vec![strudel::graph::Value::Node(article)],
    };
    let view = engine.visit(&key).expect("click");
    println!("\nArticlePage(article7.html) computed at click time:");
    for (label, target) in view.edges.iter().take(8) {
        match target {
            DynTarget::Page(k) => println!("  {label} -> page {}({} args)", k.symbol, k.args.len()),
            DynTarget::Data(v) => println!("  {label} -> {v}"),
        }
    }
}
