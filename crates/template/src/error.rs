//! Template errors.

use std::fmt;

/// A template parse or generation error.
#[derive(Clone, Debug, PartialEq)]
pub struct TemplateError {
    /// 1-based line in the template source (0 for generation errors).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl TemplateError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> Self {
        TemplateError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "template error at line {}: {}", self.line, self.message)
        } else {
            write!(f, "template error: {}", self.message)
        }
    }
}

impl std::error::Error for TemplateError {}
