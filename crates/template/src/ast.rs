//! Template abstract syntax.

/// A parsed template: a sequence of nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct Template {
    /// Top-level nodes.
    pub nodes: Vec<Node>,
    /// Source line count (the paper reports template sizes in lines).
    pub line_count: usize,
}

/// One template node.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// Literal HTML text, passed through verbatim.
    Text(String),
    /// `<SFMT expr directives…>`
    Fmt {
        /// What to render.
        expr: AttrExpr,
        /// How to render it.
        directives: Directives,
    },
    /// `<SIF expr> then <SELSE> else </SIF>`
    If {
        /// The existence test.
        cond: AttrExpr,
        /// Taken when the expression has at least one value.
        then: Vec<Node>,
        /// Taken otherwise (empty when no `<SELSE>`).
        else_: Vec<Node>,
    },
    /// `<SFOR var IN expr …> body </SFOR>`
    For {
        /// Loop variable, referenced as `$var` in the body.
        var: String,
        /// The values to iterate.
        expr: AttrExpr,
        /// Emitted between iterations.
        delim: Option<String>,
        /// Optional sort.
        order: Option<OrderDir>,
        /// Sort key attribute for object values.
        key: Option<String>,
        /// Body nodes.
        body: Vec<Node>,
    },
}

/// Where an attribute expression starts navigating.
#[derive(Clone, Debug, PartialEq)]
pub enum Base {
    /// The object the template is being rendered for.
    CurrentObject,
    /// A loop variable bound by an enclosing `<SFOR>`.
    LoopVar(String),
}

/// An attribute expression: a base and a bounded path of attribute names.
#[derive(Clone, Debug, PartialEq)]
pub struct AttrExpr {
    /// Starting point.
    pub base: Base,
    /// Attribute names navigated in order.
    pub path: Vec<String>,
}

impl AttrExpr {
    /// An expression navigating `path` from the current object.
    pub fn attrs(path: &[&str]) -> Self {
        AttrExpr {
            base: Base::CurrentObject,
            path: path.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// List rendering for multi-valued format expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ListKind {
    /// `<ul>` with one `<li>` per value.
    Unordered,
    /// `<ol>` with one `<li>` per value.
    Ordered,
}

/// Sort direction for `ORDER=`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderDir {
    /// Lexicographically / numerically increasing.
    Ascend,
    /// Decreasing.
    Descend,
}

/// Directives on a format expression.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Directives {
    /// Render referenced objects inline instead of linking to their pages.
    pub embed: bool,
    /// Emit all values (implied by `UL`/`OL`).
    pub enumerate: bool,
    /// Separator between enumerated values.
    pub delim: Option<String>,
    /// Render values as an HTML list.
    pub list: Option<ListKind>,
    /// Sort the values.
    pub order: Option<OrderDir>,
    /// Sort key attribute for object values.
    pub key: Option<String>,
}

impl Directives {
    /// Whether all values are emitted (ENUM, UL, or OL present).
    pub fn multi(&self) -> bool {
        self.enumerate || self.list.is_some()
    }
}
