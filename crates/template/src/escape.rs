//! HTML escaping.

/// Escapes text for inclusion in HTML element content or attribute values.
pub fn escape_html(s: &str) -> String {
    // Fast path: nothing to escape.
    if !s.bytes().any(|b| matches!(b, b'&' | b'<' | b'>' | b'"' | b'\'')) {
        return s.to_owned();
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(
            escape_html(r#"<a href="x">&'</a>"#),
            "&lt;a href=&quot;x&quot;&gt;&amp;&#39;&lt;/a&gt;"
        );
    }

    #[test]
    fn plain_text_is_unchanged() {
        assert_eq!(escape_html("plain text"), "plain text");
    }

    #[test]
    fn unicode_passes_through() {
        assert_eq!(escape_html("café 🦀"), "café 🦀");
    }
}
