//! Template parser.
//!
//! Scans HTML text for the three Strudel tags (`<SFMT …>`, `<SIF …> …
//! <SELSE> … </SIF>`, `<SFOR v IN …> … </SFOR>`); everything else passes
//! through verbatim. Tag names are case-insensitive; the paper writes them
//! in upper case.

use crate::ast::*;
use crate::error::TemplateError;

/// Parses a template source.
pub fn parse_template(src: &str) -> Result<Template, TemplateError> {
    let mut p = Parser {
        src,
        pos: 0,
        line: 1,
    };
    let nodes = p.nodes(&[])?;
    if p.pos < src.len() {
        return Err(TemplateError::new(
            p.line,
            "unexpected closing tag with no matching open tag",
        ));
    }
    Ok(Template {
        nodes,
        line_count: src.lines().count(),
    })
}

struct Parser<'s> {
    src: &'s str,
    pos: usize,
    line: u32,
}

impl<'s> Parser<'s> {
    /// Parses nodes until EOF or one of `stop` closing/among tags (left
    /// unconsumed).
    fn nodes(&mut self, stop: &[&str]) -> Result<Vec<Node>, TemplateError> {
        let mut out = Vec::new();
        let mut text_start = self.pos;
        while self.pos < self.src.len() {
            if self.src[self.pos..].starts_with('<') {
                if let Some(tag) = self.peek_tag() {
                    if stop.iter().any(|s| s.eq_ignore_ascii_case(&tag)) {
                        self.flush_text(text_start, &mut out);
                        return Ok(out);
                    }
                    match tag.as_str() {
                        t if t.eq_ignore_ascii_case("SFMT") => {
                            self.flush_text(text_start, &mut out);
                            out.push(self.fmt_tag()?);
                            text_start = self.pos;
                            continue;
                        }
                        t if t.eq_ignore_ascii_case("SIF") => {
                            self.flush_text(text_start, &mut out);
                            out.push(self.if_tag()?);
                            text_start = self.pos;
                            continue;
                        }
                        t if t.eq_ignore_ascii_case("SFOR") => {
                            self.flush_text(text_start, &mut out);
                            out.push(self.for_tag()?);
                            text_start = self.pos;
                            continue;
                        }
                        t if t.eq_ignore_ascii_case("SELSE")
                            || t.eq_ignore_ascii_case("/SIF")
                            || t.eq_ignore_ascii_case("/SFOR") =>
                        {
                            // Structural tag with no matching context.
                            self.flush_text(text_start, &mut out);
                            return if stop.is_empty() {
                                Err(TemplateError::new(
                                    self.line,
                                    format!("unexpected <{tag}> outside its construct"),
                                ))
                            } else {
                                // Let the caller decide (it is looking for
                                // a different stop tag → error there).
                                Err(TemplateError::new(
                                    self.line,
                                    format!("unexpected <{tag}>, expected one of {stop:?}"),
                                ))
                            };
                        }
                        _ => {} // ordinary HTML tag: passthrough
                    }
                }
            }
            self.bump();
        }
        self.flush_text(text_start, &mut out);
        if stop.is_empty() {
            Ok(out)
        } else {
            Err(TemplateError::new(
                self.line,
                format!("unterminated construct, expected one of {stop:?}"),
            ))
        }
    }

    fn flush_text(&self, start: usize, out: &mut Vec<Node>) {
        if start < self.pos {
            out.push(Node::Text(self.src[start..self.pos].to_owned()));
        }
    }

    fn bump(&mut self) {
        let c = self.src[self.pos..].chars().next().expect("in bounds");
        if c == '\n' {
            self.line += 1;
        }
        self.pos += c.len_utf8();
    }

    /// The tag name following `<` at the current position, if this looks
    /// like a tag.
    fn peek_tag(&self) -> Option<String> {
        let rest = &self.src[self.pos + 1..];
        let mut name = String::new();
        for c in rest.chars() {
            if c.is_ascii_alphanumeric() || (c == '/' && name.is_empty()) {
                name.push(c);
            } else {
                break;
            }
        }
        if name.is_empty() {
            None
        } else {
            Some(name)
        }
    }

    /// Consumes `<TAG …>` and returns the raw contents between the tag name
    /// and the closing `>` (which may appear escaped inside quoted
    /// directive values such as `DELIM=" <br> "`).
    fn consume_tag(&mut self, name_len: usize) -> Result<String, TemplateError> {
        let start_line = self.line;
        self.pos += 1 + name_len; // '<' + name
        let rest = &self.src[self.pos..];
        let mut close = None;
        let mut in_quotes = false;
        for (i, b) in rest.bytes().enumerate() {
            match b {
                b'"' => in_quotes = !in_quotes,
                b'>' if !in_quotes => {
                    close = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let Some(close) = close else {
            return Err(TemplateError::new(start_line, "unterminated tag"));
        };
        let contents = rest[..close].to_owned();
        self.line += contents.matches('\n').count() as u32;
        self.pos += close + 1;
        Ok(contents)
    }

    fn fmt_tag(&mut self) -> Result<Node, TemplateError> {
        let line = self.line;
        let contents = self.consume_tag(4)?;
        let mut words = TagWords::new(&contents);
        let expr_word = words
            .next_word()
            .ok_or_else(|| TemplateError::new(line, "SFMT needs an attribute expression"))?;
        let expr = parse_attr_expr(&expr_word, line)?;
        let directives = parse_directives(&mut words, line)?;
        Ok(Node::Fmt { expr, directives })
    }

    fn if_tag(&mut self) -> Result<Node, TemplateError> {
        let line = self.line;
        let contents = self.consume_tag(3)?;
        let mut words = TagWords::new(&contents);
        let expr_word = words
            .next_word()
            .ok_or_else(|| TemplateError::new(line, "SIF needs an attribute expression"))?;
        let cond = parse_attr_expr(&expr_word, line)?;

        let then = self.nodes(&["SELSE", "/SIF"])?;
        let tag = self.peek_tag().expect("stop tag present");
        let mut else_ = Vec::new();
        if tag.eq_ignore_ascii_case("SELSE") {
            self.consume_tag(5)?;
            else_ = self.nodes(&["/SIF"])?;
        }
        self.consume_tag(4)?; // </SIF>
        Ok(Node::If { cond, then, else_ })
    }

    fn for_tag(&mut self) -> Result<Node, TemplateError> {
        let line = self.line;
        let contents = self.consume_tag(4)?;
        let mut words = TagWords::new(&contents);
        let var = words
            .next_word()
            .ok_or_else(|| TemplateError::new(line, "SFOR needs a loop variable"))?;
        let kw = words
            .next_word()
            .ok_or_else(|| TemplateError::new(line, "SFOR needs 'IN'"))?;
        if !kw.eq_ignore_ascii_case("IN") {
            return Err(TemplateError::new(line, "expected 'IN' after loop variable"));
        }
        let expr_word = words
            .next_word()
            .ok_or_else(|| TemplateError::new(line, "SFOR needs an attribute expression"))?;
        let expr = parse_attr_expr(&expr_word, line)?;
        let d = parse_directives(&mut words, line)?;
        if d.embed || d.multi() {
            return Err(TemplateError::new(
                line,
                "SFOR accepts only DELIM, ORDER, and KEY directives",
            ));
        }
        let body = self.nodes(&["/SFOR"])?;
        self.consume_tag(5)?; // </SFOR>
        Ok(Node::For {
            var,
            expr,
            delim: d.delim,
            order: d.order,
            key: d.key,
            body,
        })
    }
}

/// Splits tag contents into words, honoring `NAME="quoted value"` pairs.
struct TagWords<'a> {
    rest: &'a str,
}

impl<'a> TagWords<'a> {
    fn new(s: &'a str) -> Self {
        TagWords { rest: s.trim() }
    }

    /// The next whitespace-separated word; a `="…"` suffix (with possible
    /// spaces inside the quotes) stays attached.
    fn next_word(&mut self) -> Option<String> {
        self.rest = self.rest.trim_start();
        if self.rest.is_empty() {
            return None;
        }
        let bytes = self.rest.as_bytes();
        let mut i = 0;
        let mut in_quotes = false;
        while i < bytes.len() {
            match bytes[i] {
                b'"' => in_quotes = !in_quotes,
                b if b.is_ascii_whitespace() && !in_quotes => break,
                _ => {}
            }
            i += 1;
        }
        let word = self.rest[..i].to_owned();
        self.rest = &self.rest[i..];
        Some(word)
    }
}

fn parse_attr_expr(word: &str, line: u32) -> Result<AttrExpr, TemplateError> {
    if word.is_empty() {
        return Err(TemplateError::new(line, "empty attribute expression"));
    }
    let (base, rest) = if let Some(stripped) = word.strip_prefix('$') {
        let mut parts = stripped.splitn(2, '.');
        let var = parts.next().unwrap_or("");
        if var.is_empty() {
            return Err(TemplateError::new(line, "empty loop-variable reference"));
        }
        (Base::LoopVar(var.to_owned()), parts.next().unwrap_or(""))
    } else {
        (Base::CurrentObject, word)
    };
    let path: Vec<String> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split('.').map(str::to_owned).collect()
    };
    if matches!(base, Base::CurrentObject) && path.is_empty() {
        return Err(TemplateError::new(line, "empty attribute expression"));
    }
    if path.iter().any(String::is_empty) {
        return Err(TemplateError::new(
            line,
            format!("malformed attribute expression '{word}'"),
        ));
    }
    Ok(AttrExpr { base, path })
}

fn parse_directives(words: &mut TagWords<'_>, line: u32) -> Result<Directives, TemplateError> {
    let mut d = Directives::default();
    while let Some(w) = words.next_word() {
        let upper = w.to_ascii_uppercase();
        if upper == "EMBED" {
            d.embed = true;
        } else if upper == "ENUM" {
            d.enumerate = true;
        } else if upper == "UL" {
            d.list = Some(ListKind::Unordered);
        } else if upper == "OL" {
            d.list = Some(ListKind::Ordered);
        } else if let Some(v) = w.strip_prefix("DELIM=").or_else(|| w.strip_prefix("delim=")) {
            d.delim = Some(unquote(v));
        } else if let Some(v) = w.strip_prefix("ORDER=").or_else(|| w.strip_prefix("order=")) {
            d.order = Some(match unquote(v).to_ascii_lowercase().as_str() {
                "ascend" | "asc" => OrderDir::Ascend,
                "descend" | "desc" => OrderDir::Descend,
                other => {
                    return Err(TemplateError::new(
                        line,
                        format!("ORDER must be ascend or descend, not '{other}'"),
                    ))
                }
            });
        } else if let Some(v) = w.strip_prefix("KEY=").or_else(|| w.strip_prefix("key=")) {
            d.key = Some(unquote(v));
        } else {
            return Err(TemplateError::new(line, format!("unknown directive '{w}'")));
        }
    }
    Ok(d)
}

fn unquote(s: &str) -> String {
    let t = s.trim();
    if t.len() >= 2 && t.starts_with('"') && t.ends_with('"') {
        t[1..t.len() - 1].to_owned()
    } else {
        t.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_html_passes_through() {
        let t = parse_template("<html><body><h1>Hi</h1></body></html>").unwrap();
        assert_eq!(t.nodes.len(), 1);
        assert!(matches!(&t.nodes[0], Node::Text(s) if s.contains("<h1>")));
    }

    #[test]
    fn sfmt_with_directives() {
        let t = parse_template(r#"<SFMT author ENUM DELIM=", ">"#).unwrap();
        let Node::Fmt { expr, directives } = &t.nodes[0] else {
            panic!()
        };
        assert_eq!(expr.path, ["author"]);
        assert!(directives.enumerate);
        assert_eq!(directives.delim.as_deref(), Some(", "));
    }

    #[test]
    fn sfmt_order_key_ul() {
        let t = parse_template("<SFMT YearPage UL ORDER=ascend KEY=Year>").unwrap();
        let Node::Fmt { directives, .. } = &t.nodes[0] else {
            panic!()
        };
        assert_eq!(directives.list, Some(ListKind::Unordered));
        assert_eq!(directives.order, Some(OrderDir::Ascend));
        assert_eq!(directives.key.as_deref(), Some("Year"));
        assert!(directives.multi());
    }

    #[test]
    fn attr_expr_paths_and_loop_vars() {
        let t = parse_template("<SFMT Paper.title>").unwrap();
        let Node::Fmt { expr, .. } = &t.nodes[0] else {
            panic!()
        };
        assert_eq!(expr.base, Base::CurrentObject);
        assert_eq!(expr.path, ["Paper", "title"]);

        let t = parse_template("<SFMT $a EMBED>").unwrap();
        let Node::Fmt { expr, directives } = &t.nodes[0] else {
            panic!()
        };
        assert_eq!(expr.base, Base::LoopVar("a".into()));
        assert!(expr.path.is_empty());
        assert!(directives.embed);

        let t = parse_template("<SFMT $a.title>").unwrap();
        let Node::Fmt { expr, .. } = &t.nodes[0] else {
            panic!()
        };
        assert_eq!(expr.base, Base::LoopVar("a".into()));
        assert_eq!(expr.path, ["title"]);
    }

    #[test]
    fn sif_with_else() {
        let t = parse_template("<SIF abstract>yes<SELSE>no</SIF>").unwrap();
        let Node::If { cond, then, else_ } = &t.nodes[0] else {
            panic!()
        };
        assert_eq!(cond.path, ["abstract"]);
        assert!(matches!(&then[0], Node::Text(s) if s == "yes"));
        assert!(matches!(&else_[0], Node::Text(s) if s == "no"));
    }

    #[test]
    fn sif_without_else() {
        let t = parse_template("<SIF x>body</SIF>").unwrap();
        let Node::If { else_, .. } = &t.nodes[0] else {
            panic!()
        };
        assert!(else_.is_empty());
    }

    #[test]
    fn sfor_with_body() {
        let t =
            parse_template(r#"<SFOR a IN author DELIM=", "><SFMT $a></SFOR>"#).unwrap();
        let Node::For {
            var, expr, delim, body, ..
        } = &t.nodes[0]
        else {
            panic!()
        };
        assert_eq!(var, "a");
        assert_eq!(expr.path, ["author"]);
        assert_eq!(delim.as_deref(), Some(", "));
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn nesting_works() {
        let t = parse_template(
            "<SFOR y IN years><SIF $y.papers><SFMT $y.papers ENUM></SIF></SFOR>",
        )
        .unwrap();
        let Node::For { body, .. } = &t.nodes[0] else {
            panic!()
        };
        assert!(matches!(&body[0], Node::If { .. }));
    }

    #[test]
    fn case_insensitive_tags() {
        assert!(parse_template("<sfmt title>").is_ok());
        assert!(parse_template("<sif x>a</sif>").is_ok());
    }

    #[test]
    fn errors_on_unterminated_constructs() {
        assert!(parse_template("<SIF x>never closed").is_err());
        assert!(parse_template("<SFOR a IN x>no close").is_err());
        assert!(parse_template("<SFMT title").is_err());
    }

    #[test]
    fn errors_on_stray_structural_tags() {
        assert!(parse_template("</SIF>").is_err());
        assert!(parse_template("text <SELSE> more").is_err());
    }

    #[test]
    fn errors_on_bad_directives() {
        assert!(parse_template("<SFMT x BOGUS>").is_err());
        assert!(parse_template("<SFMT x ORDER=sideways>").is_err());
        assert!(parse_template("<SFOR a IN x EMBED>body</SFOR>").is_err());
    }

    #[test]
    fn delim_values_may_contain_spaces_and_tags() {
        let t = parse_template(r#"<SFMT author ENUM DELIM=" <br> ">"#).unwrap();
        let Node::Fmt { directives, .. } = &t.nodes[0] else {
            panic!()
        };
        assert_eq!(directives.delim.as_deref(), Some(" <br> "));
    }

    #[test]
    fn line_count_is_recorded() {
        let t = parse_template("line1\nline2\nline3").unwrap();
        assert_eq!(t.line_count, 3);
    }

    #[test]
    fn angle_brackets_in_text_are_fine() {
        let t = parse_template("if a < b then <b>bold</b>").unwrap();
        assert!(!t.nodes.is_empty());
    }
}
