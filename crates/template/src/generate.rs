//! The site HTML generator.
//!
//! Takes a site graph, a [`TemplateSet`], and a set of root objects, and
//! produces the browsable web site: one HTML page per *realized* object.
//! Realization is decided during generation (§2.4): the roots are pages,
//! and every object rendered by a format expression *without* `EMBED`
//! becomes a page too, reached by a hyperlink. Objects rendered with
//! `EMBED` stay page components.

use crate::ast::Template;
use crate::error::TemplateError;
use crate::eval::{link_text, render_nodes, Env};
use crate::parser::parse_template;
use std::collections::{HashMap, HashSet, VecDeque};
use strudel_graph::{Graph, Oid, Value};

/// A registry of named templates plus the selection rules of §2.4.
///
/// Selection order for an object:
/// 1. a template assigned to the object by name
///    ([`TemplateSet::assign_object`]);
/// 2. the template named by the object's `html-template` attribute;
/// 3. the template assigned to a collection the object belongs to (first
///    collection in declaration order wins);
/// 4. the default template, if set;
/// 5. a built-in attribute listing.
#[derive(Clone, Debug, Default)]
pub struct TemplateSet {
    templates: HashMap<String, Template>,
    object_assignments: HashMap<String, String>,
    collection_assignments: HashMap<String, String>,
    default: Option<String>,
}

impl TemplateSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses and registers a named template.
    pub fn add_template(&mut self, name: &str, src: &str) -> Result<(), TemplateError> {
        let t = parse_template(src)?;
        self.templates.insert(name.to_owned(), t);
        Ok(())
    }

    /// Assigns a registered template to an object (by the object's
    /// symbolic name).
    pub fn assign_object(&mut self, object_name: &str, template: &str) {
        self.object_assignments
            .insert(object_name.to_owned(), template.to_owned());
    }

    /// Assigns a registered template to every member of a collection.
    pub fn assign_collection(&mut self, collection: &str, template: &str) {
        self.collection_assignments
            .insert(collection.to_owned(), template.to_owned());
    }

    /// Sets the fallback template.
    pub fn set_default(&mut self, template: &str) {
        self.default = Some(template.to_owned());
    }

    /// Number of registered templates (a T1 site statistic).
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Total source lines across registered templates (a T1 site
    /// statistic).
    pub fn total_line_count(&self) -> usize {
        self.templates.values().map(|t| t.line_count).sum()
    }

    /// Selects the template for `oid`, per the §2.4 rules. `None` means
    /// "use the built-in default rendering".
    fn select<'s>(
        &'s self,
        graph: &Graph,
        oid: Oid,
    ) -> Result<Option<&'s Template>, TemplateError> {
        let by_name = |name: &str| -> Result<&'s Template, TemplateError> {
            self.templates.get(name).ok_or_else(|| {
                TemplateError::new(0, format!("no template named '{name}' is registered"))
            })
        };
        if let Some(obj_name) = graph.node_name(oid) {
            if let Some(t) = self.object_assignments.get(obj_name) {
                return by_name(t).map(Some);
            }
        }
        if let Some(Value::Str(name)) = graph.first_attr_str(oid, "html-template") {
            return by_name(name).map(Some);
        }
        for (cid, cname) in graph.collections() {
            if !self.collection_assignments.contains_key(cname) {
                continue;
            }
            if graph.in_collection(cid, &Value::Node(oid)) {
                return by_name(&self.collection_assignments[cname]).map(Some);
            }
        }
        if let Some(d) = &self.default {
            return by_name(d).map(Some);
        }
        Ok(None)
    }
}

/// One generated page.
#[derive(Clone, Debug)]
pub struct Page {
    /// The realized object.
    pub oid: Oid,
    /// The page's file name, e.g. `YearPage_1998.html`.
    pub name: String,
    /// The page's HTML.
    pub html: String,
    /// Every object whose content this page read while rendering — the
    /// dependency set driving incremental regeneration.
    pub deps: Vec<Oid>,
}

/// The generated site.
#[derive(Clone, Debug, Default)]
pub struct SiteOutput {
    /// Pages in realization order (roots first).
    pub pages: Vec<Page>,
}

impl SiteOutput {
    /// The page realizing `oid`, if any.
    pub fn page_for(&self, oid: Oid) -> Option<&Page> {
        self.pages.iter().find(|p| p.oid == oid)
    }

    /// A page by file name.
    pub fn page_named(&self, name: &str) -> Option<&Page> {
        self.pages.iter().find(|p| p.name == name)
    }

    /// Total HTML bytes.
    pub fn total_bytes(&self) -> usize {
        self.pages.iter().map(|p| p.html.len()).sum()
    }

    /// Pages whose dependency sets intersect `changed` — the pages an
    /// incremental regeneration must re-render.
    pub fn affected_pages(&self, changed: &[Oid]) -> Vec<Oid> {
        self.pages
            .iter()
            .filter(|p| changed.iter().any(|c| p.deps.contains(c)))
            .map(|p| p.oid)
            .collect()
    }

    /// Checks every intra-site link: returns `(page, href)` pairs whose
    /// `href` names a generated page that does not exist. External links
    /// (containing `://`) and non-`.html` targets are skipped. An empty
    /// result is the §6.2 connectedness story at the HTML level.
    pub fn broken_links(&self) -> Vec<(String, String)> {
        let known: std::collections::HashSet<&str> =
            self.pages.iter().map(|p| p.name.as_str()).collect();
        let mut out = Vec::new();
        for p in &self.pages {
            let mut rest = p.html.as_str();
            while let Some(i) = rest.find("href=\"") {
                rest = &rest[i + 6..];
                let Some(end) = rest.find('"') else { break };
                let href = &rest[..end];
                if href.ends_with(".html")
                    && !href.contains("://")
                    && !known.contains(href)
                {
                    out.push((p.name.clone(), href.to_owned()));
                }
                rest = &rest[end..];
            }
        }
        out
    }

    /// Writes every page into `dir` (created if missing).
    pub fn write_to_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for p in &self.pages {
            std::fs::write(dir.join(&p.name), &p.html)?;
        }
        Ok(())
    }
}

/// Resolves external file references for `EMBED` of text files.
pub type FileResolver<'a> = dyn Fn(&str) -> Option<String> + 'a;

/// Maps a realized object to an externally chosen URL (e.g. a click-time
/// server route). Returning `None` falls back to the generated `.html`
/// page name.
pub type PageNamer<'a> = dyn Fn(Oid) -> Option<String> + 'a;

/// The HTML generator.
pub struct HtmlGenerator<'g> {
    graph: &'g Graph,
    templates: &'g TemplateSet,
    file_resolver: Option<&'g FileResolver<'g>>,
}

impl<'g> HtmlGenerator<'g> {
    /// A generator over `graph` using `templates`.
    pub fn new(graph: &'g Graph, templates: &'g TemplateSet) -> Self {
        HtmlGenerator {
            graph,
            templates,
            file_resolver: None,
        }
    }

    /// Supplies a resolver used to inline the contents of text files on
    /// `EMBED` (e.g. paper abstracts).
    pub fn with_file_resolver(mut self, resolver: &'g FileResolver<'g>) -> Self {
        self.file_resolver = Some(resolver);
        self
    }

    /// Generates the site starting from `roots`.
    pub fn generate(&self, roots: &[Oid]) -> Result<SiteOutput, TemplateError> {
        self.generate_inner(roots, None, &[])
    }

    /// Incrementally regenerates `previous` after the objects in `changed`
    /// were modified: only pages whose dependency sets intersect `changed`
    /// (plus any newly reachable pages) are re-rendered; the rest are
    /// carried over verbatim, with stable page names.
    ///
    /// This is the §1 promise "to update a site incrementally when changes
    /// occur in the underlying data", applied to the presentation stage;
    /// pair it with [`incremental_update`] in the schema crate for the
    /// site-graph stage.
    ///
    /// [`incremental_update`]: ../strudel_schema/incremental/fn.incremental_update.html
    pub fn regenerate(
        &self,
        previous: &SiteOutput,
        changed: &[Oid],
    ) -> Result<SiteOutput, TemplateError> {
        let dirty: HashSet<Oid> = previous.affected_pages(changed).into_iter().collect();
        let roots: Vec<Oid> = previous.pages.iter().map(|p| p.oid).collect();
        self.generate_inner(&roots, Some(previous), &dirty.into_iter().collect::<Vec<_>>())
    }

    /// Renders the single page for `oid` without materializing the rest of
    /// the site — the click-time entry point. Hyperlinks to other objects
    /// are resolved through `namer` (mapping objects to server URLs);
    /// objects the namer declines get generated `.html` names, but are
    /// *not* rendered. The returned [`Page`] carries the dependency set of
    /// every object whose content the render read.
    pub fn render_one(&self, oid: Oid, namer: &PageNamer<'_>) -> Result<Page, TemplateError> {
        let mut ctx = GenCtx {
            templates: self.templates,
            file_resolver: self.file_resolver,
            namer: Some(namer),
            page_names: HashMap::new(),
            used_names: HashSet::new(),
            worklist: VecDeque::new(),
            embed_stack: Vec::new(),
            current_deps: HashSet::new(),
            skip: HashSet::new(),
        };
        let name = ctx.realize(oid, self.graph);
        ctx.current_deps.clear();
        let html = ctx.render_page(oid, self.graph)?;
        let mut deps: Vec<Oid> = ctx.current_deps.iter().copied().collect();
        deps.sort_unstable();
        Ok(Page { oid, name, html, deps })
    }

    fn generate_inner(
        &self,
        roots: &[Oid],
        previous: Option<&SiteOutput>,
        dirty: &[Oid],
    ) -> Result<SiteOutput, TemplateError> {
        let mut ctx = GenCtx {
            templates: self.templates,
            file_resolver: self.file_resolver,
            namer: None,
            page_names: HashMap::new(),
            used_names: HashSet::new(),
            worklist: VecDeque::new(),
            embed_stack: Vec::new(),
            current_deps: HashSet::new(),
            skip: HashSet::new(),
        };
        if let Some(prev) = previous {
            // Keep page names stable, carry clean pages over, and enqueue
            // everything (realize() short-circuits on known names, so the
            // previous inventory is enqueued explicitly).
            for p in &prev.pages {
                ctx.page_names.insert(p.oid, p.name.clone());
                ctx.used_names.insert(p.name.clone());
                ctx.worklist.push_back(p.oid);
                if !dirty.contains(&p.oid) {
                    ctx.skip.insert(p.oid);
                }
            }
        }
        for &r in roots {
            ctx.realize(r, self.graph);
        }
        let mut out = SiteOutput::default();
        let mut done: HashSet<Oid> = HashSet::new();
        while let Some(oid) = ctx.worklist.pop_front() {
            if !done.insert(oid) {
                continue;
            }
            if ctx.skip.contains(&oid) {
                let prev_page = previous
                    .and_then(|p| p.page_for(oid))
                    .expect("skipped pages come from the previous output");
                out.pages.push(prev_page.clone());
                continue;
            }
            let name = ctx.page_names[&oid].clone();
            ctx.current_deps.clear();
            let html = ctx.render_page(oid, self.graph)?;
            let mut deps: Vec<Oid> = ctx.current_deps.iter().copied().collect();
            deps.sort_unstable();
            out.pages.push(Page { oid, name, html, deps });
        }
        Ok(out)
    }
}

/// Mutable generation state shared across pages; crate-internal, used by
/// the evaluator to realize links and render embeds.
pub(crate) struct GenCtx<'g> {
    templates: &'g TemplateSet,
    file_resolver: Option<&'g FileResolver<'g>>,
    /// External URL assignment for single-page (click-time) rendering.
    namer: Option<&'g PageNamer<'g>>,
    page_names: HashMap<Oid, String>,
    used_names: HashSet<String>,
    worklist: VecDeque<Oid>,
    embed_stack: Vec<Oid>,
    /// Objects read while rendering the current page.
    current_deps: HashSet<Oid>,
    /// Pages already rendered (by a previous run) that need no re-render.
    skip: HashSet<Oid>,
}

impl<'g> GenCtx<'g> {
    /// Marks `oid` as realized (a page) and returns its file name.
    pub(crate) fn realize(&mut self, oid: Oid, graph: &Graph) -> String {
        if let Some(n) = self.page_names.get(&oid) {
            return n.clone();
        }
        if let Some(namer) = self.namer {
            if let Some(url) = namer(oid) {
                self.page_names.insert(oid, url.clone());
                return url;
            }
        }
        let base = match graph.node_name(oid) {
            Some(n) => sanitize(n),
            None => format!("object_{}", oid.index()),
        };
        let mut name = format!("{base}.html");
        let mut counter = 1;
        while !self.used_names.insert(name.clone()) {
            name = format!("{base}_{counter}.html");
            counter += 1;
        }
        self.page_names.insert(oid, name.clone());
        self.worklist.push_back(oid);
        name
    }

    /// Whether `oid` is already being embedded (cycle guard).
    pub(crate) fn embedding(&self, oid: Oid) -> bool {
        self.embed_stack.contains(&oid)
    }

    /// Records that the current page read `oid`'s content.
    pub(crate) fn note_dep(&mut self, oid: Oid) {
        self.current_deps.insert(oid);
    }

    pub(crate) fn resolve_file(&self, path: &str) -> Option<String> {
        self.file_resolver.and_then(|f| f(path))
    }

    /// Renders `oid` inline (EMBED).
    pub(crate) fn render_embedded(
        &mut self,
        oid: Oid,
        graph: &Graph,
        out: &mut String,
    ) -> Result<(), TemplateError> {
        self.embed_stack.push(oid);
        let r = self.render_body(oid, graph, out);
        self.embed_stack.pop();
        r
    }

    /// Renders a full page for `oid`. The page's own object joins the
    /// embed stack so a template that (transitively) embeds its own page
    /// degrades to a link instead of recursing.
    fn render_page(&mut self, oid: Oid, graph: &Graph) -> Result<String, TemplateError> {
        let mut out = String::with_capacity(512);
        self.embed_stack.push(oid);
        let r = self.render_body(oid, graph, &mut out);
        self.embed_stack.pop();
        r?;
        Ok(out)
    }

    fn render_body(
        &mut self,
        oid: Oid,
        graph: &Graph,
        out: &mut String,
    ) -> Result<(), TemplateError> {
        self.note_dep(oid);
        match self.templates.select(graph, oid)? {
            Some(template) => {
                // Clone the node list handle: rendering needs &mut self
                // while the template borrows the set. Templates are shared
                // and immutable, so a shallow clone of the Vec is the
                // simplest sound option and template bodies are small.
                let nodes = template.nodes.clone();
                let mut env = Env {
                    current: oid,
                    loops: Vec::new(),
                };
                render_nodes(&nodes, &mut env, graph, self, out)
            }
            None => {
                self.render_default(oid, graph, out);
                Ok(())
            }
        }
    }

    /// The built-in default rendering: a definition list of the object's
    /// attributes.
    fn render_default(&mut self, oid: Oid, graph: &Graph, out: &mut String) {
        use crate::escape::escape_html;
        let title = link_text(graph, oid);
        out.push_str("<html><head><title>");
        out.push_str(&escape_html(&title));
        out.push_str("</title></head><body><h1>");
        out.push_str(&escape_html(&title));
        out.push_str("</h1>\n<dl>\n");
        for e in graph.edges(oid) {
            out.push_str("<dt>");
            out.push_str(&escape_html(graph.label_name(e.label)));
            out.push_str("</dt><dd>");
            match &e.to {
                Value::Node(o) => {
                    self.note_dep(*o);
                    let href = self.realize(*o, graph);
                    let text = link_text(graph, *o);
                    out.push_str("<a href=\"");
                    out.push_str(&escape_html(&href));
                    out.push_str("\">");
                    out.push_str(&escape_html(&text));
                    out.push_str("</a>");
                }
                atomic => out.push_str(&escape_html(&atomic.display_text())),
            }
            out.push_str("</dd>\n");
        }
        out.push_str("</dl></body></html>\n");
    }
}

fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.is_empty() {
        out.push('p');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::{FileKind, Graph};

    /// A tiny two-publication site graph shaped like Fig. 4.
    fn site() -> (Graph, Oid) {
        let mut g = Graph::new();
        let root = g.add_named_node("RootPage");
        let pres1 = g.add_named_node("Pres_p1");
        let pres2 = g.add_named_node("Pres_p2");
        g.add_edge_str(root, "title", Value::string("Home"));
        g.add_edge_str(root, "Paper", Value::Node(pres1));
        g.add_edge_str(root, "Paper", Value::Node(pres2));
        g.add_edge_str(pres1, "title", Value::string("First <paper>"));
        g.add_edge_str(pres1, "year", Value::Int(1998));
        g.add_edge_str(pres1, "author", Value::string("Mary"));
        g.add_edge_str(pres1, "author", Value::string("Dan"));
        g.add_edge_str(pres1, "abstract", Value::file(FileKind::Text, "abs/p1.txt"));
        g.add_edge_str(pres2, "title", Value::string("Second"));
        g.add_edge_str(pres2, "year", Value::Int(1997));
        g.collect_str("Presentations", pres1);
        g.collect_str("Presentations", pres2);
        g.collect_str("Roots", root);
        (g, root)
    }

    #[test]
    fn generates_pages_for_linked_objects() {
        let (g, root) = site();
        let mut ts = TemplateSet::new();
        ts.add_template(
            "root",
            "<html><h1><SFMT title></h1><SFMT Paper ENUM DELIM=\", \"></html>",
        )
        .unwrap();
        ts.add_template("pres", "<h2><SFMT title></h2>Year: <SFMT year>")
            .unwrap();
        ts.assign_object("RootPage", "root");
        ts.assign_collection("Presentations", "pres");

        let out = HtmlGenerator::new(&g, &ts).generate(&[root]).unwrap();
        assert_eq!(out.pages.len(), 3, "root + two linked presentations");
        let root_page = out.page_for(root).unwrap();
        assert!(root_page.html.contains("<h1>Home</h1>"));
        // Links use escaped titles and .html names.
        assert!(root_page.html.contains("First &lt;paper&gt;"));
        assert!(root_page.html.contains("Pres_p1.html"));
        let p1 = out.page_named("Pres_p1.html").unwrap();
        assert!(p1.html.contains("Year: 1998"));
    }

    #[test]
    fn embed_inlines_instead_of_linking() {
        let (g, root) = site();
        let mut ts = TemplateSet::new();
        ts.add_template("root", "<SFMT Paper ENUM EMBED>").unwrap();
        ts.add_template("pres", "[<SFMT title>]").unwrap();
        ts.assign_object("RootPage", "root");
        ts.assign_collection("Presentations", "pres");

        let out = HtmlGenerator::new(&g, &ts).generate(&[root]).unwrap();
        assert_eq!(out.pages.len(), 1, "embedded objects are not pages");
        assert!(out.pages[0].html.contains("[First &lt;paper&gt;][Second]"));
    }

    #[test]
    fn html_template_attribute_selects() {
        let (mut g, root) = site();
        g.add_edge_str(root, "html-template", Value::string("special"));
        let mut ts = TemplateSet::new();
        ts.add_template("special", "SPECIAL <SFMT title>").unwrap();
        let out = HtmlGenerator::new(&g, &ts).generate(&[root]).unwrap();
        assert!(out.page_for(root).unwrap().html.starts_with("SPECIAL"));
    }

    #[test]
    fn object_assignment_beats_collection_assignment() {
        let (g, root) = site();
        let mut ts = TemplateSet::new();
        ts.add_template("obj", "OBJ").unwrap();
        ts.add_template("coll", "COLL").unwrap();
        ts.assign_object("RootPage", "obj");
        ts.assign_collection("Roots", "coll");
        let out = HtmlGenerator::new(&g, &ts).generate(&[root]).unwrap();
        assert_eq!(out.page_for(root).unwrap().html, "OBJ");
    }

    #[test]
    fn default_rendering_lists_attributes() {
        let (g, root) = site();
        let ts = TemplateSet::new();
        let out = HtmlGenerator::new(&g, &ts).generate(&[root]).unwrap();
        let html = &out.page_for(root).unwrap().html;
        assert!(html.contains("<dt>Paper</dt>"));
        assert!(html.contains("<dt>title</dt>"));
        // Default rendering realizes node targets as pages too.
        assert_eq!(out.pages.len(), 3);
    }

    #[test]
    fn missing_template_is_an_error() {
        let (g, root) = site();
        let mut ts = TemplateSet::new();
        ts.assign_object("RootPage", "ghost");
        assert!(HtmlGenerator::new(&g, &ts).generate(&[root]).is_err());
    }

    #[test]
    fn sfor_enumerates_with_delims() {
        let (g, _root) = site();
        let p1 = g.node_by_name("Pres_p1").unwrap();
        let mut ts = TemplateSet::new();
        ts.add_template("pres", r#"<SFOR a IN author DELIM="; ">(<SFMT $a>)</SFOR>"#)
            .unwrap();
        ts.assign_collection("Presentations", "pres");
        let out = HtmlGenerator::new(&g, &ts).generate(&[p1]).unwrap();
        assert!(out.pages[0].html.contains("(Mary); (Dan)"));
    }

    #[test]
    fn sif_takes_else_branch_when_empty() {
        let (g, _) = site();
        let p2 = g.node_by_name("Pres_p2").unwrap();
        let mut ts = TemplateSet::new();
        ts.add_template(
            "pres",
            "<SIF abstract>has abstract<SELSE>no abstract</SIF>",
        )
        .unwrap();
        ts.assign_collection("Presentations", "pres");
        let out = HtmlGenerator::new(&g, &ts).generate(&[p2]).unwrap();
        assert!(out.pages[0].html.contains("no abstract"));
        let p1 = g.node_by_name("Pres_p1").unwrap();
        let out = HtmlGenerator::new(&g, &ts).generate(&[p1]).unwrap();
        assert!(out.pages[0].html.contains("has abstract"));
    }

    #[test]
    fn order_sorts_by_key() {
        let (g, root) = site();
        let mut ts = TemplateSet::new();
        ts.add_template("root", "<SFMT Paper UL ORDER=ascend KEY=year>")
            .unwrap();
        ts.add_template("pres", "x").unwrap();
        ts.assign_object("RootPage", "root");
        ts.assign_collection("Presentations", "pres");
        let out = HtmlGenerator::new(&g, &ts).generate(&[root]).unwrap();
        let html = &out.page_for(root).unwrap().html;
        let pos_97 = html.find("Second").unwrap();
        let pos_98 = html.find("First").unwrap();
        assert!(pos_97 < pos_98, "1997 paper sorts before 1998: {html}");
        assert!(html.contains("<ul>"));
        assert!(html.contains("<li>"));
    }

    #[test]
    fn order_descend_reverses() {
        let (g, root) = site();
        let mut ts = TemplateSet::new();
        ts.add_template("root", "<SFMT Paper ENUM ORDER=descend KEY=year DELIM=\"|\">")
            .unwrap();
        ts.add_template("pres", "x").unwrap();
        ts.assign_object("RootPage", "root");
        ts.assign_collection("Presentations", "pres");
        let out = HtmlGenerator::new(&g, &ts).generate(&[root]).unwrap();
        let html = &out.page_for(root).unwrap().html;
        assert!(html.find("First").unwrap() < html.find("Second").unwrap());
    }

    #[test]
    fn embed_cycles_degrade_to_links() {
        let mut g = Graph::new();
        let a = g.add_named_node("a");
        let b = g.add_named_node("b");
        g.add_edge_str(a, "next", Value::Node(b));
        g.add_edge_str(b, "next", Value::Node(a));
        let mut ts = TemplateSet::new();
        ts.add_template("t", "(<SFMT next EMBED>)").unwrap();
        ts.set_default("t");
        let out = HtmlGenerator::new(&g, &ts).generate(&[a]).unwrap();
        let html = &out.page_for(a).unwrap().html;
        // a embeds b, which would embed a again → link instead.
        assert!(html.contains("a.html"), "{html}");
    }

    #[test]
    fn file_resolver_inlines_text_files() {
        let (g, _) = site();
        let p1 = g.node_by_name("Pres_p1").unwrap();
        let mut ts = TemplateSet::new();
        ts.add_template("pres", "<SFMT abstract EMBED>").unwrap();
        ts.assign_collection("Presentations", "pres");
        let resolver = |path: &str| {
            if path == "abs/p1.txt" {
                Some("the abstract text".to_string())
            } else {
                None
            }
        };
        let out = HtmlGenerator::new(&g, &ts)
            .with_file_resolver(&resolver)
            .generate(&[p1])
            .unwrap();
        assert!(out.pages[0]
            .html
            .contains("<blockquote>the abstract text</blockquote>"));
    }

    #[test]
    fn images_render_as_img_tags() {
        let mut g = Graph::new();
        let n = g.add_named_node("n");
        g.add_edge_str(n, "pic", Value::file(FileKind::Image, "me.gif"));
        let mut ts = TemplateSet::new();
        ts.add_template("t", "<SFMT pic>").unwrap();
        ts.set_default("t");
        let out = HtmlGenerator::new(&g, &ts).generate(&[n]).unwrap();
        assert!(out.pages[0].html.contains("<img src=\"me.gif\""));
    }

    #[test]
    fn urls_render_as_anchors() {
        let mut g = Graph::new();
        let n = g.add_named_node("n");
        g.add_edge_str(n, "home", Value::url("http://example.org"));
        let mut ts = TemplateSet::new();
        ts.add_template("t", "<SFMT home>").unwrap();
        ts.set_default("t");
        let out = HtmlGenerator::new(&g, &ts).generate(&[n]).unwrap();
        assert!(out.pages[0]
            .html
            .contains("<a href=\"http://example.org\">http://example.org</a>"));
    }

    #[test]
    fn page_names_deduplicate() {
        let mut g = Graph::new();
        let a = g.add_node(); // anonymous
        let b = g.add_node();
        g.add_edge_str(a, "x", Value::Int(1));
        g.add_edge_str(b, "x", Value::Int(2));
        let ts = TemplateSet::new();
        let out = HtmlGenerator::new(&g, &ts).generate(&[a, b]).unwrap();
        let names: HashSet<&str> = out.pages.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn attribute_paths_navigate() {
        let (g, root) = site();
        let mut ts = TemplateSet::new();
        ts.add_template("root", "<SFMT Paper.title ENUM DELIM=\"/\">")
            .unwrap();
        ts.assign_object("RootPage", "root");
        ts.add_template("x", "x").unwrap();
        ts.assign_collection("Presentations", "x");
        let out = HtmlGenerator::new(&g, &ts).generate(&[root]).unwrap();
        let html = &out.page_for(root).unwrap().html;
        assert!(html.contains("First &lt;paper&gt;/Second"));
    }

    #[test]
    fn write_to_dir_round_trips(){
        let (g, root) = site();
        let ts = TemplateSet::new();
        let out = HtmlGenerator::new(&g, &ts).generate(&[root]).unwrap();
        let dir = std::env::temp_dir().join(format!("strudel-gen-{}", std::process::id()));
        out.write_to_dir(&dir).unwrap();
        let on_disk = std::fs::read_to_string(dir.join(&out.pages[0].name)).unwrap();
        assert_eq!(on_disk, out.pages[0].html);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn regenerate_rerenders_only_affected_pages() {
        let (mut g, root) = site();
        let mut ts = TemplateSet::new();
        ts.add_template(
            "root",
            "<html><h1><SFMT title></h1><SFMT Paper ENUM DELIM=\", \"></html>",
        )
        .unwrap();
        ts.add_template("pres", "<h2><SFMT title></h2>Year: <SFMT year>")
            .unwrap();
        ts.assign_object("RootPage", "root");
        ts.assign_collection("Presentations", "pres");

        let first = HtmlGenerator::new(&g, &ts).generate(&[root]).unwrap();
        assert_eq!(first.pages.len(), 3);

        // Change pres2's year; only its own page and the root (which links
        // to it and reads its title) can be affected.
        let p2 = g.node_by_name("Pres_p2").unwrap();
        let year = g.label("year").unwrap();
        g.remove_edge(p2, year, &Value::Int(1997));
        g.add_edge(p2, year, Value::Int(1999));

        let affected = first.affected_pages(&[p2]);
        assert!(affected.contains(&p2));

        let second = HtmlGenerator::new(&g, &ts)
            .regenerate(&first, &[p2])
            .unwrap();
        assert_eq!(second.pages.len(), 3);
        // The untouched paper's page is carried over byte-identical; the
        // changed paper re-rendered.
        let p1 = g.node_by_name("Pres_p1").unwrap();
        assert_eq!(
            first.page_for(p1).unwrap().html,
            second.page_for(p1).unwrap().html
        );
        assert!(second.page_for(p2).unwrap().html.contains("Year: 1999"));
        assert!(first.page_for(p2).unwrap().html.contains("Year: 1997"));

        // Regeneration equals a full re-render.
        let full = HtmlGenerator::new(&g, &ts).generate(&[root]).unwrap();
        for p in &full.pages {
            assert_eq!(
                p.html,
                second.page_for(p.oid).unwrap().html,
                "page {} diverged",
                p.name
            );
        }
    }

    #[test]
    fn regenerate_keeps_page_names_stable() {
        let (g, root) = site();
        let ts = TemplateSet::new();
        let first = HtmlGenerator::new(&g, &ts).generate(&[root]).unwrap();
        let second = HtmlGenerator::new(&g, &ts)
            .regenerate(&first, &[root])
            .unwrap();
        for p in &first.pages {
            assert_eq!(
                second.page_for(p.oid).unwrap().name,
                p.name,
                "names must not shift between runs"
            );
        }
    }

    #[test]
    fn deps_include_embedded_and_keyed_objects() {
        let (g, root) = site();
        let mut ts = TemplateSet::new();
        ts.add_template("root", "<SFMT Paper UL ORDER=ascend KEY=year>")
            .unwrap();
        ts.add_template("pres", "x").unwrap();
        ts.assign_object("RootPage", "root");
        ts.assign_collection("Presentations", "pres");
        let out = HtmlGenerator::new(&g, &ts).generate(&[root]).unwrap();
        let root_page = out.page_for(root).unwrap();
        let p1 = g.node_by_name("Pres_p1").unwrap();
        let p2 = g.node_by_name("Pres_p2").unwrap();
        assert!(root_page.deps.contains(&root));
        assert!(root_page.deps.contains(&p1), "KEY read p1's year");
        assert!(root_page.deps.contains(&p2));
    }

    #[test]
    fn nested_sfor_shadows_loop_variables() {
        let mut g = Graph::new();
        let n = g.add_named_node("n");
        g.add_edge_str(n, "x", Value::string("outer"));
        let inner = g.add_node();
        g.add_edge_str(inner, "x", Value::string("inner"));
        g.add_edge_str(n, "child", Value::Node(inner));
        let mut ts = TemplateSet::new();
        // The inner loop rebinds $v; after it closes, $v is the outer
        // binding again.
        ts.add_template(
            "t",
            "<SFOR v IN x>[<SFMT $v>]<SFOR v IN child><SFOR v IN $v.x>(<SFMT $v>)</SFOR></SFOR>{<SFMT $v>}</SFOR>",
        )
        .unwrap();
        ts.set_default("t");
        let out = HtmlGenerator::new(&g, &ts).generate(&[n]).unwrap();
        assert_eq!(out.pages[0].html, "[outer](inner){outer}");
    }

    #[test]
    fn broken_links_detection() {
        let (g, root) = site();
        let ts = TemplateSet::new();
        let mut out = HtmlGenerator::new(&g, &ts).generate(&[root]).unwrap();
        assert!(out.broken_links().is_empty(), "{:?}", out.broken_links());
        // Break it: drop a linked page.
        out.pages.retain(|p| !p.name.starts_with("Pres_p1"));
        let broken = out.broken_links();
        assert_eq!(broken.len(), 1);
        assert_eq!(broken[0].1, "Pres_p1.html");
    }

    #[test]
    fn render_one_uses_namer_urls_and_renders_nothing_else() {
        let (g, root) = site();
        let mut ts = TemplateSet::new();
        ts.add_template(
            "root",
            "<html><h1><SFMT title></h1><SFMT Paper UL ORDER=ascend KEY=year></html>",
        )
        .unwrap();
        ts.add_template("pres", "unused here").unwrap();
        ts.assign_object("RootPage", "root");
        ts.assign_collection("Presentations", "pres");

        let namer = |oid: Oid| {
            g.node_name(oid).map(|n| format!("/page/{n}"))
        };
        let page = HtmlGenerator::new(&g, &ts).render_one(root, &namer).unwrap();
        assert_eq!(page.name, "/page/RootPage");
        assert!(page.html.contains("href=\"/page/Pres_p1\""), "{}", page.html);
        assert!(page.html.contains("href=\"/page/Pres_p2\""));
        // KEY= reads were recorded as dependencies.
        let p1 = g.node_by_name("Pres_p1").unwrap();
        assert!(page.deps.contains(&p1));
    }

    #[test]
    fn render_one_falls_back_to_html_names_when_namer_declines() {
        let (g, root) = site();
        let ts = TemplateSet::new();
        let namer = |_| None;
        let page = HtmlGenerator::new(&g, &ts).render_one(root, &namer).unwrap();
        assert_eq!(page.name, "RootPage.html");
        assert!(page.html.contains("Pres_p1.html"));
    }

    #[test]
    fn template_set_statistics() {
        let mut ts = TemplateSet::new();
        ts.add_template("a", "one\ntwo\nthree").unwrap();
        ts.add_template("b", "one line").unwrap();
        assert_eq!(ts.template_count(), 2);
        assert_eq!(ts.total_line_count(), 4);
    }
}
