//! Template evaluation: renders template nodes for one object into HTML.

use crate::ast::*;
use crate::error::TemplateError;
use crate::escape::escape_html;
use crate::generate::GenCtx;
use strudel_graph::{coerce, FileKind, Graph, Oid, Value};

/// The evaluation environment for one render: the current object and the
/// enclosing `<SFOR>` bindings.
pub(crate) struct Env {
    pub current: Oid,
    pub loops: Vec<(String, Value)>,
}

impl Env {
    fn lookup(&self, var: &str) -> Option<&Value> {
        self.loops
            .iter()
            .rev()
            .find(|(name, _)| name == var)
            .map(|(_, v)| v)
    }
}

/// Renders a node list into `out`.
pub(crate) fn render_nodes(
    nodes: &[Node],
    env: &mut Env,
    graph: &Graph,
    ctx: &mut GenCtx<'_>,
    out: &mut String,
) -> Result<(), TemplateError> {
    for node in nodes {
        match node {
            Node::Text(t) => out.push_str(t),
            Node::Fmt { expr, directives } => {
                let mut values = eval_attr_expr(expr, env, graph, ctx)?;
                if let Some(dir) = directives.order {
                    if directives.key.is_some() {
                        for v in &values {
                            if let Value::Node(o) = v {
                                ctx.note_dep(*o);
                            }
                        }
                    }
                    sort_values(&mut values, dir, directives.key.as_deref(), graph);
                }
                if directives.multi() {
                    match directives.list {
                        Some(kind) => {
                            let (open, close) = match kind {
                                ListKind::Unordered => ("<ul>\n", "</ul>\n"),
                                ListKind::Ordered => ("<ol>\n", "</ol>\n"),
                            };
                            out.push_str(open);
                            for v in &values {
                                out.push_str("<li>");
                                render_value(v, directives.embed, graph, ctx, out)?;
                                out.push_str("</li>\n");
                            }
                            out.push_str(close);
                        }
                        None => {
                            let delim = directives.delim.as_deref().unwrap_or("");
                            for (i, v) in values.iter().enumerate() {
                                if i > 0 {
                                    out.push_str(delim);
                                }
                                render_value(v, directives.embed, graph, ctx, out)?;
                            }
                        }
                    }
                } else if let Some(v) = values.first() {
                    render_value(v, directives.embed, graph, ctx, out)?;
                }
            }
            Node::If { cond, then, else_ } => {
                let values = eval_attr_expr(cond, env, graph, ctx)?;
                let branch = if values.is_empty() { else_ } else { then };
                render_nodes(branch, env, graph, ctx, out)?;
            }
            Node::For {
                var,
                expr,
                delim,
                order,
                key,
                body,
            } => {
                let mut values = eval_attr_expr(expr, env, graph, ctx)?;
                if let Some(dir) = order {
                    if key.is_some() {
                        for v in &values {
                            if let Value::Node(o) = v {
                                ctx.note_dep(*o);
                            }
                        }
                    }
                    sort_values(&mut values, *dir, key.as_deref(), graph);
                }
                for (i, v) in values.into_iter().enumerate() {
                    if i > 0 {
                        if let Some(d) = delim {
                            out.push_str(d);
                        }
                    }
                    env.loops.push((var.clone(), v));
                    let r = render_nodes(body, env, graph, ctx, out);
                    env.loops.pop();
                    r?;
                }
            }
        }
    }
    Ok(())
}

/// Evaluates an attribute expression to its list of values, in edge order.
/// Every node whose attributes are read is recorded as a dependency of the
/// page under construction.
pub(crate) fn eval_attr_expr(
    expr: &AttrExpr,
    env: &Env,
    graph: &Graph,
    ctx: &mut GenCtx<'_>,
) -> Result<Vec<Value>, TemplateError> {
    let mut values: Vec<Value> = match &expr.base {
        Base::CurrentObject => vec![Value::Node(env.current)],
        Base::LoopVar(v) => {
            let val = env.lookup(v).ok_or_else(|| {
                TemplateError::new(0, format!("loop variable '${v}' is not in scope"))
            })?;
            vec![val.clone()]
        }
    };
    for attr in &expr.path {
        let mut next = Vec::new();
        for v in &values {
            if let Value::Node(o) = v {
                ctx.note_dep(*o);
                next.extend(graph.attr_str(*o, attr).cloned());
            }
        }
        values = next;
    }
    Ok(values)
}

/// Sorts values for ORDER=: by a KEY attribute when the values are objects,
/// else by the values themselves, with dynamic coercion and a structural
/// fallback so the order is total and deterministic.
fn sort_values(values: &mut [Value], dir: OrderDir, key: Option<&str>, graph: &Graph) {
    let sort_key = |v: &Value| -> Value {
        match (key, v) {
            (Some(k), Value::Node(o)) => graph
                .first_attr_str(*o, k)
                .cloned()
                .unwrap_or_else(|| v.clone()),
            _ => v.clone(),
        }
    };
    values.sort_by(|a, b| {
        let (ka, kb) = (sort_key(a), sort_key(b));
        let ord = coerce::compare(&ka, &kb).unwrap_or_else(|| ka.cmp(&kb));
        match dir {
            OrderDir::Ascend => ord,
            OrderDir::Descend => ord.reverse(),
        }
    });
}

/// Renders one value: atomic values inline, objects as links or (with
/// EMBED) inline renderings of their own templates.
fn render_value(
    v: &Value,
    embed: bool,
    graph: &Graph,
    ctx: &mut GenCtx<'_>,
    out: &mut String,
) -> Result<(), TemplateError> {
    match v {
        Value::Node(o) => {
            ctx.note_dep(*o);
            if embed && !ctx.embedding(*o) {
                ctx.render_embedded(*o, graph, out)
            } else {
                let href = ctx.realize(*o, graph);
                let text = link_text(graph, *o);
                out.push_str("<a href=\"");
                out.push_str(&escape_html(&href));
                out.push_str("\">");
                out.push_str(&escape_html(&text));
                out.push_str("</a>");
                Ok(())
            }
        }
        Value::Url(u) => {
            out.push_str("<a href=\"");
            out.push_str(&escape_html(u));
            out.push_str("\">");
            out.push_str(&escape_html(u));
            out.push_str("</a>");
            Ok(())
        }
        Value::File(f) if f.kind == FileKind::Image => {
            out.push_str("<img src=\"");
            out.push_str(&escape_html(&f.path));
            out.push_str("\" alt=\"");
            out.push_str(&escape_html(&f.path));
            out.push_str("\">");
            Ok(())
        }
        Value::File(f) => {
            if embed {
                match ctx.resolve_file(&f.path) {
                    Some(contents) => {
                        out.push_str("<blockquote>");
                        out.push_str(&escape_html(&contents));
                        out.push_str("</blockquote>");
                    }
                    None => {
                        out.push_str("<blockquote data-src=\"");
                        out.push_str(&escape_html(&f.path));
                        out.push_str("\"></blockquote>");
                    }
                }
            } else {
                out.push_str("<a href=\"");
                out.push_str(&escape_html(&f.path));
                out.push_str("\">");
                out.push_str(&escape_html(&f.path));
                out.push_str("</a>");
            }
            Ok(())
        }
        atomic => {
            out.push_str(&escape_html(&atomic.display_text()));
            Ok(())
        }
    }
}

/// Human-readable link text for an object: its `title`, `name`, or `label`
/// attribute, else its symbolic name, else its oid.
pub(crate) fn link_text(graph: &Graph, oid: Oid) -> String {
    for attr in ["title", "name", "label"] {
        if let Some(v) = graph.first_attr_str(oid, attr) {
            if v.is_atomic() {
                return v.display_text().into_owned();
            }
        }
    }
    match graph.node_name(oid) {
        Some(n) => n.to_owned(),
        None => oid.to_string(),
    }
}
