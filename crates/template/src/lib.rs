//! # strudel-template
//!
//! Strudel's HTML-template language and site HTML generator (§2.4 of the
//! paper).
//!
//! A template is plain HTML extended with three expressions (Fig. 5):
//!
//! * `<SFMT attrExpr directives…>` — a **format expression**: renders the
//!   value(s) of an attribute expression. Directives: `EMBED` (render a
//!   referenced object inline instead of linking to its page), `ENUM`
//!   (emit all values), `DELIM="…"`, `UL`/`OL` (emit values as HTML
//!   lists), `ORDER=ascend|descend` with optional `KEY=attr` (sort values;
//!   the paper's answer to ordering in an order-free data model, §6.3).
//! * `<SIF attrExpr> … <SELSE> … </SIF>` — a **conditional**: the branch is
//!   taken when the attribute expression has at least one value —
//!   exactly the test semistructured data needs ("does this publication
//!   have an abstract?").
//! * `<SFOR v IN attrExpr …> … </SFOR>` — an **enumeration**: binds `$v`
//!   to each value.
//!
//! An *attribute expression* is `$var` or a bounded sequence of attribute
//! names (`Paper.title`) navigated from the current object.
//!
//! The [`HtmlGenerator`] walks a site graph from root objects, selects a
//! template for every internal object — (1) an object-specific template,
//! (2) the object's `html-template` attribute, (3) the template of a
//! collection it belongs to, else a built-in default — and produces one
//! HTML page per *realized* object. Whether an object becomes a page or a
//! page component is decided at generation time: a reference rendered
//! without `EMBED` realizes its target as a page.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
mod escape;
mod eval;
mod generate;
mod parser;

pub use ast::{AttrExpr, Base, Directives, ListKind, Node, OrderDir, Template};
pub use error::TemplateError;
pub use escape::escape_html;
pub use generate::{FileResolver, HtmlGenerator, Page, PageNamer, SiteOutput, TemplateSet};
pub use parser::parse_template;
