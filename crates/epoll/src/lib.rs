//! Minimal epoll + eventfd bindings for the event-driven serve
//! transport.
//!
//! The workspace builds fully offline, so these are raw `extern "C"`
//! declarations against the C library the Rust standard library already
//! links — no external crates. All `unsafe` in the event-driven
//! transport lives in this one small crate, behind a safe RAII API:
//!
//! * [`Epoll`] — `epoll_create1` / `epoll_ctl` / `epoll_wait`, with
//!   `EINTR` retried and the fd closed on drop.
//! * [`EventFd`] — a nonblocking `eventfd` used as the reactor's wakeup
//!   channel: any thread [`EventFd::notify`]s, the reactor's
//!   `epoll_wait` returns, and the reactor [`EventFd::drain`]s.
//!
//! On non-Linux targets every constructor returns
//! [`std::io::ErrorKind::Unsupported`], so callers can offer the epoll
//! transport behind a runtime flag and fall back to a portable one
//! without any `cfg` of their own.

#![warn(missing_docs)]

/// The fd (or token) is readable.
pub const EPOLLIN: u32 = 0x001;
/// The fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

/// Interrupt from the keyboard (`kill -INT`, ^C).
pub const SIGINT: i32 = 2;
/// Unblockable kill.
pub const SIGKILL: i32 = 9;
/// Polite termination request (`kill`'s default).
pub const SIGTERM: i32 = 15;

/// One ready event out of [`Epoll::wait`]: the readiness bits and the
/// `u64` token registered with the fd.
#[derive(Clone, Copy, Debug, Default)]
pub struct Event {
    /// `EPOLL*` readiness bits.
    pub events: u32,
    /// The token passed to [`Epoll::add`] / [`Epoll::modify`].
    pub token: u64,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::Event;
    use std::io;
    use std::os::fd::RawFd;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EFD_CLOEXEC: i32 = 0x80000;
    const EFD_NONBLOCK: i32 = 0x800;
    const SFD_CLOEXEC: i32 = 0x80000;
    const SFD_NONBLOCK: i32 = 0x800;
    const SIG_BLOCK: i32 = 0;
    /// `sizeof(struct signalfd_siginfo)`: reads must be exact multiples.
    const SIGINFO_LEN: usize = 128;

    /// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel
    /// ABI there has no padding between `events` and `data`); naturally
    /// aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// The C library's `sigset_t` (glibc reserves 1024 bits). Built only
    /// through `sigemptyset`/`sigaddset`, never by hand.
    #[repr(C)]
    struct SigSet {
        bits: [u64; 16],
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
        fn sigemptyset(set: *mut SigSet) -> i32;
        fn sigaddset(set: *mut SigSet, signum: i32) -> i32;
        fn pthread_sigmask(how: i32, set: *const SigSet, oldset: *mut SigSet) -> i32;
        fn signalfd(fd: i32, mask: *const SigSet, flags: i32) -> i32;
        fn kill(pid: i32, sig: i32) -> i32;
        fn raise(sig: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An epoll instance (see crate docs).
    #[derive(Debug)]
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        /// Creates a close-on-exec epoll instance.
        pub fn new() -> io::Result<Epoll> {
            let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
        }

        /// Starts watching `fd` for `events`, reporting `token` back.
        pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        /// Changes the watched events/token of a registered `fd`.
        pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        /// Stops watching `fd`.
        pub fn del(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks until at least one registered fd is ready or
        /// `timeout_ms` elapses (`-1` = forever, `0` = poll). Fills
        /// `out` from the front and returns how many entries are valid.
        /// `EINTR` is retried internally.
        pub fn wait(&self, out: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
            if out.is_empty() {
                return Ok(0);
            }
            let mut raw = vec![EpollEvent::default(); out.len()];
            loop {
                let n = unsafe {
                    epoll_wait(self.fd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms)
                };
                match cvt(n) {
                    Ok(n) => {
                        let n = n as usize;
                        for (slot, ev) in out.iter_mut().zip(&raw[..n]) {
                            // Copy fields out of the (possibly packed)
                            // kernel struct; never take references in.
                            let (events, data) = (ev.events, ev.data);
                            *slot = Event {
                                events,
                                token: data,
                            };
                        }
                        return Ok(n);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    /// A nonblocking eventfd wakeup channel (see crate docs).
    #[derive(Debug)]
    pub struct EventFd {
        fd: RawFd,
    }

    impl EventFd {
        /// Creates a nonblocking, close-on-exec eventfd at count 0.
        pub fn new() -> io::Result<EventFd> {
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            Ok(EventFd { fd })
        }

        /// The raw fd, for registering with an [`Epoll`].
        pub fn as_raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Wakes whoever is `epoll_wait`ing on this fd. Adding to an
        /// eventfd counter never blocks short of `u64::MAX - 1` pending
        /// wakeups; errors are impossible in practice and ignored —
        /// a lost wakeup surfaces as one reactor tick of latency.
        pub fn notify(&self) {
            let one: u64 = 1;
            let _ = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }

        /// Consumes all pending wakeups, resetting the fd to unarmed.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            // Nonblocking: one read empties the counter; EAGAIN means it
            // was already empty.
            let _ = unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    /// A nonblocking signalfd: the named signals are blocked for the
    /// whole process (so their default dispositions never fire) and
    /// delivered through this fd instead (see crate docs).
    #[derive(Debug)]
    pub struct SignalFd {
        fd: RawFd,
    }

    impl SignalFd {
        /// Blocks `signals` process-wide and opens a nonblocking,
        /// close-on-exec signalfd delivering them. Call on the main
        /// thread before spawning workers: spawned threads inherit the
        /// blocked mask, so the signals only ever surface here.
        pub fn new(signals: &[i32]) -> io::Result<SignalFd> {
            let mut mask = SigSet { bits: [0; 16] };
            unsafe {
                sigemptyset(&mut mask);
                for &s in signals {
                    if sigaddset(&mut mask, s) != 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("invalid signal number {s}"),
                        ));
                    }
                }
                let rc = pthread_sigmask(SIG_BLOCK, &mask, std::ptr::null_mut());
                if rc != 0 {
                    return Err(io::Error::from_raw_os_error(rc));
                }
                let fd = cvt(signalfd(-1, &mask, SFD_CLOEXEC | SFD_NONBLOCK))?;
                Ok(SignalFd { fd })
            }
        }

        /// The raw fd, for registering with an [`Epoll`].
        pub fn as_raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Takes one pending signal, if any: `Some(signo)` or `None`
        /// (nothing pending — the fd is nonblocking).
        pub fn try_take(&self) -> Option<i32> {
            let mut buf = [0u8; SIGINFO_LEN];
            let n = unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
            if n as usize != SIGINFO_LEN {
                return None;
            }
            // ssi_signo is the struct's first field, a little-endian u32.
            Some(u32::from_ne_bytes([buf[0], buf[1], buf[2], buf[3]]) as i32)
        }
    }

    impl Drop for SignalFd {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    /// Sends `sig` to process `pid` (`kill(2)`).
    pub fn kill_process(pid: u32, sig: i32) -> io::Result<()> {
        cvt(unsafe { kill(pid as i32, sig) }).map(|_| ())
    }

    /// Sends `sig` to the calling thread (`raise(3)`). With the signal
    /// blocked it stays pending for this thread, where a [`SignalFd`]
    /// read from the same thread picks it up — the self-test hook.
    pub fn raise_signal(sig: i32) -> io::Result<()> {
        cvt(unsafe { raise(sig) }).map(|_| ())
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::Event;
    use std::io;
    // On non-Linux targets RawFd comes from different module paths;
    // accept any integer fd so callers compile unchanged.
    type RawFd = i32;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is only available on Linux",
        ))
    }

    /// Stub epoll for non-Linux targets; every constructor fails with
    /// [`io::ErrorKind::Unsupported`].
    #[derive(Debug)]
    pub struct Epoll {}

    impl Epoll {
        /// Always fails off Linux.
        pub fn new() -> io::Result<Epoll> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn add(&self, _fd: RawFd, _events: u32, _token: u64) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn modify(&self, _fd: RawFd, _events: u32, _token: u64) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn del(&self, _fd: RawFd) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn wait(&self, _out: &mut [Event], _timeout_ms: i32) -> io::Result<usize> {
            unsupported()
        }
    }

    /// Stub eventfd for non-Linux targets.
    #[derive(Debug)]
    pub struct EventFd {}

    impl EventFd {
        /// Always fails off Linux.
        pub fn new() -> io::Result<EventFd> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn as_raw_fd(&self) -> RawFd {
            -1
        }

        /// Unreachable (no instance can exist).
        pub fn notify(&self) {}

        /// Unreachable (no instance can exist).
        pub fn drain(&self) {}
    }

    /// Stub signalfd for non-Linux targets.
    #[derive(Debug)]
    pub struct SignalFd {}

    impl SignalFd {
        /// Always fails off Linux.
        pub fn new(_signals: &[i32]) -> io::Result<SignalFd> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn as_raw_fd(&self) -> RawFd {
            -1
        }

        /// Unreachable (no instance can exist).
        pub fn try_take(&self) -> Option<i32> {
            None
        }
    }

    /// Always fails off Linux.
    pub fn kill_process(_pid: u32, _sig: i32) -> io::Result<()> {
        unsupported()
    }

    /// Always fails off Linux.
    pub fn raise_signal(_sig: i32) -> io::Result<()> {
        unsupported()
    }
}

pub use sys::{kill_process, raise_signal, Epoll, EventFd, SignalFd};

/// Whether the epoll transport can run on this target.
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let ep = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.as_raw_fd(), EPOLLIN, 7).unwrap();

        // Unarmed: a zero-timeout wait sees nothing.
        let mut events = [Event::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        // Notified (twice — notifications coalesce): readable, token 7.
        efd.notify();
        efd.notify();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert_ne!(events[0].events & EPOLLIN, 0);

        // Drained: unarmed again.
        efd.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_reports_listener_and_stream_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 1).unwrap();

        let mut events = [Event::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "no pending accepts");

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = ep.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 1, "accept readiness carries the token");

        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        ep.add(accepted.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 2).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "nothing sent yet");

        client.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 2);

        let mut buf = [0u8; 8];
        let read = (&accepted).read(&mut buf).unwrap();
        assert_eq!(&buf[..read], b"ping");

        // Peer hangup surfaces as RDHUP on the watched side.
        drop(client);
        let n = ep.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].events & (EPOLLRDHUP | EPOLLHUP | EPOLLIN), 0);

        ep.del(accepted.as_raw_fd()).unwrap();
        ep.del(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn modify_switches_interest_between_read_and_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        // Watch for writable: an idle socket's send buffer has room.
        ep.add(server.as_raw_fd(), EPOLLOUT, 9).unwrap();
        let mut events = [Event::default(); 4];
        let n = ep.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].events & EPOLLOUT, 0);

        // Switch to read interest: quiet until the peer sends.
        ep.modify(server.as_raw_fd(), EPOLLIN, 9).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        (&client).write_all(b"x").unwrap();
        assert_eq!(ep.wait(&mut events, 2000).unwrap(), 1);
        drop(client);
    }

    #[test]
    fn signalfd_delivers_a_self_raised_signal() {
        // SIGUSR1, raised thread-directed at this test thread: the
        // blocked mask makes it pend here instead of running its default
        // disposition, and the signalfd read (same thread) takes it.
        const SIGUSR1: i32 = 10;
        let sfd = SignalFd::new(&[SIGUSR1]).unwrap();
        assert_eq!(sfd.try_take(), None, "nothing pending yet");

        raise_signal(SIGUSR1).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match sfd.try_take() {
                Some(s) => {
                    assert_eq!(s, SIGUSR1);
                    break;
                }
                None if Instant::now() < deadline => std::thread::yield_now(),
                None => panic!("signal never arrived on the signalfd"),
            }
        }
        assert_eq!(sfd.try_take(), None, "drained");
    }

    #[test]
    fn wait_honors_timeout() {
        let ep = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.as_raw_fd(), EPOLLIN, 0).unwrap();
        let mut events = [Event::default(); 1];
        let t0 = Instant::now();
        assert_eq!(ep.wait(&mut events, 50).unwrap(), 0);
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(40), "{waited:?}");
        assert!(waited < Duration::from_secs(5), "{waited:?}");
    }
}
