//! # strudel
//!
//! A reproduction of the **Strudel web-site management system** (Fernández,
//! Florescu, Kang, Levy, Suciu: *Catching the Boat with Strudel*, SIGMOD
//! 1998) as a Rust library.
//!
//! Strudel separates the three tasks of building a web site:
//!
//! 1. **managing the site's data** — wrappers translate external sources
//!    (BibTeX, relational tables, record files, HTML pages) into
//!    semistructured labeled graphs, and a GAV mediator warehouses them
//!    into one *data graph*;
//! 2. **managing the site's structure** — a declarative *site-definition
//!    query* in STRUQL maps the data graph to a *site graph* capturing
//!    both content and structure;
//! 3. **visual presentation** — HTML templates (SFMT/SIF/SFOR) render each
//!    site object as a page or page component.
//!
//! The [`SiteBuilder`] façade drives all three stages, plus the machinery
//! the paper derives from site schemas: static integrity-constraint
//! verification, dynamic click-time evaluation, and incremental site
//! maintenance.
//!
//! ```
//! use strudel::{SiteBuilder, Source, SourceFormat};
//!
//! let site = SiteBuilder::new("quickstart")
//!     .source(Source::new(
//!         "bib",
//!         SourceFormat::Bibtex,
//!         r#"@article{p1, title={Strudel}, author={M. Fernandez}, year=1998}"#,
//!     ))
//!     .query(r#"
//!         create RootPage()
//!         where Publications(x)
//!         create PaperPage(x)
//!         link RootPage() -> "paper" -> PaperPage(x)
//!         { where x -> l -> v link PaperPage(x) -> l -> v }
//!         collect Roots(RootPage())
//!     "#)
//!     .template("root", r#"<h1>Papers</h1><SFMT paper UL>"#)
//!     .template("paper", r#"<h2><SFMT title></h2><SFMT author ENUM DELIM=", ">"#)
//!     .assign_object("RootPage", "root")
//!     .default_template("paper")
//!     .root_collection("Roots")
//!     .build()
//!     .unwrap();
//!
//! let html = site.render().unwrap();
//! assert_eq!(html.pages.len(), 2);
//! ```
//!
//! The sub-crates are re-exported for direct access: [`graph`], [`repo`],
//! [`struql`], [`template`], [`wrappers`], [`mediator`], [`schema`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
pub mod sites;
mod stats;

pub use builder::{Site, SiteBuilder, Verification};
pub use error::StrudelError;
pub use stats::{count_spec_lines, SiteStats};

pub use strudel_mediator::{Source, SourceFormat};

/// Re-export: the semistructured graph model.
pub use strudel_graph as graph;
/// Re-export: the GAV warehousing mediator.
pub use strudel_mediator as mediator;
/// Re-export: the indexed repository.
pub use strudel_repo as repo;
/// Re-export: site schemas, verification, dynamic and incremental engines.
pub use strudel_schema as schema;
/// Re-export: the STRUQL query language.
pub use strudel_struql as struql;
/// Re-export: the HTML-template language and generator.
pub use strudel_template as template;
/// Re-export: the source wrappers.
pub use strudel_wrappers as wrappers;
