//! The AT&T-Labs-style organization site of §5.1: five data sources
//! (two relational tables, two structured files, legacy HTML pages),
//! home pages for ~400 members, department, project, and demo pages.
//! "The internal site is defined by a 115-line query and 17 HTML
//! templates (380 lines). … no new queries were written for the external
//! site"; only a handful of templates differ.

use crate::SiteBuilder;
use strudel_mediator::{Source, SourceFormat};
use strudel_template::TemplateSet;
use strudel_wrappers::html::HtmlDoc;
use strudel_wrappers::relational::TableOptions;
use strudel_wrappers::structured::RecordOptions;

/// The organization site-definition query (the paper's internal site was
/// 115 lines; this one is the same order of magnitude and shape).
pub const ORG_QUERY: &str = r#"
-- organization site: home pages, departments, projects, demos, legacy docs
create OrgHome(), PeopleIndex(), DeptIndex(), ProjectIndex(), DemoIndex()
link OrgHome() -> "People"      -> PeopleIndex(),
     OrgHome() -> "Departments" -> DeptIndex(),
     OrgHome() -> "Projects"    -> ProjectIndex(),
     OrgHome() -> "Demos"       -> DemoIndex(),
     OrgHome() -> "title"       -> "Research Labs"
collect OrgRoot(OrgHome())

-- person home pages: copy every attribute (irregular by design)
where People(p)
create PersonPage(p)
link PeopleIndex() -> "Person" -> PersonPage(p)
collect PersonPages(PersonPage(p))
{ where p -> l -> v
  link PersonPage(p) -> l -> v }

-- department pages with members and director
where Departments(d), d -> "id" -> did
create DeptPage(d)
link DeptIndex() -> "Department" -> DeptPage(d)
collect DeptPages(DeptPage(d))
{ where d -> "name" -> n
  link DeptPage(d) -> "name" -> n }
{ where d -> "director" -> dir, People(q), q -> "id" -> dir
  link DeptPage(d) -> "Director" -> PersonPage(q) }
{ where People(q), q -> "dept" -> did
  link DeptPage(d) -> "Member" -> PersonPage(q),
       PersonPage(q) -> "Department" -> DeptPage(d) }
{ where LegacyDocs(doc), doc -> "dept" -> did
  link DeptPage(d) -> "About" -> doc }

-- project pages with member links and optional synopsis/sponsor
where Projects(pr), pr -> "id" -> prid
create ProjectPage(pr)
link ProjectIndex() -> "Project" -> ProjectPage(pr)
collect ProjectPages(ProjectPage(pr))
{ where pr -> "name" -> n
  link ProjectPage(pr) -> "name" -> n }
{ where pr -> "synopsis" -> s
  link ProjectPage(pr) -> "synopsis" -> s }
{ where pr -> "sponsor" -> sp
  link ProjectPage(pr) -> "sponsor" -> sp }
{ where pr -> "member" -> m, People(q), q -> "id" -> m
  link ProjectPage(pr) -> "Member" -> PersonPage(q),
       PersonPage(q) -> "Project" -> ProjectPage(pr) }
{ where pr -> "dept" -> dd, Departments(d2), d2 -> "id" -> dd
  link ProjectPage(pr) -> "Department" -> DeptPage(d2),
       DeptPage(d2) -> "Project" -> ProjectPage(pr) }

-- demo pages linked to their projects
where Demos(dm)
create DemoPage(dm)
link DemoIndex() -> "Demo" -> DemoPage(dm)
collect DemoPages(DemoPage(dm))
{ where dm -> "name" -> n
  link DemoPage(dm) -> "name" -> n }
{ where dm -> "url" -> u
  link DemoPage(dm) -> "url" -> u }
{ where dm -> "project" -> pid, Projects(pr2), pr2 -> "id" -> pid
  link DemoPage(dm) -> "Project" -> ProjectPage(pr2),
       ProjectPage(pr2) -> "Demo" -> DemoPage(dm) }
"#;

/// The seventeen internal templates (the paper: "17 HTML templates (380
/// lines)").
fn internal_templates() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "org-home",
            r#"<html><head><title><SFMT title></title></head><body>
<h1><SFMT title></h1>
<ul>
<li><SFMT People></li>
<li><SFMT Departments></li>
<li><SFMT Projects></li>
<li><SFMT Demos></li>
</ul>
</body></html>"#,
        ),
        (
            "people-index",
            r#"<html><head><title>People</title></head><body>
<h1>People</h1>
<SFMT Person UL ORDER=ascend KEY=name>
</body></html>"#,
        ),
        (
            "dept-index",
            r#"<html><head><title>Departments</title></head><body>
<h1>Departments</h1>
<SFMT Department UL ORDER=ascend KEY=name>
</body></html>"#,
        ),
        (
            "project-index",
            r#"<html><head><title>Projects</title></head><body>
<h1>Projects</h1>
<SFMT Project UL ORDER=ascend KEY=name>
</body></html>"#,
        ),
        (
            "demo-index",
            r#"<html><head><title>Demos</title></head><body>
<h1>Demos</h1>
<SFMT Demo UL ORDER=ascend KEY=name>
</body></html>"#,
        ),
        (
            "person",
            r#"<html><head><title><SFMT name></title></head><body>
<h1><SFMT name></h1>
<SIF room><p>Room <SFMT room></p></SIF>
<SIF phone><p>Phone <SFMT phone></p></SIF>
<SIF homepage><p><SFMT homepage></p></SIF>
<SIF Department><p>Department: <SFMT Department></p></SIF>
<SIF Project><h2>Projects</h2><SFMT Project UL></SIF>
<SIF visibility><p class="vis">(<SFMT visibility>)</p></SIF>
</body></html>"#,
        ),
        (
            "department",
            r#"<html><head><title><SFMT name></title></head><body>
<h1><SFMT name></h1>
<SIF Director><p>Director: <SFMT Director></p></SIF>
<SIF About><p><SFMT About></p></SIF>
<h2>Members</h2>
<SFMT Member UL ORDER=ascend KEY=name>
<SIF Project><h2>Projects</h2><SFMT Project UL ORDER=ascend KEY=name></SIF>
</body></html>"#,
        ),
        (
            "project",
            r#"<html><head><title><SFMT name></title></head><body>
<h1><SFMT name></h1>
<SIF synopsis><p><SFMT synopsis></p></SIF>
<SIF sponsor><p>Sponsored by <SFMT sponsor></p></SIF>
<h2>Members</h2>
<SFMT Member UL ORDER=ascend KEY=name>
<SIF Demo><h2>Demos</h2><SFMT Demo UL></SIF>
<SIF Department><p><SFMT Department></p></SIF>
</body></html>"#,
        ),
        (
            "demo",
            r#"<html><head><title><SFMT name></title></head><body>
<h1><SFMT name></h1>
<SIF url><p>Try it: <SFMT url></p></SIF>
<SIF Project><p>Project: <SFMT Project></p></SIF>
</body></html>"#,
        ),
        (
            "legacy-doc",
            r#"<html><head><title><SFMT title></title></head><body>
<h1><SFMT title></h1>
<SFMT paragraph ENUM DELIM="\n">
</body></html>"#,
        ),
        ("person-line", r#"<SFMT name> (<SFMT room>)"#),
        ("phone-card", r#"<p><SFMT name>: <SFMT phone></p>"#),
        ("member-list", "<SFMT Member UL>"),
        ("sponsor-line", "<SIF sponsor><p><SFMT sponsor></p></SIF>"),
        ("org-nav", r#"<p><a href="OrgHome.html">org home</a></p>"#),
        ("org-footer", "<hr><p>internal use</p>"),
        ("org-head", "<head><title><SFMT name></title></head>"),
    ]
}

/// Assigns templates shared by the internal and external sets.
fn assign(ts: &mut TemplateSet) {
    ts.assign_object("OrgHome", "org-home");
    ts.assign_object("PeopleIndex", "people-index");
    ts.assign_object("DeptIndex", "dept-index");
    ts.assign_object("ProjectIndex", "project-index");
    ts.assign_object("DemoIndex", "demo-index");
    ts.assign_collection("PersonPages", "person");
    ts.assign_collection("DeptPages", "department");
    ts.assign_collection("ProjectPages", "project");
    ts.assign_collection("DemoPages", "demo");
    ts.assign_collection("LegacyDocs", "legacy-doc");
}

/// Builds the internal organization site from the five sources.
pub fn org_site(
    people_csv: &str,
    departments_csv: &str,
    projects_rec: &str,
    demos_rec: &str,
    legacy_html: &[(String, String)],
) -> SiteBuilder {
    let docs = HtmlDoc::from_pairs(legacy_html);
    let mut b = SiteBuilder::new("org-internal")
        .source(Source::new(
            "people",
            SourceFormat::Relational(TableOptions::new("People")),
            people_csv,
        ))
        .source(Source::new(
            "departments",
            SourceFormat::Relational(TableOptions::new("Departments")),
            departments_csv,
        ))
        .source(Source::new(
            "projects",
            SourceFormat::Structured(RecordOptions::new("Projects")),
            projects_rec,
        ))
        .source(Source::new(
            "demos",
            SourceFormat::Structured(RecordOptions::new("Demos")),
            demos_rec,
        ))
        .source(Source::html("legacy", "LegacyDocs", docs))
        .query(ORG_QUERY)
        .root_collection("OrgRoot");
    for (name, src) in internal_templates() {
        b = b.template(name, src);
    }
    b.assign_object("OrgHome", "org-home")
        .assign_object("PeopleIndex", "people-index")
        .assign_object("DeptIndex", "dept-index")
        .assign_object("ProjectIndex", "project-index")
        .assign_object("DemoIndex", "demo-index")
        .assign_collection("PersonPages", "person")
        .assign_collection("DeptPages", "department")
        .assign_collection("ProjectPages", "project")
        .assign_collection("DemoPages", "demo")
        .assign_collection("LegacyDocs", "legacy-doc")
}

/// The external template set: the same site graph rendered without
/// internal details. Exactly five templates differ from the internal set
/// (§5.1: "only five HTML template files differ for the external site").
pub fn org_external_templates() -> TemplateSet {
    let mut ts = TemplateSet::new();
    for (name, src) in internal_templates() {
        ts.add_template(name, src).expect("internal templates parse");
    }
    // 1. person: no room/phone/visibility.
    ts.add_template(
        "person",
        r#"<html><head><title><SFMT name></title></head><body>
<h1><SFMT name></h1>
<SIF homepage><p><SFMT homepage></p></SIF>
<SIF Department><p>Department: <SFMT Department></p></SIF>
<SIF Project><h2>Projects</h2><SFMT Project UL></SIF>
</body></html>"#,
    )
    .expect("template parses");
    // 2. project: no sponsor details.
    ts.add_template(
        "project",
        r#"<html><head><title><SFMT name></title></head><body>
<h1><SFMT name></h1>
<SIF synopsis><p><SFMT synopsis></p></SIF>
<h2>Members</h2>
<SFMT Member UL ORDER=ascend KEY=name>
<SIF Demo><h2>Demos</h2><SFMT Demo UL></SIF>
</body></html>"#,
    )
    .expect("template parses");
    // 3. phone-card: externally, no phone numbers at all.
    ts.add_template("phone-card", "<p><SFMT name></p>")
        .expect("template parses");
    // 4. person-line: no room numbers.
    ts.add_template("person-line", "<SFMT name>").expect("template parses");
    // 5. org-footer: public banner.
    ts.add_template("org-footer", "<hr><p>public site</p>")
        .expect("template parses");
    assign(&mut ts);
    ts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_org() -> (String, String, String, String, Vec<(String, String)>) {
        let people = "id,name,dept,room:string,phone,homepage:url,visibility\n\
                      mff,Mary Fernandez,dept0,B-101,5551234,http://x/mff,public\n\
                      ds,Dan Suciu,dept0,,,,internal\n\
                      al,Alon Levy,dept1,B-202,5555678,,public\n"
            .to_string();
        let depts = "id,name,director\ndept0,Database Research,mff\ndept1,Systems,al\n"
            .to_string();
        let projects = "id: strudel\nname: Strudel\ndept: dept0\nmember: mff\nmember: ds\n\
                        synopsis: Declarative sites.\nsponsor: Web Fund\n\n\
                        id: tukwila\nname: Tukwila\ndept: dept1\nmember: al\n"
            .to_string();
        let demos = "id: d0\nname: Strudel Demo\nproject: strudel\n\
                     url: http://demos.example.com/d0\n"
            .to_string();
        let legacy = vec![(
            "about_dept0.html".to_string(),
            "<title>About dept0</title><meta name=\"dept\" content=\"dept0\">\
             <h1>About dept0</h1><p>History.</p>"
                .to_string(),
        )];
        (people, depts, projects, demos, legacy)
    }

    #[test]
    fn org_site_builds_with_five_sources() {
        let (p, d, pr, dm, lg) = tiny_org();
        let site = org_site(&p, &d, &pr, &dm, &lg).build().unwrap();
        assert_eq!(site.stats.sources, 5);
        assert_eq!(site.stats.templates, 17, "paper: 17 templates");
        // 5 index pages + 3 people + 2 depts + 2 projects + 1 demo = 13
        assert_eq!(site.stats.site_nodes, 13);
        let out = site.render().unwrap();
        assert!(out.pages.len() >= 13);
    }

    #[test]
    fn joins_connect_the_sources() {
        let (p, d, pr, dm, lg) = tiny_org();
        let site = org_site(&p, &d, &pr, &dm, &lg).build().unwrap();
        let out = site.render().unwrap();
        let mff_page = out
            .pages
            .iter()
            .find(|pg| pg.html.contains("<h1>Mary Fernandez</h1>"))
            .expect("mff home page");
        assert!(mff_page.html.contains("Strudel"), "project join");
        assert!(mff_page.html.contains("Database Research"), "dept join");
        let dept_page = out
            .pages
            .iter()
            .find(|pg| pg.html.contains("<h1>Database Research</h1>"))
            .unwrap();
        assert!(dept_page.html.contains("Director"));
        assert!(dept_page.html.contains("About dept0"), "legacy HTML joined");
    }

    #[test]
    fn external_site_needs_no_new_query_lines() {
        let (p, d, pr, dm, lg) = tiny_org();
        let site = org_site(&p, &d, &pr, &dm, &lg).build().unwrap();
        let internal = site.render().unwrap();
        let external = site.render_with(&org_external_templates()).unwrap();
        assert_eq!(internal.pages.len(), external.pages.len(), "same site graph");

        let mff_int = internal
            .pages
            .iter()
            .find(|pg| pg.html.contains("<h1>Mary Fernandez</h1>"))
            .unwrap();
        let mff_ext = external
            .pages
            .iter()
            .find(|pg| pg.html.contains("<h1>Mary Fernandez</h1>"))
            .unwrap();
        assert!(mff_int.html.contains("Phone"));
        assert!(!mff_ext.html.contains("Phone"), "external hides phones");
        assert!(!mff_ext.html.contains("B-101"), "external hides rooms");
    }

    #[test]
    fn missing_attributes_render_as_absences() {
        let (p, d, pr, dm, lg) = tiny_org();
        let site = org_site(&p, &d, &pr, &dm, &lg).build().unwrap();
        let out = site.render().unwrap();
        let ds_page = out
            .pages
            .iter()
            .find(|pg| pg.html.contains("<h1>Dan Suciu</h1>"))
            .unwrap();
        assert!(!ds_page.html.contains("Phone"), "ds has no phone");
        let tukwila = out
            .pages
            .iter()
            .find(|pg| pg.html.contains("<h1>Tukwila</h1>"))
            .unwrap();
        assert!(!tukwila.html.contains("Sponsored"), "unsponsored project");
    }
}
