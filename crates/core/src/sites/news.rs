//! The CNN-style news site of §5.1: ~300 articles wrapped from HTML,
//! defined by a 44-line query and nine templates; plus the "sports only"
//! site, whose query "is derived from the original query and only differs
//! in two extra predicates in one where clause" and which uses the same
//! templates.

use crate::SiteBuilder;
use strudel_mediator::Source;
use strudel_wrappers::html::HtmlDoc;

/// The general news-site query (§5.1: "our version of the CNN site is
/// defined by a 44-line query and nine templates").
pub const NEWS_QUERY: &str = r#"
-- news site: front page, per-category pages, article pages
create FrontPage()
collect FrontRoot(FrontPage())

where Articles(a), a -> "category" -> c
create CategoryPage(c), ArticlePage(a)
link FrontPage() -> "Section" -> CategoryPage(c),
     CategoryPage(c) -> "Name" -> c,
     CategoryPage(c) -> "Story" -> ArticlePage(a),
     ArticlePage(a) -> "Section" -> CategoryPage(c)
collect CategoryPages(CategoryPage(c)), ArticlePages(ArticlePage(a))
{ where a -> "title" -> t
  link ArticlePage(a) -> "title" -> t,
       FrontPage() -> "Headline" -> ArticlePage(a) }
{ where a -> "headline" -> h
  link ArticlePage(a) -> "headline" -> h }
{ where a -> "date" -> d
  link ArticlePage(a) -> "date" -> d }
{ where a -> "byline" -> b
  link ArticlePage(a) -> "byline" -> b }
{ where a -> "paragraph" -> p
  link ArticlePage(a) -> "paragraph" -> p }
{ where a -> "image" -> img
  link ArticlePage(a) -> "image" -> img }
{ where a -> "link" -> r, Articles(r)
  link ArticlePage(a) -> "Related" -> ArticlePage(r) }
{ where a -> "link" -> ext, not(isNode(ext))
  link ArticlePage(a) -> "External" -> ext }
"#;

/// The sports-only query: identical except for **two extra predicates in
/// one where clause** (the §5.1 derivation), restricting articles to the
/// sports category.
pub const SPORTS_QUERY: &str = r#"
-- sports-only news site: two extra predicates in the first where clause
create FrontPage()
collect FrontRoot(FrontPage())

where Articles(a), a -> "category" -> c, isString(c), c = "sports"
create CategoryPage(c), ArticlePage(a)
link FrontPage() -> "Section" -> CategoryPage(c),
     CategoryPage(c) -> "Name" -> c,
     CategoryPage(c) -> "Story" -> ArticlePage(a),
     ArticlePage(a) -> "Section" -> CategoryPage(c)
collect CategoryPages(CategoryPage(c)), ArticlePages(ArticlePage(a))
{ where a -> "title" -> t
  link ArticlePage(a) -> "title" -> t,
       FrontPage() -> "Headline" -> ArticlePage(a) }
{ where a -> "headline" -> h
  link ArticlePage(a) -> "headline" -> h }
{ where a -> "date" -> d
  link ArticlePage(a) -> "date" -> d }
{ where a -> "byline" -> b
  link ArticlePage(a) -> "byline" -> b }
{ where a -> "paragraph" -> p
  link ArticlePage(a) -> "paragraph" -> p }
{ where a -> "image" -> img
  link ArticlePage(a) -> "image" -> img }
{ where a -> "link" -> r, Articles(r)
  link ArticlePage(a) -> "Related" -> ArticlePage(r) }
{ where a -> "link" -> ext, not(isNode(ext))
  link ArticlePage(a) -> "External" -> ext }
"#;

/// The nine news templates (shared by the general and sports-only sites:
/// "both sites use the same templates").
fn news_templates() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "front",
            r#"<html><head><title>News</title></head><body>
<h1>Today's news</h1>
<h2>Sections</h2>
<SFMT Section UL ORDER=ascend KEY=Name>
<h2>Top stories</h2>
<SFMT Headline UL ORDER=ascend KEY=title>
</body></html>"#,
        ),
        (
            "section",
            r#"<html><head><title><SFMT Name></title></head><body>
<h1><SFMT Name></h1>
<SFMT Story UL ORDER=descend KEY=date>
</body></html>"#,
        ),
        (
            "article",
            r#"<html><head><title><SFMT title></title></head><body>
<h1><SFMT headline></h1>
<SIF byline><p>By <SFMT byline></p></SIF>
<SIF date><p><SFMT date></p></SIF>
<SIF image><SFMT image></SIF>
<SFMT paragraph ENUM DELIM="\n">
<SIF Related><h3>Related stories</h3><SFMT Related UL></SIF>
<SIF External><p><SFMT External ENUM DELIM=" | "></p></SIF>
<p><SFMT Section></p>
</body></html>"#,
        ),
        ("byline", "<p class=\"byline\"><SFMT byline></p>"),
        ("dateline", "<p class=\"date\"><SFMT date></p>"),
        ("story-teaser", "<b><SFMT title></b> &mdash; <SFMT date>"),
        ("related-list", "<SFMT Related UL>"),
        ("photo", "<SFMT image>"),
        ("banner", "<hr><p>strudel news network</p>"),
    ]
}

/// Builds the general news site from wrapped article pages.
pub fn news_site(pages: &[(String, String)]) -> SiteBuilder {
    site_with_query("news", NEWS_QUERY, pages)
}

/// Builds the sports-only site from the same pages — "to demonstrate
/// Strudel's ability to generate multiple sites from one database".
pub fn sports_only_site(pages: &[(String, String)]) -> SiteBuilder {
    site_with_query("news-sports", SPORTS_QUERY, pages)
}

fn site_with_query(name: &str, query: &str, pages: &[(String, String)]) -> SiteBuilder {
    let docs = HtmlDoc::from_pairs(pages);
    let mut b = SiteBuilder::new(name)
        .source(Source::html("articles", "Articles", docs))
        .query(query)
        .root_collection("FrontRoot");
    for (tname, src) in news_templates() {
        b = b.template(tname, src);
    }
    b.assign_object("FrontPage", "front")
        .assign_collection("CategoryPages", "section")
        .assign_collection("ArticlePages", "article")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages() -> Vec<(String, String)> {
        vec![
            (
                "a0.html".into(),
                r#"<title>Big game tonight</title>
<meta name="category" content="sports"><meta name="date" content="1998-02-01">
<h1>Big game tonight</h1><p>Sports text.</p>
<a href="a1.html">related</a>"#
                    .into(),
            ),
            (
                "a1.html".into(),
                r#"<title>Storm coming</title>
<meta name="category" content="weather"><meta name="date" content="1998-02-02">
<h1>Storm coming</h1><p>Weather text.</p>
<a href="http://example.com/more">more</a>"#
                    .into(),
            ),
        ]
    }

    #[test]
    fn news_site_builds_and_renders() {
        let site = news_site(&pages()).build().unwrap();
        // FrontPage + 2 categories + 2 articles.
        assert_eq!(site.stats.site_nodes, 5);
        let out = site.render().unwrap();
        assert_eq!(out.pages.len(), 5);
        let front = out.page_named("FrontPage.html").unwrap();
        assert!(front.html.contains("Sections"));
        let sports_article = out
            .pages
            .iter()
            .find(|p| p.html.contains("<h1>Big game tonight</h1>"))
            .unwrap();
        assert!(sports_article.html.contains("Related stories"));
    }

    #[test]
    fn sports_site_filters_by_category() {
        let site = sports_only_site(&pages()).build().unwrap();
        // FrontPage + sports category + the sports article + a stub page
        // for the related (non-sports) story it links to: the Related link
        // clause mints ArticlePage(r), but none of r's content blocks run,
        // so the stub carries no attributes.
        assert_eq!(site.stats.site_nodes, 4);
        let out = site.render().unwrap();
        assert!(out.pages.iter().all(|p| !p.html.contains("Storm coming")));
        assert!(out.pages.iter().any(|p| p.html.contains("<h1>Big game tonight</h1>")));
    }

    #[test]
    fn queries_differ_by_exactly_the_two_predicates() {
        // Count differing non-comment lines between the two queries.
        let a: Vec<&str> = NEWS_QUERY
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("--"))
            .collect();
        let b: Vec<&str> = SPORTS_QUERY
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("--"))
            .collect();
        assert_eq!(a.len(), b.len());
        let diffs: Vec<(&&str, &&str)> =
            a.iter().zip(b.iter()).filter(|(x, y)| x != y).collect();
        assert_eq!(diffs.len(), 1, "one where clause differs");
        assert!(diffs[0].1.contains("isString(c)"));
        assert!(diffs[0].1.contains("c = \"sports\""));
    }

    #[test]
    fn both_sites_share_templates() {
        let general = news_site(&pages()).build().unwrap();
        let sports = sports_only_site(&pages()).build().unwrap();
        assert_eq!(general.stats.templates, 9, "paper: nine templates");
        assert_eq!(general.stats.templates, sports.stats.templates);
        assert_eq!(general.stats.template_lines, sports.stats.template_lines);
    }
}
