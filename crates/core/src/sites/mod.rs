//! The sites the paper built with the prototype (§5.1), as reusable
//! specifications: researcher homepages, the AT&T-Labs-style organization
//! site (internal and external versions), the CNN-style news site (general
//! and sports-only), and the INRIA-style bilingual site.
//!
//! Each function configures a [`SiteBuilder`](crate::SiteBuilder) from raw
//! source content; the workload crate generates paper-scale synthetic
//! content for them. These specifications are what the T1 (site
//! statistics) and E-multiversion experiments measure.

mod bilingual;
mod homepage;
mod news;
mod org;

pub use bilingual::bilingual_site;
pub use homepage::{homepage_external_templates, homepage_site, HOMEPAGE_QUERY, PERSONAL_DDL_EXAMPLE};
pub use news::{news_site, sports_only_site, NEWS_QUERY, SPORTS_QUERY};
pub use org::{org_external_templates, org_site, ORG_QUERY};
