//! The INRIA-Rodin-style bilingual site of §5.1: "the site has two views:
//! one English and one French. The two views are cross-linked so that each
//! English page is linked to the equivalent page in the French site and
//! vice versa. **One STRUQL query defines both views and creates the links
//! between them.**"
//!
//! The data source is a DDL file of items with `title-en`/`title-fr` and
//! `body-en`/`body-fr` attributes.

use crate::SiteBuilder;
use strudel_mediator::{Source, SourceFormat};

/// The single query defining both views and their cross-links.
pub const BILINGUAL_QUERY: &str = r#"
-- one query, two cross-linked language views
create EnHome(), FrHome()
link EnHome() -> "titre" -> "Research Institute",
     FrHome() -> "titre" -> "Institut de Recherche",
     EnHome() -> "french" -> FrHome(),
     FrHome() -> "english" -> EnHome()
collect Roots(EnHome()), Roots(FrHome())

where Items(x)
create EnPage(x), FrPage(x)
link EnHome() -> "item" -> EnPage(x),
     FrHome() -> "item" -> FrPage(x),
     EnPage(x) -> "french"  -> FrPage(x),
     FrPage(x) -> "english" -> EnPage(x)
collect EnPages(EnPage(x)), FrPages(FrPage(x))
{ where x -> "title-en" -> t  link EnPage(x) -> "titre" -> t }
{ where x -> "title-fr" -> t  link FrPage(x) -> "titre" -> t }
{ where x -> "body-en" -> b   link EnPage(x) -> "body" -> b }
{ where x -> "body-fr" -> b   link FrPage(x) -> "body" -> b }
"#;

const EN_TEMPLATE: &str = r#"<html><head><title><SFMT titre></title></head><body>
<h1><SFMT titre></h1>
<SIF body><p><SFMT body></p></SIF>
<SIF item><ul><SFOR i IN item><li><SFMT $i></li></SFOR></ul></SIF>
<SIF french><p><SFMT french> (en fran&ccedil;ais)</p></SIF>
</body></html>"#;

const FR_TEMPLATE: &str = r#"<html><head><title><SFMT titre></title></head><body>
<h1><SFMT titre></h1>
<SIF body><p><SFMT body></p></SIF>
<SIF item><ul><SFOR i IN item><li><SFMT $i></li></SFOR></ul></SIF>
<SIF english><p><SFMT english> (in English)</p></SIF>
</body></html>"#;

/// Builds the bilingual site from a DDL document declaring an `Items`
/// collection with per-language attributes.
pub fn bilingual_site(items_ddl: &str) -> SiteBuilder {
    SiteBuilder::new("bilingual")
        .source(Source::new("items", SourceFormat::Ddl, items_ddl))
        .query(BILINGUAL_QUERY)
        .template("en", EN_TEMPLATE)
        .template("fr", FR_TEMPLATE)
        .assign_object("EnHome", "en")
        .assign_object("FrHome", "fr")
        .assign_collection("EnPages", "en")
        .assign_collection("FrPages", "fr")
        .root_collection("Roots")
}

#[cfg(test)]
mod tests {
    use super::*;

    const ITEMS: &str = r#"
        object i1 in Items {
          title-en : "The Strudel project";
          title-fr : "Le projet Strudel";
          body-en  : "Declarative web sites.";
          body-fr  : "Sites web declaratifs.";
        }
        object i2 in Items {
          title-en : "People";
          title-fr : "Equipe";
          body-en  : "Researchers and students.";
        }
    "#;

    #[test]
    fn one_query_builds_both_views() {
        let site = bilingual_site(ITEMS).build().unwrap();
        // 2 homes + 2×2 item pages.
        assert_eq!(site.stats.site_nodes, 6);
        let out = site.render().unwrap();
        assert_eq!(out.pages.len(), 6);
        assert!(out
            .pages
            .iter()
            .any(|p| p.html.contains("Le projet Strudel")));
        assert!(out
            .pages
            .iter()
            .any(|p| p.html.contains("The Strudel project")));
    }

    #[test]
    fn pages_are_cross_linked() {
        let site = bilingual_site(ITEMS).build().unwrap();
        let g = &site.result.graph;
        let i1 = site.database.graph().node_by_name("i1").unwrap();
        let en = site
            .result
            .skolem_node("EnPage", &[strudel_graph::Value::Node(i1)])
            .unwrap();
        let fr = site
            .result
            .skolem_node("FrPage", &[strudel_graph::Value::Node(i1)])
            .unwrap();
        assert_eq!(
            g.first_attr_str(en, "french"),
            Some(&strudel_graph::Value::Node(fr))
        );
        assert_eq!(
            g.first_attr_str(fr, "english"),
            Some(&strudel_graph::Value::Node(en))
        );
    }

    #[test]
    fn missing_translations_are_tolerated() {
        // i2 has no body-fr: its French page simply lacks the body.
        let site = bilingual_site(ITEMS).build().unwrap();
        let out = site.render().unwrap();
        let fr_people = out
            .pages
            .iter()
            .find(|p| p.html.contains("<h1>Equipe</h1>"))
            .unwrap();
        assert!(!fr_people.html.contains("<p>Researchers"));
    }
}
