//! The site-building façade.

use crate::error::StrudelError;
use crate::stats::{count_spec_lines, SiteStats};
use strudel_graph::Oid;
use strudel_mediator::{Mediator, Source, SourceReport};
use strudel_repo::{Database, IndexLevel};
use strudel_schema::constraint::runtime::{self, CheckResult};
use strudel_schema::constraint::verify::{self, Verdict};
use strudel_schema::constraint::{parse_constraint, Constraint};
use strudel_schema::SiteSchema;
use strudel_struql::{EvalOptions, EvalResult, Evaluator, Parallelism, Program};
use std::sync::Arc;
use strudel_template::{HtmlGenerator, SiteOutput, TemplateSet};

/// Declarative description of a site, built fluently and materialized by
/// [`SiteBuilder::build`].
#[derive(Default)]
pub struct SiteBuilder {
    name: String,
    sources: Vec<Source>,
    query: String,
    templates: Vec<(String, String)>,
    object_assignments: Vec<(String, String)>,
    collection_assignments: Vec<(String, String)>,
    default_template: Option<String>,
    root_collection: String,
    constraints: Vec<String>,
    index_level: Option<IndexLevel>,
    optimize: bool,
    parallelism: Parallelism,
}

impl SiteBuilder {
    /// Starts a builder for a site called `name`.
    pub fn new(name: &str) -> Self {
        SiteBuilder {
            name: name.to_owned(),
            optimize: true,
            ..Default::default()
        }
    }

    /// Registers a data source.
    pub fn source(mut self, source: Source) -> Self {
        self.sources.push(source);
        self
    }

    /// Sets the site-definition query (STRUQL).
    pub fn query(mut self, query: &str) -> Self {
        self.query = query.to_owned();
        self
    }

    /// Registers a named HTML template.
    pub fn template(mut self, name: &str, src: &str) -> Self {
        self.templates.push((name.to_owned(), src.to_owned()));
        self
    }

    /// Assigns a template to a specific object (by Skolem-derived name,
    /// e.g. `RootPage`).
    pub fn assign_object(mut self, object: &str, template: &str) -> Self {
        self.object_assignments
            .push((object.to_owned(), template.to_owned()));
        self
    }

    /// Assigns a template to every member of a collection.
    pub fn assign_collection(mut self, collection: &str, template: &str) -> Self {
        self.collection_assignments
            .push((collection.to_owned(), template.to_owned()));
        self
    }

    /// Sets the fallback template.
    pub fn default_template(mut self, template: &str) -> Self {
        self.default_template = Some(template.to_owned());
        self
    }

    /// Names the output collection whose members are the site's root
    /// pages.
    pub fn root_collection(mut self, collection: &str) -> Self {
        self.root_collection = collection.to_owned();
        self
    }

    /// Adds an integrity constraint, verified statically at build time and
    /// checked at runtime on the materialized site graph.
    pub fn constraint(mut self, constraint: &str) -> Self {
        self.constraints.push(constraint.to_owned());
        self
    }

    /// Overrides the repository index level (default: full indexing).
    pub fn index_level(mut self, level: IndexLevel) -> Self {
        self.index_level = Some(level);
        self
    }

    /// Disables the cost-based condition ordering (ablation).
    pub fn without_optimizer(mut self) -> Self {
        self.optimize = false;
        self
    }

    /// Sets the worker budget for where-stage evaluation (default:
    /// sequential). The built site is byte-identical at any setting — same
    /// site graph, same Skolem oids.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Runs the pipeline: wrap → mediate → evaluate → extract schema →
    /// verify constraints.
    pub fn build(self) -> Result<Site, StrudelError> {
        if self.query.trim().is_empty() {
            return Err(StrudelError::Config("no site-definition query set".into()));
        }
        if self.root_collection.is_empty() {
            return Err(StrudelError::Config("no root collection set".into()));
        }

        let mut mediator = Mediator::new();
        let source_count = self.sources.len();
        for s in self.sources {
            mediator.add_source(s);
        }
        let warehouse = mediator.build()?;
        let database = Arc::new(Database::from_graph(
            warehouse.graph,
            self.index_level.unwrap_or(IndexLevel::Full),
        ));

        let program = strudel_struql::parse(&self.query)?;
        let result = Evaluator::with_options(
            &database,
            EvalOptions {
                optimize: self.optimize,
                parallelism: self.parallelism,
                ..EvalOptions::default()
            },
        )
        .eval(&program)?;
        let schema = SiteSchema::extract(&program);

        let mut templates = TemplateSet::new();
        let mut template_lines = 0usize;
        for (name, src) in &self.templates {
            template_lines += count_spec_lines(src);
            templates.add_template(name, src)?;
        }
        for (object, t) in &self.object_assignments {
            templates.assign_object(object, t);
        }
        for (coll, t) in &self.collection_assignments {
            templates.assign_collection(coll, t);
        }
        if let Some(d) = &self.default_template {
            templates.set_default(d);
        }

        let mut verifications = Vec::with_capacity(self.constraints.len());
        for src in &self.constraints {
            let constraint = parse_constraint(src)?;
            let static_verdict = verify::verify(&schema, &constraint);
            let runtime_result = runtime::check(&result.graph, &constraint);
            verifications.push(Verification {
                constraint,
                static_verdict,
                runtime_result,
            });
        }

        let stats = SiteStats {
            name: self.name.clone(),
            sources: source_count,
            query_lines: count_spec_lines(&self.query),
            link_clauses: program.link_clause_count(),
            templates: templates.template_count(),
            template_lines,
            data_nodes: database.graph().node_count(),
            data_edges: database.graph().edge_count(),
            site_nodes: result.new_nodes.len(),
            pages: 0,
        };

        Ok(Site {
            name: self.name,
            database,
            program,
            result,
            schema,
            templates,
            root_collection: self.root_collection,
            verifications,
            source_reports: warehouse.reports,
            stats,
        })
    }
}

/// The outcome of one constraint, both ways.
#[derive(Debug)]
pub struct Verification {
    /// The parsed constraint.
    pub constraint: Constraint,
    /// The sound static verdict from the site schema.
    pub static_verdict: Verdict,
    /// The complete runtime check on the materialized site graph.
    pub runtime_result: CheckResult,
}

/// A fully built site: warehoused data, materialized site graph, schema,
/// templates, and verification results.
#[derive(Debug)]
pub struct Site {
    /// Site name.
    pub name: String,
    /// The warehoused, indexed data graph, shareable across threads
    /// (the click-time server hands it to a whole worker pool).
    pub database: Arc<Database>,
    /// The parsed site-definition query.
    pub program: Program,
    /// The evaluation result (site graph + Skolem table).
    pub result: EvalResult,
    /// The query's site schema.
    pub schema: SiteSchema,
    /// The registered templates.
    pub templates: TemplateSet,
    /// The collection holding root pages.
    pub root_collection: String,
    /// Constraint outcomes.
    pub verifications: Vec<Verification>,
    /// Per-source warehouse reports.
    pub source_reports: Vec<SourceReport>,
    /// T1 statistics (pages filled in by [`Site::render`]).
    pub stats: SiteStats,
}

impl Site {
    /// Shortcut: the node a zero-ary Skolem symbol produced, if any.
    pub fn skolem_oid(&self, symbol: &str) -> Option<Oid> {
        self.result.skolem.lookup(symbol, &[])
    }

    /// The root page oids: node members of the root collection.
    pub fn roots(&self) -> Vec<Oid> {
        self.result
            .graph
            .members_str(&self.root_collection)
            .iter()
            .filter_map(strudel_graph::Value::as_node)
            .collect()
    }

    /// Renders the site with its own templates.
    pub fn render(&self) -> Result<SiteOutput, StrudelError> {
        self.render_with(&self.templates)
    }

    /// Renders the same site graph with a different template set — how
    /// Strudel produces "multiple HTML renderings of the same site graph"
    /// (§1), e.g. the AT&T external site from the internal site graph.
    pub fn render_with(&self, templates: &TemplateSet) -> Result<SiteOutput, StrudelError> {
        let roots = self.roots();
        if roots.is_empty() {
            return Err(StrudelError::Config(format!(
                "root collection '{}' has no node members",
                self.root_collection
            )));
        }
        Ok(HtmlGenerator::new(&self.result.graph, templates).generate(&roots)?)
    }

    /// Derives a new site by applying another STRUQL query to **this
    /// site's graph** — the §5.1 suciu pattern: "its site graph is built
    /// in several successive steps by multiple, composed STRUQL queries;
    /// for example, the last step copies the entire site graph and adds a
    /// navigation bar to each page". The derived site inherits this site's
    /// templates (override assignments as needed) and names its own root
    /// collection.
    pub fn derive(
        &self,
        name: &str,
        query: &str,
        root_collection: &str,
    ) -> Result<Site, StrudelError> {
        let database = Arc::new(Database::from_graph(
            self.result.graph.clone(),
            IndexLevel::Full,
        ));
        let program = strudel_struql::parse(query)?;
        let result = Evaluator::new(&database).eval(&program)?;
        let schema = SiteSchema::extract(&program);
        let stats = SiteStats {
            name: name.to_owned(),
            sources: self.stats.sources,
            query_lines: count_spec_lines(query),
            link_clauses: program.link_clause_count(),
            templates: self.templates.template_count(),
            template_lines: self.stats.template_lines,
            data_nodes: database.graph().node_count(),
            data_edges: database.graph().edge_count(),
            site_nodes: result.new_nodes.len(),
            pages: 0,
        };
        Ok(Site {
            name: name.to_owned(),
            database,
            program,
            result,
            schema,
            templates: self.templates.clone(),
            root_collection: root_collection.to_owned(),
            verifications: Vec::new(),
            source_reports: self.source_reports.clone(),
            stats,
        })
    }

    /// Incrementally re-renders a previous output after the site-graph
    /// objects in `changed` were modified: only pages that read a changed
    /// object are re-rendered (see
    /// [`HtmlGenerator::regenerate`](strudel_template::HtmlGenerator::regenerate)).
    pub fn regenerate(
        &self,
        previous: &SiteOutput,
        changed: &[Oid],
    ) -> Result<SiteOutput, StrudelError> {
        Ok(HtmlGenerator::new(&self.result.graph, &self.templates)
            .regenerate(previous, changed)?)
    }

    /// T1 statistics including the page count of a render.
    pub fn stats_with_render(&self) -> Result<SiteStats, StrudelError> {
        let out = self.render()?;
        let mut stats = self.stats.clone();
        stats.pages = out.pages.len();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_mediator::SourceFormat;

    fn builder() -> SiteBuilder {
        SiteBuilder::new("test")
            .source(Source::new(
                "bib",
                SourceFormat::Bibtex,
                r#"
                @article{p1, title={Alpha}, author={A One and B Two}, year=1997}
                @inproceedings{p2, title={Beta}, author={C Three}, year=1998, booktitle={S}}
                "#,
            ))
            .query(
                r#"
                create RootPage()
                where Publications(x)
                create PaperPage(x)
                link RootPage() -> "paper" -> PaperPage(x)
                { where x -> l -> v link PaperPage(x) -> l -> v }
                collect Roots(RootPage()), Pages(PaperPage(x))
            "#,
            )
            .template("root", "<h1>Papers</h1><SFMT paper UL>")
            .template("paper", "<h2><SFMT title></h2>")
            .assign_object("RootPage", "root")
            .assign_collection("Pages", "paper")
            .root_collection("Roots")
    }

    #[test]
    fn full_pipeline_builds_and_renders() {
        let site = builder().build().unwrap();
        assert_eq!(site.stats.sources, 1);
        assert_eq!(site.stats.site_nodes, 3);
        assert!(site.stats.query_lines >= 6);
        assert_eq!(site.stats.link_clauses, 2);

        let out = site.render().unwrap();
        assert_eq!(out.pages.len(), 3);
        let stats = site.stats_with_render().unwrap();
        assert_eq!(stats.pages, 3);
    }

    #[test]
    fn multiple_renderings_of_one_site_graph() {
        let site = builder().build().unwrap();
        let plain = site.render().unwrap();

        let mut loud = TemplateSet::new();
        loud.add_template("root", "<h1>PAPERS!!</h1><SFMT paper UL>")
            .unwrap();
        loud.add_template("paper", "<h2>** <SFMT title> **</h2>").unwrap();
        loud.assign_object("RootPage", "root");
        loud.assign_collection("Pages", "paper");
        let loud_out = site.render_with(&loud).unwrap();
        assert_eq!(plain.pages.len(), loud_out.pages.len());
        assert_ne!(plain.pages[0].html, loud_out.pages[0].html);
    }

    #[test]
    fn constraints_are_verified_both_ways() {
        let site = builder()
            .constraint("forall p in Pages : exists r in Roots : r -> * -> p")
            .constraint(r#"forall p in Pages : p -> "editor" -> e"#)
            .build()
            .unwrap();
        assert_eq!(site.verifications.len(), 2);
        assert_eq!(site.verifications[0].static_verdict, Verdict::Proved);
        assert!(site.verifications[0].runtime_result.holds);
        assert_eq!(site.verifications[1].static_verdict, Verdict::Unknown);
        assert!(!site.verifications[1].runtime_result.holds);
    }

    #[test]
    fn missing_query_is_a_config_error() {
        let err = SiteBuilder::new("x").root_collection("R").build().unwrap_err();
        assert!(matches!(err, StrudelError::Config(_)));
    }

    #[test]
    fn missing_root_collection_is_a_config_error() {
        let err = SiteBuilder::new("x")
            .query("create RootPage()")
            .build()
            .unwrap_err();
        assert!(matches!(err, StrudelError::Config(_)));
    }

    #[test]
    fn empty_roots_error_mentions_collection() {
        let site = builder().root_collection("Nothing").build().unwrap();
        let err = site.render().unwrap_err();
        assert!(err.to_string().contains("Nothing"));
    }

    #[test]
    fn derive_composes_queries_over_the_site_graph() {
        let site = builder().build().unwrap();
        // Second stage: frame every paper page with a navigation bar.
        let framed = site
            .derive(
                "framed",
                r#"
                create NavBar()
                link NavBar() -> "home" -> "RootPage.html"
                where Pages(p)
                create Framed(p)
                link Framed(p) -> "content" -> p,
                     Framed(p) -> "nav" -> NavBar()
                collect FramedRoots(Framed(p))
            "#,
                "FramedRoots",
            )
            .unwrap();
        assert_eq!(framed.roots().len(), 2);
        let nav = framed.skolem_oid("NavBar");
        assert!(nav.is_some());
        // The derived site still sees the first stage's pages as data.
        for r in framed.roots() {
            let content = framed
                .result
                .graph
                .first_attr_str(r, "content")
                .and_then(strudel_graph::Value::as_node)
                .unwrap();
            assert!(framed.result.graph.attr_str(content, "title").count() > 0);
        }
    }

    #[test]
    fn optimizer_toggle_does_not_change_results() {
        let a = builder().build().unwrap();
        let b = builder().without_optimizer().build().unwrap();
        assert_eq!(a.result.new_nodes.len(), b.result.new_nodes.len());
        assert_eq!(a.result.graph.edge_count(), b.result.graph.edge_count());
    }
}
