//! Site statistics — the measures §5.1 reports for every site built with
//! the prototype.

/// Counts specification lines the way the paper does: non-empty lines that
/// are not pure comments.
pub fn count_spec_lines(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("--") && !l.starts_with("//") && !l.starts_with('#')
        })
        .count()
}

/// The T1 statistics row for one site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteStats {
    /// Site name.
    pub name: String,
    /// Number of data sources integrated.
    pub sources: usize,
    /// Site-definition query lines (comments and blanks excluded).
    pub query_lines: usize,
    /// `link` clauses in the query — the paper's structural-complexity
    /// proxy (§6.1).
    pub link_clauses: usize,
    /// Number of HTML templates.
    pub templates: usize,
    /// Total template source lines.
    pub template_lines: usize,
    /// Data graph size.
    pub data_nodes: usize,
    /// Data graph edges.
    pub data_edges: usize,
    /// Nodes created by the site-definition query.
    pub site_nodes: usize,
    /// Pages emitted by the last render (0 before rendering).
    pub pages: usize,
}

impl SiteStats {
    /// One row of the T1 table.
    pub fn row(&self) -> String {
        format!(
            "{:<18} {:>7} {:>11} {:>12} {:>9} {:>14} {:>10} {:>10} {:>10} {:>7}",
            self.name,
            self.sources,
            self.query_lines,
            self.link_clauses,
            self.templates,
            self.template_lines,
            self.data_nodes,
            self.data_edges,
            self.site_nodes,
            self.pages
        )
    }

    /// The header matching [`SiteStats::row`].
    pub fn header() -> String {
        format!(
            "{:<18} {:>7} {:>11} {:>12} {:>9} {:>14} {:>10} {:>10} {:>10} {:>7}",
            "site",
            "sources",
            "query-lines",
            "link-clauses",
            "templates",
            "template-lines",
            "data-nodes",
            "data-edges",
            "site-nodes",
            "pages"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_lines_skip_blanks_and_comments() {
        let src = "\n-- comment\n# also comment\nwhere C(x)\n\ncreate P(x)\n// more\n";
        assert_eq!(count_spec_lines(src), 2);
    }

    #[test]
    fn row_and_header_align() {
        let s = SiteStats {
            name: "test".into(),
            sources: 1,
            query_lines: 10,
            link_clauses: 3,
            templates: 2,
            template_lines: 20,
            data_nodes: 100,
            data_edges: 300,
            site_nodes: 50,
            pages: 40,
        };
        assert_eq!(s.row().len(), SiteStats::header().len());
    }
}
