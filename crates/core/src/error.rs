//! Top-level error type.

use std::fmt;

/// Any error raised while building or rendering a Strudel site.
#[derive(Debug)]
pub enum StrudelError {
    /// Source wrapping or mediation failed.
    Mediator(strudel_mediator::MediatorError),
    /// The site-definition query failed to parse, check, or evaluate.
    Struql(strudel_struql::StruqlError),
    /// A template failed to parse or render.
    Template(strudel_template::TemplateError),
    /// An integrity constraint failed to parse.
    Constraint(strudel_schema::constraint::ConstraintError),
    /// The builder was misconfigured.
    Config(String),
}

impl fmt::Display for StrudelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrudelError::Mediator(e) => write!(f, "{e}"),
            StrudelError::Struql(e) => write!(f, "{e}"),
            StrudelError::Template(e) => write!(f, "{e}"),
            StrudelError::Constraint(e) => write!(f, "{e}"),
            StrudelError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for StrudelError {}

impl From<strudel_mediator::MediatorError> for StrudelError {
    fn from(e: strudel_mediator::MediatorError) -> Self {
        StrudelError::Mediator(e)
    }
}

impl From<strudel_struql::StruqlError> for StrudelError {
    fn from(e: strudel_struql::StruqlError) -> Self {
        StrudelError::Struql(e)
    }
}

impl From<strudel_template::TemplateError> for StrudelError {
    fn from(e: strudel_template::TemplateError) -> Self {
        StrudelError::Template(e)
    }
}

impl From<strudel_schema::constraint::ConstraintError> for StrudelError {
    fn from(e: strudel_schema::constraint::ConstraintError) -> Self {
        StrudelError::Constraint(e)
    }
}
