//! Parallel site builds are *byte-identical* to sequential ones: the same
//! DDL printout, the same Skolem oids in the same creation order — the
//! whole point of the partition-order merge in `strudel_struql::par`.

use strudel::sites::{news_site, org_site};
use strudel::SiteBuilder;
use strudel_graph::ddl;
use strudel_struql::Parallelism;
use strudel_workload::{news, org};

fn assert_builds_identical(make: impl Fn() -> SiteBuilder) {
    let sequential = make()
        .parallelism(Parallelism::Sequential)
        .build()
        .unwrap();
    let reference_ddl = ddl::print(&sequential.result.graph);
    for workers in [2usize, 4, 8] {
        let parallel = make()
            .parallelism(Parallelism::Threads(workers))
            .build()
            .unwrap();
        assert_eq!(
            ddl::print(&parallel.result.graph),
            reference_ddl,
            "{workers}-worker build diverged from sequential"
        );
        assert_eq!(parallel.result.new_nodes, sequential.result.new_nodes);
        assert_eq!(
            parallel.result.rows_evaluated,
            sequential.result.rows_evaluated
        );
        for root in sequential.roots() {
            assert!(parallel.roots().contains(&root));
        }
    }
}

#[test]
fn news_site_builds_identically_at_any_worker_count() {
    let corpus = news::generate(&news::NewsConfig {
        articles: 60,
        ..Default::default()
    });
    assert_builds_identical(|| news_site(&corpus.pages));
}

#[test]
fn org_site_builds_identically_at_any_worker_count() {
    let data = org::generate(&org::OrgConfig {
        people: 40,
        ..Default::default()
    });
    assert_builds_identical(|| {
        org_site(
            &data.people_csv,
            &data.departments_csv,
            &data.projects_rec,
            &data.demos_rec,
            &data.legacy_html,
        )
    });
}

#[test]
fn auto_parallelism_matches_sequential() {
    let corpus = news::generate(&news::NewsConfig {
        articles: 25,
        ..Default::default()
    });
    let sequential = news_site(&corpus.pages).build().unwrap();
    let auto = news_site(&corpus.pages)
        .parallelism(Parallelism::Auto)
        .build()
        .unwrap();
    assert_eq!(
        ddl::print(&auto.result.graph),
        ddl::print(&sequential.result.graph)
    );
}
