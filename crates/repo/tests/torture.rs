//! Crash-point torture for the storage layer.
//!
//! A seeded workload mutates a persistent [`Database`] through a
//! [`FaultVfs`]. A first, fault-free pass counts how many filesystem
//! operations the schedule issues; then, for every operation index `k`,
//! the workload is rerun on a fresh directory with a crash armed at `k`
//! (the faulted operation fails or tears, and every operation after it
//! fails too, as a crashed process issues no more I/O). After each
//! simulated crash the directory is reopened with the *real* filesystem
//! and the recovered graph must equal a fault-free in-memory oracle that
//! mirrored every operation the crashed process saw succeed — first
//! structurally via `graphs_equivalent`, then byte-for-byte through the
//! snapshot encoder.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use strudel_graph::{GraphDelta, Oid, Value};
use strudel_prng::{choose, Rng, SeedableRng, SmallRng};
use strudel_repo::vfs::{FaultMode, FaultVfs};
use strudel_repo::{snapshot, Database, IndexLevel, RepoError};
use strudel_schema::incremental::graphs_equivalent;

const STEPS: usize = 40;
const SEEDS: [u64; 4] = [0xC0FFEE, 7, 1998, 42];

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("strudel-torture-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One mutation step. The decision is a function of the rng stream and
/// the database's current graph, both of which are identical between the
/// fault-free pass and a crash pass up to the crash point — so the two
/// passes make the same choices. Every operation that returns `Ok` is
/// mirrored into `shadow`, the in-memory oracle.
fn mutate(db: &mut Database, rng: &mut SmallRng, shadow: &mut Database) -> Result<(), RepoError> {
    let nodes = db.graph().node_count();
    match rng.gen_range(0..12u32) {
        0 | 1 => {
            let name = format!("n{}", rng.gen_range(0..24u32));
            db.add_named_node(&name)?;
            shadow.add_named_node(&name).expect("shadow");
        }
        2 => {
            db.add_node()?;
            shadow.add_node().expect("shadow");
        }
        3..=5 => {
            if nodes == 0 {
                db.add_node()?;
                shadow.add_node().expect("shadow");
                return Ok(());
            }
            let from = Oid::from_index(rng.gen_range(0..nodes));
            let label = *choose(rng, &["title", "year", "author", "cites"]);
            let to = if rng.gen_bool(0.3) {
                Value::Node(Oid::from_index(rng.gen_range(0..nodes)))
            } else {
                Value::Int(rng.gen_range(0..40i64))
            };
            db.add_edge(from, label, to.clone())?;
            shadow.add_edge(from, label, to).expect("shadow");
        }
        6 | 7 => {
            if nodes == 0 {
                return Ok(());
            }
            let from = Oid::from_index(rng.gen_range(0..nodes));
            let picked = {
                let g = db.graph();
                let edges = g.edges(from);
                if edges.is_empty() {
                    None
                } else {
                    let e = &edges[rng.gen_range(0..edges.len())];
                    Some((g.label_name(e.label).to_string(), e.to.clone()))
                }
            };
            if let Some((label, to)) = picked {
                db.remove_edge(from, &label, &to)?;
                shadow.remove_edge(from, &label, &to).expect("shadow");
            }
        }
        8 | 9 => {
            if nodes == 0 {
                return Ok(());
            }
            let coll = format!("C{}", rng.gen_range(0..4u32));
            let member = Value::Node(Oid::from_index(rng.gen_range(0..nodes)));
            db.collect(&coll, member.clone())?;
            shadow.collect(&coll, member).expect("shadow");
        }
        10 => {
            let picked = {
                let g = db.graph();
                let colls: Vec<_> = g
                    .collections()
                    .map(|(cid, name)| (cid, name.to_string()))
                    .collect();
                if colls.is_empty() {
                    None
                } else {
                    let (cid, name) = &colls[rng.gen_range(0..colls.len())];
                    let members = g.members(*cid);
                    if members.is_empty() {
                        None
                    } else {
                        Some((
                            name.clone(),
                            members[rng.gen_range(0..members.len())].clone(),
                        ))
                    }
                }
            };
            if let Some((coll, member)) = picked {
                db.uncollect(&coll, &member)?;
                shadow.uncollect(&coll, &member).expect("shadow");
            }
        }
        _ => {
            // A multi-op delta: one WAL frame creating a node, an edge on
            // it, and a collection membership. The name is drawn from the
            // full 64-bit stream so it never collides (a deduped AddNode
            // would shift the indices the delta was built against).
            let name = format!("d{:016x}", rng.next_u64());
            let n = Oid::from_index(nodes);
            let mut d = GraphDelta::new();
            d.add_node(Some(&name));
            d.add_edge(n, "kind", Value::string("delta"));
            d.collect("D", Value::Node(n));
            db.apply_delta(&d)?;
            shadow.apply_delta(&d).expect("shadow");
        }
    }
    Ok(())
}

/// Runs the seeded schedule against a persistent database on `vfs`,
/// mirroring successful mutations into `shadow`. Checkpoints and reopens
/// are woven through the schedule so crash points land inside both.
/// Returns the first error — the simulated crash — or `Ok` if the
/// schedule completes.
fn run_workload(
    dir: &Path,
    vfs: &FaultVfs,
    seed: u64,
    shadow: &mut Database,
) -> Result<(), RepoError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::open_with(dir, IndexLevel::Full, Arc::new(vfs.clone()))?;
    for step in 0..STEPS {
        if step % 9 == 8 {
            db.checkpoint()?;
        } else if step % 13 == 12 {
            drop(db);
            db = Database::open_with(dir, IndexLevel::Full, Arc::new(vfs.clone()))?;
        } else {
            mutate(&mut db, &mut rng, shadow)?;
        }
    }
    db.checkpoint()?;
    Ok(())
}

fn assert_matches_oracle(db: &Database, shadow: &Database, ctx: &str) {
    assert!(
        graphs_equivalent(db.graph(), shadow.graph()),
        "{ctx}: recovered graph differs from the oracle"
    );
    let mut recovered = Vec::new();
    snapshot::save_graph(db.graph(), &mut recovered).unwrap();
    let mut oracle = Vec::new();
    snapshot::save_graph(shadow.graph(), &mut oracle).unwrap();
    assert_eq!(recovered, oracle, "{ctx}: byte-level divergence");
}

/// The fault-free pass: returns how many vfs operations the schedule
/// issues, and sanity-checks the oracle against the surviving database.
fn fault_free_ops(seed: u64) -> u64 {
    let dir = tmpdir(&format!("clean-{seed}"));
    let vfs = FaultVfs::new();
    let mut shadow = Database::new(IndexLevel::None);
    run_workload(&dir, &vfs, seed, &mut shadow).expect("fault-free run");
    let db = Database::open(&dir, IndexLevel::Full).unwrap();
    assert_matches_oracle(&db, &shadow, &format!("seed {seed} fault-free"));
    let total = vfs.op_count();
    std::fs::remove_dir_all(&dir).ok();
    total
}

/// What the crash at operation `k` does: derived from the seed so the
/// schedule mixes clean failures with torn writes of every small length.
fn mode_for(seed: u64, k: u64) -> FaultMode {
    let mut r = SmallRng::seed_from_u64(seed ^ k.wrapping_mul(0x9E37_79B9));
    if r.gen_bool(0.5) {
        FaultMode::Fail
    } else {
        FaultMode::Partial(r.gen_range(0..64usize))
    }
}

#[test]
fn every_crash_point_recovers_to_the_oracle() {
    for seed in SEEDS {
        let total = fault_free_ops(seed);
        assert!(total > 60, "schedule should exercise many vfs ops: {total}");
        for k in 0..total {
            let mode = mode_for(seed, k);
            let ctx = format!("seed {seed} crash at op {k}/{total} ({mode:?})");
            let dir = tmpdir(&format!("crash-{seed}-{k}"));
            let vfs = FaultVfs::new();
            vfs.arm_crash(k, mode);
            let mut shadow = Database::new(IndexLevel::None);
            let res = run_workload(&dir, &vfs, seed, &mut shadow);
            assert!(res.is_err(), "{ctx}: armed crash must surface an error");
            assert!(vfs.fired(), "{ctx}: fault never fired");
            // The crashed process is gone; recover on the real filesystem.
            let mut db = Database::open(&dir, IndexLevel::Full)
                .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
            assert_matches_oracle(&db, &shadow, &ctx);
            // The recovered database takes writes and survives a reopen.
            let post = db.add_node().unwrap_or_else(|e| panic!("{ctx}: {e}"));
            drop(db);
            let db = Database::open(&dir, IndexLevel::Full).unwrap();
            assert!(db.graph().contains_node(post), "{ctx}: post-crash write lost");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// The checkpoint window: a crash at *every* operation inside
/// `checkpoint()` — WAL sync, snapshot temp write, atomic rename,
/// directory sync, WAL reset — must recover the full pre-checkpoint
/// state, never a double-applied or truncated one. At least one of those
/// crash points lands between the snapshot rename and the WAL reset, the
/// window where a stale log survives on disk.
#[test]
fn crash_anywhere_inside_checkpoint_is_safe() {
    let mut saw_stale_wal = false;
    let mut covered = 0;
    for off in 0..16u64 {
        let dir = tmpdir(&format!("ckpt-window-{off}"));
        let vfs = FaultVfs::new();
        let mut db =
            Database::open_with(&dir, IndexLevel::Full, Arc::new(vfs.clone())).unwrap();
        let a = db.add_named_node("a").unwrap();
        db.add_edge(a, "v", Value::Int(1)).unwrap();
        db.add_edge(a, "v", Value::Int(2)).unwrap();
        db.collect("C", Value::Node(a)).unwrap();
        let mode = if off % 2 == 0 {
            FaultMode::Fail
        } else {
            FaultMode::Partial(off as usize)
        };
        vfs.arm_crash(vfs.op_count() + off, mode);
        let crashed = db.checkpoint().is_err();
        drop(db);
        if !crashed {
            // The whole checkpoint fit in fewer than `off` operations:
            // every point in the window has been covered.
            assert!(!vfs.fired());
            std::fs::remove_dir_all(&dir).ok();
            break;
        }
        covered += 1;
        let db = Database::open(&dir, IndexLevel::Full)
            .unwrap_or_else(|e| panic!("checkpoint crash at +{off}: recovery failed: {e}"));
        let a = db.graph().node_by_name("a").expect("node survives");
        assert_eq!(
            db.graph().attr_str(a, "v").count(),
            2,
            "checkpoint crash at +{off}: edges double-applied or lost"
        );
        assert_eq!(db.graph().members_str("C").len(), 1);
        saw_stale_wal |= db.recovered_stale_wal();
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(covered >= 5, "only {covered} checkpoint crash points covered");
    assert!(
        saw_stale_wal,
        "no crash point left a stale WAL (rename-vs-reset window untested)"
    );
}

/// A *transient* write fault during `apply_delta` (the process lives on)
/// must reject the delta atomically: the graph, its indexes, and the
/// on-disk log keep exactly their prior state, and the database refuses
/// further writes — the frame may sit torn on disk, and appending after
/// it would corrupt the log mid-stream — until a reopen recovers it.
#[test]
fn failed_wal_append_is_atomic() {
    for (i, mode) in [FaultMode::Fail, FaultMode::Partial(1), FaultMode::Partial(9)]
        .into_iter()
        .enumerate()
    {
        let dir = tmpdir(&format!("append-fault-{i}"));
        let vfs = FaultVfs::new();
        let mut db =
            Database::open_with(&dir, IndexLevel::Full, Arc::new(vfs.clone())).unwrap();
        let a = db.add_named_node("a").unwrap();
        db.add_edge(a, "v", Value::Int(1)).unwrap();

        vfs.arm_fault(vfs.op_count(), mode);
        let mut d = GraphDelta::new();
        d.add_edge(a, "w", Value::Int(7));
        d.collect("W", Value::Node(a));
        assert!(db.apply_delta(&d).is_err(), "{mode:?}");

        // Nothing leaked into the in-memory state or its indexes.
        assert_eq!(db.graph().attr_str(a, "w").count(), 0, "{mode:?}");
        assert!(db.graph().collection_id("W").is_none(), "{mode:?}");
        let w = db.graph().label("w");
        assert!(
            w.and_then(|l| db.extension(l)).is_none_or(|e| e.is_empty()),
            "{mode:?}: extension index leaked"
        );

        // The log is poisoned until reopen; the fault was transient, so
        // reopen succeeds and shows only the committed prefix.
        assert!(db.add_edge(a, "x", Value::Int(1)).is_err(), "{mode:?}");
        drop(db);
        let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
        let a = db.graph().node_by_name("a").unwrap();
        assert_eq!(db.graph().attr_str(a, "v").count(), 1, "{mode:?}");
        assert_eq!(db.graph().attr_str(a, "w").count(), 0, "{mode:?}");
        // And the retry goes through.
        db.apply_delta(&d).unwrap_or_else(|e| panic!("{mode:?}: retry failed: {e}"));
        assert_eq!(db.graph().attr_str(a, "w").count(), 1, "{mode:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
