//! Crash-point torture for the storage layer.
//!
//! A seeded workload mutates a persistent [`Database`] through a
//! [`FaultVfs`]. A first, fault-free pass counts how many filesystem
//! operations the schedule issues; then, for every operation index `k`,
//! the workload is rerun on a fresh directory with a crash armed at `k`
//! (the faulted operation fails or tears, and every operation after it
//! fails too, as a crashed process issues no more I/O). After each
//! simulated crash the directory is reopened with the *real* filesystem
//! and the recovered graph must equal a fault-free in-memory oracle that
//! mirrored every operation the crashed process saw succeed — first
//! structurally via `graphs_equivalent`, then byte-for-byte through the
//! snapshot encoder.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use strudel_graph::{GraphDelta, Oid, Value};
use strudel_prng::{choose, Rng, SeedableRng, SmallRng};
use strudel_repo::vfs::{FaultMode, FaultVfs};
use strudel_repo::{snapshot, Database, IndexLevel, RepoError};
use strudel_schema::incremental::graphs_equivalent;

const STEPS: usize = 40;
const SEEDS: [u64; 4] = [0xC0FFEE, 7, 1998, 42];

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("strudel-torture-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One mutation step. The decision is a function of the rng stream and
/// the database's current graph, both of which are identical between the
/// fault-free pass and a crash pass up to the crash point — so the two
/// passes make the same choices. Every operation that returns `Ok` is
/// mirrored into `shadow`, the in-memory oracle.
fn mutate(db: &mut Database, rng: &mut SmallRng, shadow: &mut Database) -> Result<(), RepoError> {
    let nodes = db.graph().node_count();
    match rng.gen_range(0..12u32) {
        0 | 1 => {
            let name = format!("n{}", rng.gen_range(0..24u32));
            db.add_named_node(&name)?;
            shadow.add_named_node(&name).expect("shadow");
        }
        2 => {
            db.add_node()?;
            shadow.add_node().expect("shadow");
        }
        3..=5 => {
            if nodes == 0 {
                db.add_node()?;
                shadow.add_node().expect("shadow");
                return Ok(());
            }
            let from = Oid::from_index(rng.gen_range(0..nodes));
            let label = *choose(rng, &["title", "year", "author", "cites"]);
            let to = if rng.gen_bool(0.3) {
                Value::Node(Oid::from_index(rng.gen_range(0..nodes)))
            } else {
                Value::Int(rng.gen_range(0..40i64))
            };
            db.add_edge(from, label, to.clone())?;
            shadow.add_edge(from, label, to).expect("shadow");
        }
        6 | 7 => {
            if nodes == 0 {
                return Ok(());
            }
            let from = Oid::from_index(rng.gen_range(0..nodes));
            let picked = {
                let g = db.graph();
                let edges = g.edges(from);
                if edges.is_empty() {
                    None
                } else {
                    let e = &edges[rng.gen_range(0..edges.len())];
                    Some((g.label_name(e.label).to_string(), e.to.clone()))
                }
            };
            if let Some((label, to)) = picked {
                db.remove_edge(from, &label, &to)?;
                shadow.remove_edge(from, &label, &to).expect("shadow");
            }
        }
        8 | 9 => {
            if nodes == 0 {
                return Ok(());
            }
            let coll = format!("C{}", rng.gen_range(0..4u32));
            let member = Value::Node(Oid::from_index(rng.gen_range(0..nodes)));
            db.collect(&coll, member.clone())?;
            shadow.collect(&coll, member).expect("shadow");
        }
        10 => {
            let picked = {
                let g = db.graph();
                let colls: Vec<_> = g
                    .collections()
                    .map(|(cid, name)| (cid, name.to_string()))
                    .collect();
                if colls.is_empty() {
                    None
                } else {
                    let (cid, name) = &colls[rng.gen_range(0..colls.len())];
                    let members = g.members(*cid);
                    if members.is_empty() {
                        None
                    } else {
                        Some((
                            name.clone(),
                            members[rng.gen_range(0..members.len())].clone(),
                        ))
                    }
                }
            };
            if let Some((coll, member)) = picked {
                db.uncollect(&coll, &member)?;
                shadow.uncollect(&coll, &member).expect("shadow");
            }
        }
        _ => {
            // A multi-op delta: one WAL frame creating a node, an edge on
            // it, and a collection membership. The name is drawn from the
            // full 64-bit stream so it never collides (a deduped AddNode
            // would shift the indices the delta was built against).
            let name = format!("d{:016x}", rng.next_u64());
            let n = Oid::from_index(nodes);
            let mut d = GraphDelta::new();
            d.add_node(Some(&name));
            d.add_edge(n, "kind", Value::string("delta"));
            d.collect("D", Value::Node(n));
            db.apply_delta(&d)?;
            shadow.apply_delta(&d).expect("shadow");
        }
    }
    Ok(())
}

/// Runs the seeded schedule against a persistent database on `vfs`,
/// mirroring successful mutations into `shadow`. Checkpoints and reopens
/// are woven through the schedule so crash points land inside both.
/// Returns the first error — the simulated crash — or `Ok` if the
/// schedule completes.
fn run_workload(
    dir: &Path,
    vfs: &FaultVfs,
    seed: u64,
    shadow: &mut Database,
) -> Result<(), RepoError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::open_with(dir, IndexLevel::Full, Arc::new(vfs.clone()))?;
    for step in 0..STEPS {
        if step % 9 == 8 {
            db.checkpoint()?;
        } else if step % 13 == 12 {
            drop(db);
            db = Database::open_with(dir, IndexLevel::Full, Arc::new(vfs.clone()))?;
        } else {
            mutate(&mut db, &mut rng, shadow)?;
        }
    }
    db.checkpoint()?;
    Ok(())
}

fn assert_matches_oracle(db: &Database, shadow: &Database, ctx: &str) {
    assert!(
        graphs_equivalent(db.graph(), shadow.graph()),
        "{ctx}: recovered graph differs from the oracle"
    );
    let mut recovered = Vec::new();
    snapshot::save_graph(db.graph(), &mut recovered).unwrap();
    let mut oracle = Vec::new();
    snapshot::save_graph(shadow.graph(), &mut oracle).unwrap();
    assert_eq!(recovered, oracle, "{ctx}: byte-level divergence");
}

/// The fault-free pass: returns how many vfs operations the schedule
/// issues, and sanity-checks the oracle against the surviving database.
fn fault_free_ops(seed: u64) -> u64 {
    let dir = tmpdir(&format!("clean-{seed}"));
    let vfs = FaultVfs::new();
    let mut shadow = Database::new(IndexLevel::None);
    run_workload(&dir, &vfs, seed, &mut shadow).expect("fault-free run");
    let db = Database::open(&dir, IndexLevel::Full).unwrap();
    assert_matches_oracle(&db, &shadow, &format!("seed {seed} fault-free"));
    let total = vfs.op_count();
    std::fs::remove_dir_all(&dir).ok();
    total
}

/// What the crash at operation `k` does: derived from the seed so the
/// schedule mixes clean failures with torn writes of every small length.
fn mode_for(seed: u64, k: u64) -> FaultMode {
    let mut r = SmallRng::seed_from_u64(seed ^ k.wrapping_mul(0x9E37_79B9));
    if r.gen_bool(0.5) {
        FaultMode::Fail
    } else {
        FaultMode::Partial(r.gen_range(0..64usize))
    }
}

#[test]
fn every_crash_point_recovers_to_the_oracle() {
    for seed in SEEDS {
        let total = fault_free_ops(seed);
        assert!(total > 60, "schedule should exercise many vfs ops: {total}");
        for k in 0..total {
            let mode = mode_for(seed, k);
            let ctx = format!("seed {seed} crash at op {k}/{total} ({mode:?})");
            let dir = tmpdir(&format!("crash-{seed}-{k}"));
            let vfs = FaultVfs::new();
            vfs.arm_crash(k, mode);
            let mut shadow = Database::new(IndexLevel::None);
            let res = run_workload(&dir, &vfs, seed, &mut shadow);
            assert!(res.is_err(), "{ctx}: armed crash must surface an error");
            assert!(vfs.fired(), "{ctx}: fault never fired");
            // The crashed process is gone; recover on the real filesystem.
            let mut db = Database::open(&dir, IndexLevel::Full)
                .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
            assert_matches_oracle(&db, &shadow, &ctx);
            // The recovered database takes writes and survives a reopen.
            let post = db.add_node().unwrap_or_else(|e| panic!("{ctx}: {e}"));
            drop(db);
            let db = Database::open(&dir, IndexLevel::Full).unwrap();
            assert!(db.graph().contains_node(post), "{ctx}: post-crash write lost");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// The checkpoint window: a crash at *every* operation inside
/// `checkpoint()` — WAL sync, snapshot temp write, atomic rename,
/// directory sync, WAL reset — must recover the full pre-checkpoint
/// state, never a double-applied or truncated one. At least one of those
/// crash points lands between the snapshot rename and the WAL reset, the
/// window where a stale log survives on disk.
#[test]
fn crash_anywhere_inside_checkpoint_is_safe() {
    let mut saw_stale_wal = false;
    let mut covered = 0;
    for off in 0..16u64 {
        let dir = tmpdir(&format!("ckpt-window-{off}"));
        let vfs = FaultVfs::new();
        let mut db =
            Database::open_with(&dir, IndexLevel::Full, Arc::new(vfs.clone())).unwrap();
        let a = db.add_named_node("a").unwrap();
        db.add_edge(a, "v", Value::Int(1)).unwrap();
        db.add_edge(a, "v", Value::Int(2)).unwrap();
        db.collect("C", Value::Node(a)).unwrap();
        let mode = if off % 2 == 0 {
            FaultMode::Fail
        } else {
            FaultMode::Partial(off as usize)
        };
        vfs.arm_crash(vfs.op_count() + off, mode);
        let crashed = db.checkpoint().is_err();
        drop(db);
        if !crashed {
            // The whole checkpoint fit in fewer than `off` operations:
            // every point in the window has been covered.
            assert!(!vfs.fired());
            std::fs::remove_dir_all(&dir).ok();
            break;
        }
        covered += 1;
        let db = Database::open(&dir, IndexLevel::Full)
            .unwrap_or_else(|e| panic!("checkpoint crash at +{off}: recovery failed: {e}"));
        let a = db.graph().node_by_name("a").expect("node survives");
        assert_eq!(
            db.graph().attr_str(a, "v").count(),
            2,
            "checkpoint crash at +{off}: edges double-applied or lost"
        );
        assert_eq!(db.graph().members_str("C").len(), 1);
        saw_stale_wal |= db.recovered_stale_wal();
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(covered >= 5, "only {covered} checkpoint crash points covered");
    assert!(
        saw_stale_wal,
        "no crash point left a stale WAL (rename-vs-reset window untested)"
    );
}

/// A *transient* write fault during `apply_delta` (the process lives on)
/// must reject the delta atomically: the graph, its indexes, and the
/// on-disk log keep exactly their prior state, and the database refuses
/// further writes — the frame may sit torn on disk, and appending after
/// it would corrupt the log mid-stream — until a reopen recovers it.
#[test]
fn failed_wal_append_is_atomic() {
    for (i, mode) in [FaultMode::Fail, FaultMode::Partial(1), FaultMode::Partial(9)]
        .into_iter()
        .enumerate()
    {
        let dir = tmpdir(&format!("append-fault-{i}"));
        let vfs = FaultVfs::new();
        let mut db =
            Database::open_with(&dir, IndexLevel::Full, Arc::new(vfs.clone())).unwrap();
        let a = db.add_named_node("a").unwrap();
        db.add_edge(a, "v", Value::Int(1)).unwrap();

        vfs.arm_fault(vfs.op_count(), mode);
        let mut d = GraphDelta::new();
        d.add_edge(a, "w", Value::Int(7));
        d.collect("W", Value::Node(a));
        assert!(db.apply_delta(&d).is_err(), "{mode:?}");

        // Nothing leaked into the in-memory state or its indexes.
        assert_eq!(db.graph().attr_str(a, "w").count(), 0, "{mode:?}");
        assert!(db.graph().collection_id("W").is_none(), "{mode:?}");
        let w = db.graph().label("w");
        assert!(
            w.and_then(|l| db.extension(l)).is_none_or(|e| e.is_empty()),
            "{mode:?}: extension index leaked"
        );

        // The log is poisoned until reopen; the fault was transient, so
        // reopen succeeds and shows only the committed prefix.
        assert!(db.add_edge(a, "x", Value::Int(1)).is_err(), "{mode:?}");
        drop(db);
        let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
        let a = db.graph().node_by_name("a").unwrap();
        assert_eq!(db.graph().attr_str(a, "v").count(), 1, "{mode:?}");
        assert_eq!(db.graph().attr_str(a, "w").count(), 0, "{mode:?}");
        // And the retry goes through.
        db.apply_delta(&d).unwrap_or_else(|e| panic!("{mode:?}: retry failed: {e}"));
        assert_eq!(db.graph().attr_str(a, "w").count(), 1, "{mode:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Pager torture: the same crash-point discipline applied to the paged
// store. The tiny pool (4 frames of 128-byte pages) forces eviction
// writebacks on nearly every commit, so crash points land inside the
// write-ahead coupling (WAL sync before page flush), mid-eviction, and
// inside checkpoint's flush-all — not just inside WAL appends.
// ---------------------------------------------------------------------------

use strudel_graph::Graph;
use strudel_repo::{PagedRepo, PagerConfig};

const PAGER_STEPS: usize = 30;
const PAGER_SEEDS: [u64; 2] = [0xD15C, 3];

fn tiny_cfg() -> PagerConfig {
    PagerConfig {
        page_size: 128,
        pool_pages: 4,
        nodes_per_segment: 4,
    }
}

/// One seeded delta, built against the oracle's current graph (identical
/// to the store's state up to the crash point, so both passes draw the
/// same schedule).
fn pager_delta(rng: &mut SmallRng, g: &Graph) -> GraphDelta {
    let nodes = g.node_count();
    let mut d = GraphDelta::new();
    match rng.gen_range(0..10u32) {
        0..=2 => d.add_node(Some(&format!("p{:016x}", rng.next_u64()))),
        3..=5 if nodes > 0 => {
            let from = Oid::from_index(rng.gen_range(0..nodes));
            let label = *choose(rng, &["title", "year", "cites"]);
            let to = if rng.gen_bool(0.3) {
                Value::Node(Oid::from_index(rng.gen_range(0..nodes)))
            } else {
                Value::Int(rng.gen_range(0..40i64))
            };
            d.add_edge(from, label, to);
        }
        6 if nodes > 0 => {
            let from = Oid::from_index(rng.gen_range(0..nodes));
            let edges = g.edges(from);
            if edges.is_empty() {
                d.add_node(None);
            } else {
                let e = &edges[rng.gen_range(0..edges.len())];
                d.remove_edge(from, g.label_name(e.label), e.to.clone());
            }
        }
        7 | 8 if nodes > 0 => d.collect(
            &format!("C{}", rng.gen_range(0..3u32)),
            Value::Node(Oid::from_index(rng.gen_range(0..nodes))),
        ),
        9 => {
            let picked = {
                let colls: Vec<_> = g
                    .collections()
                    .map(|(cid, name)| (cid, name.to_string()))
                    .collect();
                if colls.is_empty() {
                    None
                } else {
                    let (cid, name) = &colls[rng.gen_range(0..colls.len())];
                    let members = g.members(*cid);
                    if members.is_empty() {
                        None
                    } else {
                        Some((
                            name.clone(),
                            members[rng.gen_range(0..members.len())].clone(),
                        ))
                    }
                }
            };
            match picked {
                Some((coll, member)) => d.uncollect(&coll, member),
                None => d.add_node(None),
            }
        }
        _ => d.add_node(None),
    }
    d
}

/// Runs the seeded schedule against a paged store on `vfs`, mirroring
/// acknowledged deltas into `shadow`. On error, returns the delta that
/// was in flight (if any) so the caller can reason about atomicity.
fn run_pager_workload(
    dir: &Path,
    vfs: &FaultVfs,
    seed: u64,
    shadow: &mut Database,
) -> Result<(), (RepoError, Option<GraphDelta>)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut repo = PagedRepo::open_with(Arc::new(vfs.clone()), dir, tiny_cfg())
        .map_err(|e| (e, None))?;
    for step in 0..PAGER_STEPS {
        if step % 9 == 8 {
            repo.checkpoint().map_err(|e| (e, None))?;
        } else if step % 13 == 12 {
            drop(repo);
            repo = PagedRepo::open_with(Arc::new(vfs.clone()), dir, tiny_cfg())
                .map_err(|e| (e, None))?;
        } else {
            let d = pager_delta(&mut rng, shadow.graph());
            if let Err(e) = repo.apply_delta(&d) {
                return Err((e, Some(d)));
            }
            shadow.apply_delta(&d).expect("shadow");
        }
    }
    repo.checkpoint().map_err(|e| (e, None))?;
    Ok(())
}

/// Recovery oracle for the paged store: the reopened, materialized graph
/// must byte-equal the shadow of acknowledged deltas — except that the
/// single delta in flight at the crash may have fully survived (its WAL
/// frame was durable before the acknowledgment raced the crash). Nothing
/// in between is tolerated.
fn assert_pager_oracle(
    dir: &Path,
    shadow: &mut Database,
    inflight: Option<GraphDelta>,
    ctx: &str,
) {
    let repo = PagedRepo::open(dir, tiny_cfg())
        .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
    let g = repo
        .snapshot()
        .materialize()
        .unwrap_or_else(|e| panic!("{ctx}: materialize failed: {e}"));
    let mut rec = Vec::new();
    snapshot::save_graph(&g, &mut rec).unwrap();
    let mut ora = Vec::new();
    snapshot::save_graph(shadow.graph(), &mut ora).unwrap();
    if rec != ora {
        let d = inflight
            .unwrap_or_else(|| panic!("{ctx}: divergence with no delta in flight"));
        shadow
            .apply_delta(&d)
            .unwrap_or_else(|e| panic!("{ctx}: oracle catch-up failed: {e}"));
        ora.clear();
        snapshot::save_graph(shadow.graph(), &mut ora).unwrap();
        assert_eq!(
            rec, ora,
            "{ctx}: recovered state is neither pre- nor post-inflight-delta"
        );
    }
    // The recovered store takes writes and they survive a reopen.
    let before = repo.node_count();
    let mut d = GraphDelta::new();
    d.add_node(None);
    repo.apply_delta(&d)
        .unwrap_or_else(|e| panic!("{ctx}: post-recovery write failed: {e}"));
    drop(repo);
    let repo = PagedRepo::open(dir, tiny_cfg()).unwrap();
    assert_eq!(repo.node_count(), before + 1, "{ctx}: post-crash write lost");
}

/// Fault-free pass: counts vfs operations and sanity-checks the oracle —
/// and proves the schedule actually evicts (the whole point of the tiny
/// pool: crash points must land inside eviction writebacks).
fn pager_fault_free_ops(seed: u64) -> u64 {
    let dir = tmpdir(&format!("pager-clean-{seed}"));
    let vfs = FaultVfs::new();
    let mut shadow = Database::new(IndexLevel::None);
    run_pager_workload(&dir, &vfs, seed, &mut shadow)
        .map_err(|(e, _)| e)
        .expect("fault-free pager run");
    let repo = PagedRepo::open(&dir, tiny_cfg()).unwrap();
    let g = repo.snapshot().materialize().unwrap();
    assert!(
        graphs_equivalent(g_ref(&g), shadow.graph()),
        "seed {seed}: fault-free paged store diverges from oracle"
    );
    let (_, _, _, _, evictions, _) = repo.pool_stats();
    assert!(
        evictions > 0,
        "seed {seed}: schedule never evicted — pool too large to torture writeback"
    );
    let total = vfs.op_count();
    std::fs::remove_dir_all(&dir).ok();
    total
}

fn g_ref(g: &Graph) -> &Graph {
    g
}

#[test]
fn every_pager_crash_point_recovers_to_the_oracle() {
    for seed in PAGER_SEEDS {
        let total = pager_fault_free_ops(seed);
        assert!(total > 80, "schedule should exercise many vfs ops: {total}");
        for k in 0..total {
            let mode = mode_for(seed, k);
            let ctx = format!("pager seed {seed} crash at op {k}/{total} ({mode:?})");
            let dir = tmpdir(&format!("pager-crash-{seed}-{k}"));
            let vfs = FaultVfs::new();
            vfs.arm_crash(k, mode);
            let mut shadow = Database::new(IndexLevel::None);
            let res = run_pager_workload(&dir, &vfs, seed, &mut shadow);
            let inflight = match res {
                Ok(()) => panic!("{ctx}: armed crash must surface an error"),
                Err((_, d)) => d,
            };
            assert!(vfs.fired(), "{ctx}: fault never fired");
            assert_pager_oracle(&dir, &mut shadow, inflight, &ctx);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Checkpoint under memory pressure: with more dirty pages than frames,
/// `checkpoint()` interleaves eviction writebacks with its flush-all,
/// manifest rename, and WAL reset. A crash at every offset inside that
/// window must recover the full pre-checkpoint state.
#[test]
fn pager_crash_anywhere_inside_checkpoint_is_safe() {
    let mut covered = 0;
    for off in 0..48u64 {
        let dir = tmpdir(&format!("pager-ckpt-{off}"));
        let vfs = FaultVfs::new();
        let repo =
            PagedRepo::open_with(Arc::new(vfs.clone()), &dir, tiny_cfg()).unwrap();
        let mut shadow = Database::new(IndexLevel::None);
        for i in 0..10usize {
            let mut d = GraphDelta::new();
            d.add_node(Some(&format!("c{i}")));
            d.add_edge(Oid::from_index(i), "v", Value::Int(i as i64));
            d.collect("K", Value::Node(Oid::from_index(i)));
            repo.apply_delta(&d).unwrap();
            shadow.apply_delta(&d).unwrap();
        }
        let mode = if off % 2 == 0 {
            FaultMode::Fail
        } else {
            FaultMode::Partial(off as usize)
        };
        vfs.arm_crash(vfs.op_count() + off, mode);
        let crashed = repo.checkpoint().is_err();
        drop(repo);
        if !crashed {
            assert!(!vfs.fired());
            std::fs::remove_dir_all(&dir).ok();
            break;
        }
        covered += 1;
        let ctx = format!("pager checkpoint crash at +{off}");
        assert_pager_oracle(&dir, &mut shadow, None, &ctx);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(covered >= 5, "only {covered} checkpoint crash points covered");
}

/// A *transient* fault mid-commit — including a WAL-sync failure during
/// an eviction, the exact point where flushing a page ahead of its LSN
/// would be tempting — must reject the delta, poison the store against
/// further writes, and leave on-disk state recoverable to either side of
/// the atomic boundary, never in between.
#[test]
fn pager_transient_fault_poisons_until_reopen() {
    let mut covered = 0;
    for off in 0..24u64 {
        let dir = tmpdir(&format!("pager-transient-{off}"));
        let vfs = FaultVfs::new();
        let repo =
            PagedRepo::open_with(Arc::new(vfs.clone()), &dir, tiny_cfg()).unwrap();
        let mut shadow = Database::new(IndexLevel::None);
        for i in 0..8usize {
            let mut d = GraphDelta::new();
            d.add_node(Some(&format!("t{i}")));
            d.add_edge(Oid::from_index(i), "v", Value::Int(i as i64));
            repo.apply_delta(&d).unwrap();
            shadow.apply_delta(&d).unwrap();
        }
        // One more commit touching every node segment plus the catalog
        // and a collection; the tiny pool guarantees it evicts, which
        // syncs the WAL before any page write.
        let mut d = GraphDelta::new();
        d.add_node(Some("tx"));
        for i in 0..8usize {
            d.add_edge(Oid::from_index(i), "w", Value::string("spill"));
        }
        d.add_edge(Oid::from_index(8), "v", Value::Int(99));
        d.collect("T", Value::Node(Oid::from_index(8)));
        vfs.arm_fault(vfs.op_count() + off, FaultMode::Fail);
        match repo.apply_delta(&d) {
            Ok(()) => {
                // The commit finished in fewer ops than `off`: the whole
                // window is covered.
                shadow.apply_delta(&d).unwrap();
                drop(repo);
                std::fs::remove_dir_all(&dir).ok();
                break;
            }
            Err(_) => {
                covered += 1;
                // Two legal outcomes. If the fault struck during the
                // read-only staging phase, nothing was written and the
                // store stays live — the retry must go through cleanly.
                // Once the WAL was touched, the store must be poisoned
                // against every further write until a reopen recovers.
                let mut d2 = GraphDelta::new();
                d2.add_node(None);
                match repo.apply_delta(&d2) {
                    Ok(()) => {
                        shadow.apply_delta(&d2).unwrap();
                        drop(repo);
                        let ctx = format!("pager staging fault at +{off}");
                        assert_pager_oracle(&dir, &mut shadow, None, &ctx);
                    }
                    Err(_) => {
                        // Poisoned: stays refused, even for a new delta.
                        let mut d3 = GraphDelta::new();
                        d3.add_node(None);
                        assert!(
                            repo.apply_delta(&d3).is_err(),
                            "transient fault at +{off}: poisoned store accepted a write"
                        );
                        drop(repo);
                        let ctx = format!("pager transient fault at +{off}");
                        assert_pager_oracle(&dir, &mut shadow, Some(d), &ctx);
                    }
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(covered >= 5, "only {covered} transient fault points covered");
}
