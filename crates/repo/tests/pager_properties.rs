//! Property tests for the pager codecs: seeded hostile bytes, truncated
//! at every boundary, must never panic a decoder. Pages come off disk —
//! a torn write, a bad sector, or a stray tool can hand the decoders
//! anything — so "malformed" has to mean `Err`, never a crash. Cases
//! come from a deterministic seeded PRNG, so every failure reproduces
//! from its seed.

use strudel_graph::Value;
use strudel_prng::{Rng, SeedableRng, SmallRng};
use strudel_repo::pager::layout::{
    decode_catalog, decode_members, decode_nodes, encode_catalog, encode_members, encode_nodes,
    Catalog, NodeRec,
};
use strudel_repo::pager::page::{decode_page, encode_page, MIN_PAGE_SIZE};
use strudel_repo::{PagedRepo, PagerConfig};

const SEEDS: [u64; 4] = [11, 23, 1998, 0xBADF00D];

/// Every prefix of `bytes`, shortest first (a torn write ends anywhere).
fn truncations(bytes: &[u8]) -> impl Iterator<Item = &[u8]> {
    (0..=bytes.len()).map(move |i| &bytes[..i])
}

/// Random byte soup of a random small length.
fn soup(rng: &mut SmallRng, max: usize) -> Vec<u8> {
    let n = rng.gen_range(0..max);
    (0..n).map(|_| rng.gen_range(0..=255u32) as u8).collect()
}

/// A valid encoding with one byte flipped is the highest-value hostile
/// input: almost right, so it reaches the deepest checks.
fn flips(bytes: &[u8], rng: &mut SmallRng, n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|_| {
            let mut b = bytes.to_vec();
            if !b.is_empty() {
                let i = rng.gen_range(0..b.len());
                b[i] ^= 1 << rng.gen_range(0..8u32);
            }
            b
        })
        .collect()
}

fn sample_values(rng: &mut SmallRng) -> Vec<Value> {
    let mut vals = vec![
        Value::Int(rng.gen_range(-50..50i64)),
        Value::string("x\u{0}y\u{7f}"),
        Value::string("日本🦀"),
        Value::from(strudel_graph::Oid::from_index(rng.gen_range(0..9usize))),
    ];
    vals.truncate(rng.gen_range(1..5usize));
    vals
}

#[test]
fn page_decode_never_panics() {
    for seed in SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..40 {
            let page_size = *[MIN_PAGE_SIZE, 128, 256].get(rng.gen_range(0..3usize)).unwrap();
            let payload = soup(&mut rng, page_size - 24);
            let good = encode_page(rng.gen_range(0..8u32), rng.next_u64(), &payload, page_size);
            for cut in truncations(&good) {
                let _ = decode_page(cut, 0, page_size);
            }
            for bad in flips(&good, &mut rng, 16) {
                let _ = decode_page(&bad, 0, page_size);
            }
            let garbage = soup(&mut rng, 2 * page_size);
            let _ = decode_page(&garbage, rng.gen_range(0..4u32), page_size);
        }
    }
}

#[test]
fn catalog_decode_never_panics() {
    for seed in SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..40 {
            let good = encode_catalog(&Catalog {
                labels: vec!["a".into(), "日本".into(), String::new()],
                collections: vec!["C\u{0}".into(), "🦀".into()],
                node_count: rng.next_u64() % 1000,
            });
            for cut in truncations(&good) {
                let _ = decode_catalog(cut);
            }
            for bad in flips(&good, &mut rng, 16) {
                let _ = decode_catalog(&bad);
            }
            let _ = decode_catalog(&soup(&mut rng, 200));
        }
    }
}

#[test]
fn nodes_decode_never_panics() {
    for seed in SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..40 {
            let recs: Vec<NodeRec> = (0..rng.gen_range(1..4usize))
                .map(|i| NodeRec {
                    name: if rng.gen_bool(0.5) {
                        Some(format!("n{i}\u{0}"))
                    } else {
                        None
                    },
                    edges: sample_values(&mut rng)
                        .into_iter()
                        .map(|v| (rng.gen_range(0..6u32), v))
                        .collect(),
                    rev: vec![(rng.next_u64() % 50, rng.gen_range(0..6u32))],
                })
                .collect();
            let good = encode_nodes(&recs);
            for cut in truncations(&good) {
                let _ = decode_nodes(cut);
            }
            for bad in flips(&good, &mut rng, 16) {
                let _ = decode_nodes(&bad);
            }
            let _ = decode_nodes(&soup(&mut rng, 300));
        }
    }
}

#[test]
fn members_decode_never_panics() {
    for seed in SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..40 {
            let good = encode_members(&sample_values(&mut rng));
            for cut in truncations(&good) {
                let _ = decode_members(cut);
            }
            for bad in flips(&good, &mut rng, 16) {
                let _ = decode_members(&bad);
            }
            let _ = decode_members(&soup(&mut rng, 200));
        }
    }
}

/// The manifest decoder is private, but `PagedRepo::open` runs it on
/// whatever sits in `pager.manifest`: truncate and corrupt a real
/// manifest on disk at every boundary — open must return, never panic.
#[test]
fn manifest_open_never_panics_on_hostile_bytes() {
    let base = std::env::temp_dir().join(format!(
        "strudel-pager-prop-manifest-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&base);
    let cfg = PagerConfig {
        page_size: 128,
        pool_pages: 8,
        nodes_per_segment: 4,
    };

    // A real store with some data, so the manifest has entries.
    let dir = base.join("store");
    {
        let repo = PagedRepo::open(&dir, cfg).unwrap();
        let mut d = strudel_graph::GraphDelta::new();
        d.add_node(Some("a"));
        d.add_edge(strudel_graph::Oid::from_index(0), "v", Value::Int(1));
        d.collect("C", Value::from(strudel_graph::Oid::from_index(0)));
        repo.apply_delta(&d).unwrap();
        repo.checkpoint().unwrap();
    }
    let good = std::fs::read(dir.join("pager.manifest")).unwrap();

    let mut rng = SmallRng::seed_from_u64(SEEDS[2]);
    let mut case = 0u32;
    let mut try_open = |bytes: &[u8]| {
        let d = base.join(format!("case-{case}"));
        case += 1;
        std::fs::create_dir_all(&d).unwrap();
        // Copy the healthy store, then plant the hostile manifest.
        for f in ["pager.pages", "pager.wal"] {
            let _ = std::fs::copy(dir.join(f), d.join(f));
        }
        std::fs::write(d.join("pager.manifest"), bytes).unwrap();
        // Any Ok/Err outcome is acceptable; a panic is the only failure.
        let _ = PagedRepo::open(&d, cfg);
        let _ = std::fs::remove_dir_all(&d);
    };
    for cut in truncations(&good) {
        try_open(cut);
    }
    for bad in flips(&good, &mut rng, 64) {
        try_open(&bad);
    }
    for _ in 0..32 {
        try_open(&soup(&mut rng, 2 * good.len()));
    }
    let _ = std::fs::remove_dir_all(&base);
}
