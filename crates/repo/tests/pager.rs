//! Integration tests for the paged store: differential checks against
//! the in-memory [`Database`], MVCC snapshot isolation under concurrent
//! commits, and the `Database::open_paged` round trip.

use std::path::PathBuf;

use strudel_graph::{GraphDelta, Oid, Value};
use strudel_prng::{choose, Rng, SeedableRng, SmallRng};
use strudel_repo::{snapshot, Database, IndexLevel, PagedRepo, PagerConfig};
use strudel_schema::incremental::graphs_equivalent;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("strudel-pager-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn small_cfg() -> PagerConfig {
    PagerConfig {
        page_size: 128,
        pool_pages: 8,
        nodes_per_segment: 4,
    }
}

/// One seeded delta against the oracle's current graph.
fn random_delta(rng: &mut SmallRng, g: &strudel_graph::Graph) -> GraphDelta {
    let nodes = g.node_count();
    let mut d = GraphDelta::new();
    match rng.gen_range(0..8u32) {
        0 | 1 => d.add_node(Some(&format!("r{:016x}", rng.next_u64()))),
        2..=4 if nodes > 0 => {
            let from = Oid::from_index(rng.gen_range(0..nodes));
            let label = *choose(rng, &["a", "b", "c"]);
            let to = if rng.gen_bool(0.4) {
                Value::Node(Oid::from_index(rng.gen_range(0..nodes)))
            } else {
                Value::string(format!("s{}", rng.gen_range(0..20u32)))
            };
            d.add_edge(from, label, to);
        }
        5 | 6 if nodes > 0 => d.collect(
            &format!("C{}", rng.gen_range(0..3u32)),
            Value::Node(Oid::from_index(rng.gen_range(0..nodes))),
        ),
        _ => d.add_node(None),
    }
    d
}

/// Differential: a long seeded run lands the paged store and the
/// in-memory database on byte-identical graphs, through a pool an order
/// of magnitude smaller than the data.
#[test]
fn paged_store_tracks_the_in_memory_database() {
    for seed in [0xACE5u64, 12, 1998] {
        let dir = tmpdir(&format!("diff-{seed}"));
        let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
        let mut shadow = Database::new(IndexLevel::Full);
        let mut rng = SmallRng::seed_from_u64(seed);
        for step in 0..120usize {
            let d = random_delta(&mut rng, shadow.graph());
            repo.apply_delta(&d).unwrap();
            shadow.apply_delta(&d).unwrap();
            if step % 40 == 39 {
                repo.checkpoint().unwrap();
            }
        }
        let g = repo.snapshot().materialize().unwrap();
        assert!(graphs_equivalent(&g, shadow.graph()), "seed {seed}");
        let mut a = Vec::new();
        snapshot::save_graph(&g, &mut a).unwrap();
        let mut b = Vec::new();
        snapshot::save_graph(shadow.graph(), &mut b).unwrap();
        assert_eq!(a, b, "seed {seed}: byte-level divergence");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The acceptance criterion: concurrent readers each pin an MVCC
/// snapshot and repeatedly materialize it while the writer commits
/// deltas and checkpoints underneath them. Every materialization must
/// equal the oracle frozen at the snapshot's epoch — no torn reads, no
/// bleed-through from later commits.
#[test]
fn concurrent_readers_see_a_frozen_epoch_while_deltas_commit() {
    let dir = tmpdir("mvcc-threads");
    let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
    let mut shadow = Database::new(IndexLevel::None);
    let mut rng = SmallRng::seed_from_u64(0x5EED);

    // Seed some data so the first snapshot is non-trivial.
    for _ in 0..20 {
        let d = random_delta(&mut rng, shadow.graph());
        repo.apply_delta(&d).unwrap();
        shadow.apply_delta(&d).unwrap();
    }

    const ROUNDS: usize = 6;
    const READS_PER_READER: usize = 8;
    let mut handles = Vec::new();
    for round in 0..ROUNDS {
        // Freeze the oracle at this epoch as snapshot bytes.
        let mut frozen = Vec::new();
        snapshot::save_graph(shadow.graph(), &mut frozen).unwrap();
        let snap = repo.snapshot();
        let epoch = snap.epoch();
        handles.push(std::thread::spawn(move || {
            for read in 0..READS_PER_READER {
                let g = snap.materialize().unwrap_or_else(|e| {
                    panic!("round {round} read {read}: materialize failed: {e}")
                });
                let mut got = Vec::new();
                snapshot::save_graph(&g, &mut got).unwrap();
                assert_eq!(
                    got, frozen,
                    "round {round} read {read}: snapshot at epoch {epoch} drifted"
                );
                std::thread::yield_now();
            }
        }));
        // Writer: keep committing (and occasionally checkpointing) while
        // the readers above are in flight.
        for _ in 0..10 {
            let d = random_delta(&mut rng, shadow.graph());
            repo.apply_delta(&d).unwrap();
            shadow.apply_delta(&d).unwrap();
        }
        if round % 2 == 1 {
            repo.checkpoint().unwrap();
        }
    }
    for h in handles {
        h.join().unwrap();
    }

    // With every reader gone, superseded versions retire: the head
    // snapshot still equals the oracle.
    let g = repo.snapshot().materialize().unwrap();
    assert!(graphs_equivalent(&g, shadow.graph()));
    std::fs::remove_dir_all(&dir).ok();
}

/// Reopen after a mixed run (commits, checkpoint, more commits) replays
/// the WAL tail over the manifest and lands on the oracle.
#[test]
fn reopen_round_trips_a_mixed_run() {
    let dir = tmpdir("reopen");
    let mut shadow = Database::new(IndexLevel::None);
    let mut rng = SmallRng::seed_from_u64(42);
    {
        let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
        for _ in 0..30 {
            let d = random_delta(&mut rng, shadow.graph());
            repo.apply_delta(&d).unwrap();
            shadow.apply_delta(&d).unwrap();
        }
        repo.checkpoint().unwrap();
        for _ in 0..15 {
            let d = random_delta(&mut rng, shadow.graph());
            repo.apply_delta(&d).unwrap();
            shadow.apply_delta(&d).unwrap();
        }
        // No checkpoint: the last 15 deltas live only in the WAL.
    }
    let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
    let g = repo.snapshot().materialize().unwrap();
    let mut a = Vec::new();
    snapshot::save_graph(&g, &mut a).unwrap();
    let mut b = Vec::new();
    snapshot::save_graph(shadow.graph(), &mut b).unwrap();
    assert_eq!(a, b, "reopen diverged from oracle");
    std::fs::remove_dir_all(&dir).ok();
}

/// `Database::open_paged` materializes the paged store into a fully
/// indexed database, routes `apply_delta` through the store, and both
/// agree after a reopen.
#[test]
fn database_open_paged_round_trips() {
    let dir = tmpdir("db-open-paged");
    {
        let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
        let mut d = GraphDelta::new();
        d.add_node(Some("alice"));
        d.add_node(Some("bob"));
        d.add_edge(Oid::from_index(0), "knows", Value::Node(Oid::from_index(1)));
        d.collect("People", Value::Node(Oid::from_index(0)));
        d.collect("People", Value::Node(Oid::from_index(1)));
        repo.apply_delta(&d).unwrap();
    }
    let mut db =
        Database::open_paged(&dir, IndexLevel::Full, small_cfg()).unwrap();
    let alice = db.graph().node_by_name("alice").unwrap();
    assert_eq!(db.graph().members_str("People").len(), 2);

    // Writes route through the paged store's WAL.
    let mut d = GraphDelta::new();
    d.add_edge(alice, "age", Value::Int(30));
    db.apply_delta(&d).unwrap();
    db.checkpoint().unwrap();
    assert!(db.pager().is_some());
    let gen = db.pager().unwrap().generation();
    assert!(gen >= 1, "checkpoint should bump the generation: {gen}");
    drop(db);

    let db = Database::open_paged(&dir, IndexLevel::Full, small_cfg()).unwrap();
    let alice = db.graph().node_by_name("alice").unwrap();
    assert_eq!(db.graph().attr_str(alice, "age").count(), 1);
    assert_eq!(db.graph().members_str("People").len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// The in-memory fast path: a pool larger than the site keeps every page
/// resident — zero evictions across a whole workload — while the tiny
/// pool on the same data is forced to evict.
#[test]
fn whole_site_in_pool_never_evicts() {
    let mut shadow = Database::new(IndexLevel::None);
    let mut rng = SmallRng::seed_from_u64(7);
    let mut deltas = Vec::new();
    for _ in 0..40 {
        let d = random_delta(&mut rng, shadow.graph());
        shadow.apply_delta(&d).unwrap();
        deltas.push(d);
    }
    let run = |pool_pages: usize, tag: &str| {
        let dir = tmpdir(&format!("fastpath-{tag}"));
        let cfg = PagerConfig {
            pool_pages,
            ..small_cfg()
        };
        let repo = PagedRepo::open(&dir, cfg).unwrap();
        for d in &deltas {
            repo.apply_delta(d).unwrap();
        }
        let g = repo.snapshot().materialize().unwrap();
        assert!(graphs_equivalent(&g, shadow.graph()), "{tag}");
        let (_, _, _, _, evictions, _) = repo.pool_stats();
        std::fs::remove_dir_all(&dir).ok();
        evictions
    };
    assert_eq!(run(4096, "big"), 0, "oversized pool must never evict");
    assert!(run(4, "tiny") > 0, "4-frame pool must evict on this data");
}

/// Snapshots pin their version until dropped, across threads: versions
/// retired while a reader is live must not be reclaimed (the reader
/// still materializes its frozen epoch afterwards).
#[test]
fn late_read_on_an_old_snapshot_still_sees_its_epoch() {
    let dir = tmpdir("late-read");
    let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
    let mut d = GraphDelta::new();
    d.add_node(Some("v1"));
    repo.apply_delta(&d).unwrap();
    let old = repo.snapshot();

    // Bury the old version under commits and a checkpoint.
    for i in 0..25usize {
        let mut d = GraphDelta::new();
        d.add_node(Some(&format!("extra{i}")));
        repo.apply_delta(&d).unwrap();
    }
    repo.checkpoint().unwrap();

    let handle = std::thread::spawn(move || {
        let g = old.materialize().unwrap();
        assert_eq!(g.node_count(), 1, "old snapshot grew");
        assert!(g.node_by_name("v1").is_some());
        assert!(g.node_by_name("extra0").is_none());
    });
    handle.join().unwrap();

    let head = repo.snapshot().materialize().unwrap();
    assert_eq!(head.node_count(), 26);
    std::fs::remove_dir_all(&dir).ok();
}

/// Pager probes fire through the trace layer: a workload that misses and
/// evicts leaves nonzero `pager.*` counters in the global stats.
#[test]
fn pager_counters_reach_global_stats() {
    let dir = tmpdir("stats");
    let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
    let before = strudel_repo::pager::global_stats();
    let mut shadow = Database::new(IndexLevel::None);
    let mut rng = SmallRng::seed_from_u64(9);
    for _ in 0..60 {
        let d = random_delta(&mut rng, shadow.graph());
        repo.apply_delta(&d).unwrap();
        shadow.apply_delta(&d).unwrap();
    }
    drop(repo.snapshot().materialize().unwrap());
    let after = strudel_repo::pager::global_stats();
    assert!(after.hits > before.hits, "no pager hits recorded");
    assert!(after.misses > before.misses, "no pager misses recorded");
    assert!(after.pins > before.pins, "no pager pins recorded");
    std::fs::remove_dir_all(&dir).ok();
}
