//! Multi-version concurrency control over page chains.
//!
//! The store's data is partitioned into logical *segments* (the catalog,
//! fixed-width groups of nodes, one per collection). A committed write
//! never mutates a segment's pages in place: it allocates fresh pages,
//! writes the new image there, and publishes a new [`VersionEntry`] at
//! the next commit epoch — copy-on-write at segment granularity, shadow
//! paging at page granularity.
//!
//! Readers open a snapshot pinned to the commit epoch current at open
//! time and resolve every segment to the newest version at or below that
//! epoch, so a snapshot observes one consistent graph no matter how many
//! deltas commit after it. Superseded versions are *retired by epoch*:
//! a version is reclaimed (frames forgotten, pages freed) only once no
//! registered reader epoch can still reach it.

use std::collections::BTreeMap;

/// A logical segment of the paged store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SegKey {
    /// Labels, collection names, and the node count.
    Catalog,
    /// The `i`-th fixed-width group of node records.
    Nodes(u32),
    /// The member list of the `i`-th collection.
    Collection(u32),
}

/// One immutable version of a segment: the pages holding its record
/// bytes, the commit epoch that published it, and the LSN of the WAL
/// record that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionEntry {
    /// Commit epoch at which this version became current.
    pub epoch: u64,
    /// WAL position of the producing record (write-ahead coupling).
    pub lsn: u64,
    /// Total record bytes, spread across `pages` in order.
    pub len: u64,
    /// The page chain, in byte order.
    pub pages: Vec<u32>,
}

/// All live versions of all segments, each list ascending by epoch.
#[derive(Debug, Default)]
pub struct VersionTable {
    map: BTreeMap<SegKey, Vec<VersionEntry>>,
}

impl VersionTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The newest version of `key` visible at `epoch`, if any.
    pub fn resolve(&self, key: SegKey, epoch: u64) -> Option<&VersionEntry> {
        self.map
            .get(&key)?
            .iter()
            .rev()
            .find(|v| v.epoch <= epoch)
    }

    /// Publishes a new version of `key`. Entries must arrive in ascending
    /// epoch order (there is a single writer).
    pub fn publish(&mut self, key: SegKey, entry: VersionEntry) {
        let list = self.map.entry(key).or_default();
        debug_assert!(
            list.last().map(|v| v.epoch < entry.epoch).unwrap_or(true),
            "versions published out of epoch order"
        );
        list.push(entry);
    }

    /// Drops every version that no reader at or above `min_epoch` can
    /// reach — i.e. any version superseded by a newer one whose epoch is
    /// still `<= min_epoch`. Calls `reclaim` with each retired entry.
    pub fn retire(&mut self, min_epoch: u64, mut reclaim: impl FnMut(&VersionEntry)) {
        for list in self.map.values_mut() {
            // Index of the newest version visible at min_epoch: versions
            // before it are unreachable by every current and future reader.
            let Some(keep_from) = list.iter().rposition(|v| v.epoch <= min_epoch) else {
                continue;
            };
            for v in &list[..keep_from] {
                reclaim(v);
            }
            list.drain(..keep_from);
        }
    }

    /// Iterates the newest version of every segment visible at `epoch`
    /// (the checkpoint's consistent cut).
    pub fn current(&self, epoch: u64) -> impl Iterator<Item = (SegKey, &VersionEntry)> + '_ {
        self.map
            .iter()
            .filter_map(move |(k, list)| Some((*k, list.iter().rev().find(|v| v.epoch <= epoch)?)))
    }

    /// Every live version of every segment (for accounting which pages
    /// are still referenced).
    pub fn all(&self) -> impl Iterator<Item = &VersionEntry> + '_ {
        self.map.values().flatten()
    }
}

/// Registered reader epochs, counted so snapshots can overlap.
#[derive(Debug, Default)]
pub struct ReaderRegistry {
    counts: BTreeMap<u64, u64>,
}

impl ReaderRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a reader at `epoch`.
    pub fn register(&mut self, epoch: u64) {
        *self.counts.entry(epoch).or_insert(0) += 1;
    }

    /// Deregisters a reader at `epoch`.
    pub fn deregister(&mut self, epoch: u64) {
        match self.counts.get_mut(&epoch) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                self.counts.remove(&epoch);
            }
            None => debug_assert!(false, "deregister without register"),
        }
    }

    /// The oldest epoch any reader still holds, or `current` when no
    /// readers are registered. Retirement may reclaim anything a reader
    /// at this epoch cannot reach.
    pub fn min_active(&self, current: u64) -> u64 {
        self.counts
            .keys()
            .next()
            .copied()
            .unwrap_or(current)
            .min(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(epoch: u64, pages: Vec<u32>) -> VersionEntry {
        VersionEntry {
            epoch,
            lsn: epoch,
            len: 10,
            pages,
        }
    }

    #[test]
    fn resolve_picks_newest_at_or_below_epoch() {
        let mut t = VersionTable::new();
        t.publish(SegKey::Catalog, entry(0, vec![0]));
        t.publish(SegKey::Catalog, entry(3, vec![1]));
        t.publish(SegKey::Catalog, entry(5, vec![2]));
        assert_eq!(t.resolve(SegKey::Catalog, 0).unwrap().pages, vec![0]);
        assert_eq!(t.resolve(SegKey::Catalog, 2).unwrap().pages, vec![0]);
        assert_eq!(t.resolve(SegKey::Catalog, 3).unwrap().pages, vec![1]);
        assert_eq!(t.resolve(SegKey::Catalog, 9).unwrap().pages, vec![2]);
        assert!(t.resolve(SegKey::Nodes(0), 9).is_none());
    }

    #[test]
    fn retire_respects_the_oldest_reader() {
        let mut t = VersionTable::new();
        t.publish(SegKey::Nodes(0), entry(0, vec![0]));
        t.publish(SegKey::Nodes(0), entry(2, vec![1]));
        t.publish(SegKey::Nodes(0), entry(4, vec![2]));
        // A reader at epoch 1 still needs the epoch-0 version.
        let mut freed = Vec::new();
        t.retire(1, |v| freed.extend(v.pages.clone()));
        assert!(freed.is_empty());
        // Once the oldest reader is at 2, the epoch-0 version retires.
        t.retire(2, |v| freed.extend(v.pages.clone()));
        assert_eq!(freed, vec![0]);
        // At 5, only the newest survives.
        t.retire(5, |v| freed.extend(v.pages.clone()));
        assert_eq!(freed, vec![0, 1]);
        assert_eq!(t.resolve(SegKey::Nodes(0), 5).unwrap().pages, vec![2]);
    }

    #[test]
    fn reader_registry_tracks_min_active() {
        let mut r = ReaderRegistry::new();
        assert_eq!(r.min_active(7), 7);
        r.register(3);
        r.register(3);
        r.register(5);
        assert_eq!(r.min_active(7), 3);
        r.deregister(3);
        assert_eq!(r.min_active(7), 3);
        r.deregister(3);
        assert_eq!(r.min_active(7), 5);
        r.deregister(5);
        assert_eq!(r.min_active(7), 7);
    }
}
