//! Graph-on-pages record layout.
//!
//! The paged store splits a site graph into logical segments, each
//! encoded to a byte record and spread over a page chain:
//!
//! * **catalog** — the label table (in intern order), the collection name
//!   table (in creation order), and the node count. Small and rewritten
//!   whenever a delta introduces a label, collection, or node.
//! * **node segments** — `nodes_per_segment` consecutive oids per
//!   segment. Each node record is its optional name, its out-edges in
//!   insertion order (label index + value, reusing the snapshot codec),
//!   and its reverse adjacency (source oid + label index) so
//!   `edges_in`-style scans work straight off pinned pages.
//! * **collection segments** — one per collection: the member values in
//!   insertion order.
//!
//! Decoding is defensive: counts are sanity-checked against the byte
//! budget before any allocation, and every primitive read reports
//! corruption instead of panicking — segment bytes arrive from disk
//! through CRC-checked pages, but the hostile-input property tests feed
//! this module garbage directly.

use crate::codec::{corrupt, read_str, read_value, read_varint, write_str, write_value, write_varint};
use crate::RepoError;
use strudel_graph::Value;

/// Flag bit: the node has a symbolic name.
const FLAG_NAMED: u8 = 1;

/// The catalog segment: interner-order labels, creation-order collection
/// names, and the node count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Catalog {
    /// Edge labels, in intern order (indexes are stable forever).
    pub labels: Vec<String>,
    /// Collection names, in creation order.
    pub collections: Vec<String>,
    /// Total nodes in the store.
    pub node_count: u64,
}

/// One node's record inside a node segment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeRec {
    /// Optional symbolic name.
    pub name: Option<String>,
    /// Out-edges in insertion order: (label index, target value).
    pub edges: Vec<(u32, Value)>,
    /// Reverse adjacency in insertion order: (source oid, label index).
    pub rev: Vec<(u64, u32)>,
}

/// Serializes the catalog.
pub fn encode_catalog(c: &Catalog) -> Vec<u8> {
    let mut w = Vec::new();
    write_varint(&mut w, c.labels.len() as u64).expect("vec write");
    for l in &c.labels {
        write_str(&mut w, l).expect("vec write");
    }
    write_varint(&mut w, c.collections.len() as u64).expect("vec write");
    for n in &c.collections {
        write_str(&mut w, n).expect("vec write");
    }
    write_varint(&mut w, c.node_count).expect("vec write");
    w
}

/// Reads a count that claims `count` further items out of `remaining`
/// input bytes; every item takes at least one byte, so anything larger
/// is corrupt (and would otherwise drive a giant allocation).
fn checked_count(count: u64, remaining: usize, offset: u64) -> Result<usize, RepoError> {
    if count > remaining as u64 {
        return Err(corrupt(offset, format!("count {count} exceeds input")));
    }
    Ok(count as usize)
}

/// Deserializes a catalog record.
pub fn decode_catalog(bytes: &[u8]) -> Result<Catalog, RepoError> {
    let mut r = bytes;
    let mut offset = 0u64;
    let n = read_varint(&mut r, &mut offset)?;
    let n = checked_count(n, r.len(), offset)?;
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(read_str(&mut r, &mut offset)?);
    }
    let n = read_varint(&mut r, &mut offset)?;
    let n = checked_count(n, r.len(), offset)?;
    let mut collections = Vec::with_capacity(n);
    for _ in 0..n {
        collections.push(read_str(&mut r, &mut offset)?);
    }
    let node_count = read_varint(&mut r, &mut offset)?;
    if !r.is_empty() {
        return Err(corrupt(offset, "trailing bytes after catalog"));
    }
    Ok(Catalog {
        labels,
        collections,
        node_count,
    })
}

/// Serializes a node segment (the records of its oid range, in order).
pub fn encode_nodes(recs: &[NodeRec]) -> Vec<u8> {
    let mut w = Vec::new();
    write_varint(&mut w, recs.len() as u64).expect("vec write");
    for rec in recs {
        let flags = if rec.name.is_some() { FLAG_NAMED } else { 0 };
        w.push(flags);
        if let Some(name) = &rec.name {
            write_str(&mut w, name).expect("vec write");
        }
        write_varint(&mut w, rec.edges.len() as u64).expect("vec write");
        for (label, to) in &rec.edges {
            write_varint(&mut w, *label as u64).expect("vec write");
            write_value(&mut w, to).expect("vec write");
        }
        write_varint(&mut w, rec.rev.len() as u64).expect("vec write");
        for (from, label) in &rec.rev {
            write_varint(&mut w, *from).expect("vec write");
            write_varint(&mut w, *label as u64).expect("vec write");
        }
    }
    w
}

/// Deserializes a node segment.
pub fn decode_nodes(bytes: &[u8]) -> Result<Vec<NodeRec>, RepoError> {
    let mut r = bytes;
    let mut offset = 0u64;
    let n = read_varint(&mut r, &mut offset)?;
    let n = checked_count(n, r.len(), offset)?;
    let mut recs = Vec::with_capacity(n);
    for _ in 0..n {
        let mut flags = [0u8; 1];
        std::io::Read::read_exact(&mut r, &mut flags)?;
        offset += 1;
        if flags[0] & !FLAG_NAMED != 0 {
            return Err(corrupt(offset, format!("unknown node flags {:#x}", flags[0])));
        }
        let name = if flags[0] & FLAG_NAMED != 0 {
            Some(read_str(&mut r, &mut offset)?)
        } else {
            None
        };
        let ec = read_varint(&mut r, &mut offset)?;
        let ec = checked_count(ec, r.len(), offset)?;
        let mut edges = Vec::with_capacity(ec);
        for _ in 0..ec {
            let label = read_varint(&mut r, &mut offset)?;
            let label = u32::try_from(label).map_err(|_| corrupt(offset, "label index overflow"))?;
            edges.push((label, read_value(&mut r, &mut offset)?));
        }
        let rc = read_varint(&mut r, &mut offset)?;
        let rc = checked_count(rc, r.len(), offset)?;
        let mut rev = Vec::with_capacity(rc);
        for _ in 0..rc {
            let from = read_varint(&mut r, &mut offset)?;
            let label = read_varint(&mut r, &mut offset)?;
            let label = u32::try_from(label).map_err(|_| corrupt(offset, "label index overflow"))?;
            rev.push((from, label));
        }
        recs.push(NodeRec { name, edges, rev });
    }
    if !r.is_empty() {
        return Err(corrupt(offset, "trailing bytes after node segment"));
    }
    Ok(recs)
}

/// Serializes a collection's member list.
pub fn encode_members(members: &[Value]) -> Vec<u8> {
    let mut w = Vec::new();
    write_varint(&mut w, members.len() as u64).expect("vec write");
    for m in members {
        write_value(&mut w, m).expect("vec write");
    }
    w
}

/// Deserializes a collection's member list.
pub fn decode_members(bytes: &[u8]) -> Result<Vec<Value>, RepoError> {
    let mut r = bytes;
    let mut offset = 0u64;
    let n = read_varint(&mut r, &mut offset)?;
    let n = checked_count(n, r.len(), offset)?;
    let mut members = Vec::with_capacity(n);
    for _ in 0..n {
        members.push(read_value(&mut r, &mut offset)?);
    }
    if !r.is_empty() {
        return Err(corrupt(offset, "trailing bytes after members"));
    }
    Ok(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::Oid;

    #[test]
    fn catalog_round_trips() {
        let c = Catalog {
            labels: vec!["title".into(), "year".into()],
            collections: vec!["Pubs".into()],
            node_count: 42,
        };
        assert_eq!(decode_catalog(&encode_catalog(&c)).unwrap(), c);
        let empty = Catalog::default();
        assert_eq!(decode_catalog(&encode_catalog(&empty)).unwrap(), empty);
    }

    #[test]
    fn node_segment_round_trips() {
        let recs = vec![
            NodeRec {
                name: Some("a".into()),
                edges: vec![
                    (0, Value::string("Strudel")),
                    (1, Value::Node(Oid::from_index(1))),
                ],
                rev: vec![(1, 1)],
            },
            NodeRec {
                name: None,
                edges: vec![],
                rev: vec![(0, 1)],
            },
        ];
        assert_eq!(decode_nodes(&encode_nodes(&recs)).unwrap(), recs);
    }

    #[test]
    fn members_round_trip() {
        let m = vec![
            Value::Node(Oid::from_index(3)),
            Value::Int(-7),
            Value::string("x"),
        ];
        assert_eq!(decode_members(&encode_members(&m)).unwrap(), m);
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A claimed count of u64::MAX with 2 bytes of input must be
        // rejected before any allocation happens.
        let mut bytes = Vec::new();
        write_varint(&mut bytes, u64::MAX).unwrap();
        assert!(decode_catalog(&bytes).is_err());
        assert!(decode_nodes(&bytes).is_err());
        assert!(decode_members(&bytes).is_err());
    }
}
