//! The pinning, evicting buffer pool.
//!
//! A fixed number of in-memory frames cache decoded page payloads. Reads
//! pin a frame (pinned frames are never evicted), copy what they need,
//! and unpin; the writer inserts new copy-on-write page versions as dirty
//! frames. Eviction runs the clock algorithm: each frame gets a reference
//! bit that a hit sets and the sweeping hand clears, so recently touched
//! pages survive a full revolution.
//!
//! The write-ahead rule lives here: evicting (or flushing) a dirty frame
//! first forces the WAL durable up to the frame's LSN via [`WalClock`],
//! so no page image ever reaches the file ahead of the log record that
//! produced it. Page I/O goes through [`VfsRandomFile`], which the
//! fault-injecting vfs wraps — torture schedules cover eviction
//! writeback like any other durable operation.

use super::page::{decode_page, encode_page, payload_capacity};
use crate::codec::corrupt;
use crate::vfs::VfsRandomFile;
use crate::RepoError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The pager's view of WAL durability, used to enforce write-ahead: no
/// dirty page is written to the page file before its LSN is durable.
pub trait WalClock {
    /// The highest LSN known durable (synced) so far.
    fn durable_lsn(&self) -> u64;
    /// Makes the log durable at least up to `lsn` (typically one sync).
    fn ensure_durable(&mut self, lsn: u64) -> Result<(), RepoError>;
}

// Process-wide pager counters, aggregated across every live pool so the
// server's /metrics endpoint has one set of rows regardless of how many
// stores exist. Monotonic totals plus two gauges (configured pool pages
// and currently resident frames) maintained by pool create/insert/drop.
static G_HITS: AtomicU64 = AtomicU64::new(0);
static G_MISSES: AtomicU64 = AtomicU64::new(0);
static G_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static G_PINS: AtomicU64 = AtomicU64::new(0);
static G_WRITEBACKS: AtomicU64 = AtomicU64::new(0);
static G_POOL_PAGES: AtomicU64 = AtomicU64::new(0);
static G_RESIDENT: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the process-wide pager counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that had to read the page file.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Total pin operations.
    pub pins: u64,
    /// Dirty frames written back to the page file.
    pub writebacks: u64,
    /// Configured frames across all live pools (gauge).
    pub pool_pages: u64,
    /// Currently resident frames across all live pools (gauge).
    pub resident: u64,
}

/// The process-wide pager counters (all live buffer pools aggregated).
pub fn global_stats() -> PagerStats {
    PagerStats {
        hits: G_HITS.load(Ordering::Relaxed),
        misses: G_MISSES.load(Ordering::Relaxed),
        evictions: G_EVICTIONS.load(Ordering::Relaxed),
        pins: G_PINS.load(Ordering::Relaxed),
        writebacks: G_WRITEBACKS.load(Ordering::Relaxed),
        pool_pages: G_POOL_PAGES.load(Ordering::Relaxed),
        resident: G_RESIDENT.load(Ordering::Relaxed),
    }
}

#[derive(Debug)]
struct Frame {
    page_no: u32,
    lsn: u64,
    payload: Vec<u8>,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

/// A fixed-capacity page cache over one page file.
#[derive(Debug)]
pub struct BufferPool {
    page_size: usize,
    capacity: usize,
    file: Box<dyn VfsRandomFile>,
    frames: Vec<Option<Frame>>,
    map: HashMap<u32, usize>,
    hand: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    writebacks: u64,
}

impl BufferPool {
    /// A pool of `capacity` frames over `file`, whose pages are
    /// `page_size` bytes.
    pub fn new(file: Box<dyn VfsRandomFile>, page_size: usize, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        G_POOL_PAGES.fetch_add(capacity as u64, Ordering::Relaxed);
        BufferPool {
            page_size,
            capacity,
            file,
            frames: (0..capacity).map(|_| None).collect(),
            map: HashMap::new(),
            hand: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            writebacks: 0,
        }
    }

    /// Usable payload bytes per page.
    pub fn payload_capacity(&self) -> usize {
        payload_capacity(self.page_size)
    }

    /// Configured frame count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames currently resident.
    pub fn occupancy(&self) -> usize {
        self.map.len()
    }

    /// `(hits, misses, evictions, writebacks)` for this pool.
    pub fn local_stats(&self) -> (u64, u64, u64, u64) {
        (self.hits, self.misses, self.evictions, self.writebacks)
    }

    /// Pins `page_no`, reading it from the page file on a miss, and
    /// returns its frame index. The caller must [`BufferPool::unpin`]
    /// when done with [`BufferPool::payload`].
    pub fn get(&mut self, page_no: u32, wal: &mut dyn WalClock) -> Result<usize, RepoError> {
        strudel_trace::count("pager.pin", 1);
        G_PINS.fetch_add(1, Ordering::Relaxed);
        if let Some(&idx) = self.map.get(&page_no) {
            strudel_trace::count("pager.hit", 1);
            self.hits += 1;
            G_HITS.fetch_add(1, Ordering::Relaxed);
            let f = self.frames[idx].as_mut().expect("mapped frame exists");
            f.pins += 1;
            f.referenced = true;
            return Ok(idx);
        }
        strudel_trace::count("pager.miss", 1);
        self.misses += 1;
        G_MISSES.fetch_add(1, Ordering::Relaxed);
        let mut buf = vec![0u8; self.page_size];
        let off = page_no as u64 * self.page_size as u64;
        let got = self.file.read_at(&mut buf, off)?;
        if got != self.page_size {
            return Err(corrupt(
                off,
                format!("short page read: got {got} of {} bytes", self.page_size),
            ));
        }
        let view = decode_page(&buf, page_no, self.page_size)?;
        let frame = Frame {
            page_no,
            lsn: view.lsn,
            payload: view.payload.to_vec(),
            dirty: false,
            pins: 1,
            referenced: true,
        };
        let idx = self.free_slot(wal)?;
        self.install(idx, frame);
        Ok(idx)
    }

    /// The pinned frame's payload.
    pub fn payload(&self, idx: usize) -> &[u8] {
        &self.frames[idx].as_ref().expect("pinned frame exists").payload
    }

    /// Releases a pin taken by [`BufferPool::get`].
    pub fn unpin(&mut self, idx: usize) {
        let f = self.frames[idx].as_mut().expect("pinned frame exists");
        debug_assert!(f.pins > 0, "unpin without pin");
        f.pins = f.pins.saturating_sub(1);
    }

    /// Inserts a freshly written copy-on-write page version as a dirty
    /// frame. Page numbers are allocated uniquely, so the page cannot
    /// already be resident.
    pub fn put(
        &mut self,
        page_no: u32,
        lsn: u64,
        payload: Vec<u8>,
        wal: &mut dyn WalClock,
    ) -> Result<(), RepoError> {
        debug_assert!(payload.len() <= self.payload_capacity());
        debug_assert!(!self.map.contains_key(&page_no), "page version rewritten");
        let idx = self.free_slot(wal)?;
        self.install(
            idx,
            Frame {
                page_no,
                lsn,
                payload,
                dirty: true,
                pins: 0,
                referenced: true,
            },
        );
        Ok(())
    }

    /// Drops a page's frame without writeback — its version was retired
    /// and the bytes will never be read again.
    pub fn forget(&mut self, page_no: u32) {
        if let Some(idx) = self.map.remove(&page_no) {
            let f = self.frames[idx].take().expect("mapped frame exists");
            debug_assert_eq!(f.pins, 0, "forgetting a pinned page");
            G_RESIDENT.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Writes every dirty frame back to the page file (forcing WAL
    /// durability first, per the write-ahead rule) and syncs the file.
    /// Frames stay resident but clean. This is the checkpoint's page step.
    pub fn flush_all(&mut self, wal: &mut dyn WalClock) -> Result<(), RepoError> {
        let max_lsn = self
            .frames
            .iter()
            .flatten()
            .filter(|f| f.dirty)
            .map(|f| f.lsn)
            .max();
        let Some(max_lsn) = max_lsn else {
            return Ok(()); // nothing dirty; skip the file sync too
        };
        wal.ensure_durable(max_lsn)?;
        for idx in 0..self.frames.len() {
            let (page_no, lsn, dirty) = match &self.frames[idx] {
                Some(f) => (f.page_no, f.lsn, f.dirty),
                None => continue,
            };
            if !dirty {
                continue;
            }
            let img = {
                let f = self.frames[idx].as_ref().expect("frame exists");
                encode_page(page_no, lsn, &f.payload, self.page_size)
            };
            self.file
                .write_at(&img, page_no as u64 * self.page_size as u64)?;
            self.writebacks += 1;
            G_WRITEBACKS.fetch_add(1, Ordering::Relaxed);
            self.frames[idx].as_mut().expect("frame exists").dirty = false;
        }
        self.file.sync()?;
        Ok(())
    }

    /// Finds an empty slot, evicting the clock's victim when full.
    fn free_slot(&mut self, wal: &mut dyn WalClock) -> Result<usize, RepoError> {
        if self.map.len() < self.capacity {
            let idx = self
                .frames
                .iter()
                .position(Option::is_none)
                .expect("occupancy below capacity implies an empty slot");
            return Ok(idx);
        }
        // Clock sweep: two full revolutions guarantee every unpinned
        // frame has had its reference bit cleared and been revisited.
        for _ in 0..2 * self.capacity {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.capacity;
            let Some(f) = self.frames[idx].as_mut() else {
                return Ok(idx);
            };
            if f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            self.evict(idx, wal)?;
            return Ok(idx);
        }
        Err(RepoError::Io(std::io::Error::other(
            "buffer pool exhausted: every frame is pinned",
        )))
    }

    /// Evicts the frame at `idx`, writing it back first when dirty.
    fn evict(&mut self, idx: usize, wal: &mut dyn WalClock) -> Result<(), RepoError> {
        let f = self.frames[idx].as_ref().expect("victim frame exists");
        let (page_no, lsn, dirty) = (f.page_no, f.lsn, f.dirty);
        if dirty {
            // Write-ahead: the log record that produced this page must be
            // durable before the page image can reach the file.
            if wal.durable_lsn() < lsn {
                wal.ensure_durable(lsn)?;
            }
            debug_assert!(wal.durable_lsn() >= lsn, "flush ahead of the log");
            let img = {
                let f = self.frames[idx].as_ref().expect("victim frame exists");
                encode_page(page_no, lsn, &f.payload, self.page_size)
            };
            self.file
                .write_at(&img, page_no as u64 * self.page_size as u64)?;
            self.writebacks += 1;
            G_WRITEBACKS.fetch_add(1, Ordering::Relaxed);
        }
        strudel_trace::count("pager.evict", 1);
        self.evictions += 1;
        G_EVICTIONS.fetch_add(1, Ordering::Relaxed);
        self.frames[idx] = None;
        self.map.remove(&page_no);
        G_RESIDENT.fetch_sub(1, Ordering::Relaxed);
        Ok(())
    }

    fn install(&mut self, idx: usize, frame: Frame) {
        debug_assert!(self.frames[idx].is_none(), "slot occupied");
        self.map.insert(frame.page_no, idx);
        self.frames[idx] = Some(frame);
        G_RESIDENT.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        G_POOL_PAGES.fetch_sub(self.capacity as u64, Ordering::Relaxed);
        G_RESIDENT.fetch_sub(self.map.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{RealVfs, Vfs};

    /// A WAL clock that records every `ensure_durable` call.
    struct MockWal {
        durable: u64,
        syncs: Vec<u64>,
        fail: bool,
    }

    impl MockWal {
        fn new() -> Self {
            MockWal {
                durable: 0,
                syncs: Vec::new(),
                fail: false,
            }
        }
    }

    impl WalClock for MockWal {
        fn durable_lsn(&self) -> u64 {
            self.durable
        }
        fn ensure_durable(&mut self, lsn: u64) -> Result<(), RepoError> {
            self.syncs.push(lsn);
            if self.fail {
                return Err(RepoError::Io(std::io::Error::other("mock sync failure")));
            }
            self.durable = self.durable.max(lsn);
            Ok(())
        }
    }

    fn pool(tag: &str, capacity: usize) -> BufferPool {
        let dir = std::env::temp_dir().join(format!("strudel-pool-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = RealVfs.open_rw(&dir.join("pages")).unwrap();
        BufferPool::new(file, 128, capacity)
    }

    #[test]
    fn put_get_round_trips_through_eviction() {
        let mut p = pool("rt", 2);
        let mut wal = MockWal::new();
        for n in 0u32..5 {
            wal.durable = n as u64 + 1; // pretend the log is synced
            p.put(n, n as u64 + 1, vec![n as u8; 10], &mut wal).unwrap();
        }
        // Pool of 2 holding 5 pages: three were evicted and written back.
        assert!(p.occupancy() <= 2);
        let (_, _, evictions, writebacks) = p.local_stats();
        assert_eq!(evictions, 3);
        assert_eq!(writebacks, 3);
        for n in 0u32..3 {
            let idx = p.get(n, &mut wal).unwrap();
            assert_eq!(p.payload(idx), &vec![n as u8; 10][..]);
            p.unpin(idx);
        }
    }

    #[test]
    fn dirty_eviction_forces_wal_durability_first() {
        let mut p = pool("wa", 1);
        let mut wal = MockWal::new();
        p.put(0, 7, vec![1; 4], &mut wal).unwrap();
        assert!(wal.syncs.is_empty(), "insert alone syncs nothing");
        // Inserting page 1 evicts dirty page 0, whose LSN 7 is not yet
        // durable: the pool must sync the log before the page write.
        p.put(1, 8, vec![2; 4], &mut wal).unwrap();
        assert_eq!(wal.syncs, vec![7]);
        assert!(wal.durable >= 7);
    }

    #[test]
    fn failed_wal_sync_blocks_the_page_write() {
        let mut p = pool("wafail", 1);
        let mut wal = MockWal::new();
        p.put(0, 7, vec![1; 4], &mut wal).unwrap();
        wal.fail = true;
        // The eviction's sync fails, so the page write must not happen.
        assert!(p.put(1, 8, vec![2; 4], &mut wal).is_err());
        let (_, _, _, writebacks) = p.local_stats();
        assert_eq!(writebacks, 0, "no page reached the file ahead of the log");
        // The dirty frame is still resident and recoverable.
        wal.fail = false;
        let idx = p.get(0, &mut wal).unwrap();
        assert_eq!(p.payload(idx), &[1; 4]);
        p.unpin(idx);
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let mut p = pool("pin", 2);
        let mut wal = MockWal::new();
        p.put(0, 1, vec![9; 4], &mut wal).unwrap();
        p.put(1, 1, vec![8; 4], &mut wal).unwrap();
        wal.durable = 1;
        let pinned = p.get(0, &mut wal).unwrap();
        // Fill the pool repeatedly; page 0 must survive every eviction.
        for n in 2u32..6 {
            p.put(n, 1, vec![n as u8; 4], &mut wal).unwrap();
        }
        assert_eq!(p.payload(pinned), &[9; 4]);
        p.unpin(pinned);
    }

    #[test]
    fn all_pinned_pool_reports_exhaustion() {
        let mut p = pool("full", 1);
        let mut wal = MockWal::new();
        p.put(0, 1, vec![1; 4], &mut wal).unwrap();
        wal.durable = 1;
        let idx = p.get(0, &mut wal).unwrap();
        let err = p.put(1, 2, vec![2; 4], &mut wal).unwrap_err();
        assert!(err.to_string().contains("pinned"), "got: {err}");
        p.unpin(idx);
    }

    #[test]
    fn flush_all_cleans_every_dirty_frame() {
        let mut p = pool("flush", 4);
        let mut wal = MockWal::new();
        for n in 0u32..3 {
            p.put(n, n as u64 + 1, vec![n as u8; 4], &mut wal).unwrap();
        }
        p.flush_all(&mut wal).unwrap();
        assert_eq!(wal.syncs, vec![3], "one sync at the max dirty LSN");
        let (_, _, _, writebacks) = p.local_stats();
        assert_eq!(writebacks, 3);
        // A second flush has nothing to do.
        p.flush_all(&mut wal).unwrap();
        let (_, _, _, wb2) = p.local_stats();
        assert_eq!(wb2, 3);
    }

    #[test]
    fn forget_drops_without_writeback() {
        let mut p = pool("forget", 2);
        let mut wal = MockWal::new();
        p.put(0, 1, vec![1; 4], &mut wal).unwrap();
        p.forget(0);
        assert_eq!(p.occupancy(), 0);
        p.flush_all(&mut wal).unwrap();
        let (_, _, _, writebacks) = p.local_stats();
        assert_eq!(writebacks, 0);
    }
}
