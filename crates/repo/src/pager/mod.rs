//! Paged repository storage: a buffer pool and MVCC read snapshots
//! under the v2 WAL.
//!
//! [`Database`](crate::Database) keeps the whole graph in memory and
//! persists it as a monolithic snapshot plus a WAL. That is the right
//! trade for sites that fit in RAM, but §2.1's "fully index everything"
//! stance assumes the repository can also grow past memory. This module
//! is that growth path: a **paged store** whose data lives in a page
//! file, cached by a fixed-size [`BufferPool`], with all I/O routed
//! through the [`Vfs`] trait so the crash-torture harness exercises it
//! unchanged.
//!
//! The moving parts, bottom to top:
//!
//! * [`page`] — the on-disk page format: LSN + CRC32 header, strict
//!   never-panicking decode.
//! * [`buffer`] — the pinning/evicting frame cache enforcing the
//!   write-ahead rule (no page image reaches the file before its LSN is
//!   durable in the WAL).
//! * [`mvcc`] — segment version chains and epoch-based retirement.
//! * [`layout`] — the graph-on-pages record formats (catalog, node
//!   segments, collection segments).
//! * [`PagedRepo`] (here) — the façade: copy-on-write commits, MVCC
//!   [`PagedSnapshot`]s for readers, checkpointing into a
//!   generation-stamped manifest via the same tmp → fsync → rename →
//!   dir-sync protocol as the snapshot store, and the recovery matrix
//!   (manifest generation vs WAL generation) shared with
//!   [`Database::open`](crate::Database::open).
//!
//! # Durability model
//!
//! Commits are shadow-paged: a delta's new segment images go to freshly
//! allocated pages, never overwriting a page referenced by the durable
//! manifest, and the WAL frame is appended *before* any of those pages
//! may be flushed. Recovery therefore never trusts post-checkpoint
//! pages: it loads the manifest's consistent cut and replays the WAL
//! through the very same staged-apply path as live commits, re-deriving
//! every post-checkpoint version. A crash at any single operation leaves
//! either the old checkpoint (plus whatever WAL prefix survived) or the
//! new one — never a torn hybrid.

pub mod buffer;
pub mod layout;
pub mod mvcc;
pub mod page;

pub use buffer::{global_stats, BufferPool, PagerStats, WalClock};
pub use mvcc::SegKey;

use crate::codec::{corrupt, read_varint, write_varint};
use crate::crc::Crc32;
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{self, Wal};
use crate::RepoError;
use layout::{
    decode_catalog, decode_members, decode_nodes, encode_catalog, encode_members, encode_nodes,
    Catalog, NodeRec,
};
use mvcc::{ReaderRegistry, VersionEntry, VersionTable};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use strudel_graph::{DeltaError, Edge, Graph, GraphDelta, InEdge, Label, Oid, Value};
use strudel_graph::DeltaOp;

/// The durable manifest (page table root), renamed into place atomically.
const MANIFEST_FILE: &str = "pager.manifest";
/// Scratch name the manifest is staged under before the rename.
const MANIFEST_TMP: &str = "pager.manifest.tmp";
/// The write-ahead log of deltas since the manifest's checkpoint.
const WAL_FILE: &str = "pager.wal";
/// The page file all segment versions live in.
const PAGES_FILE: &str = "pager.pages";

const MANIFEST_MAGIC: &[u8; 8] = b"STRUPMAN";
const MANIFEST_VERSION: u8 = 1;
/// magic + version + generation + base_lsn + page_size + nodes/seg +
/// next_page + body crc.
const MANIFEST_HEADER_LEN: usize = 8 + 1 + 8 + 8 + 4 + 4 + 4 + 4;

/// Tuning knobs for a paged store.
#[derive(Clone, Copy, Debug)]
pub struct PagerConfig {
    /// Bytes per page (floor: [`page::MIN_PAGE_SIZE`]). Fixed at store
    /// creation; reopening adopts the on-disk value.
    pub page_size: usize,
    /// Buffer-pool capacity in frames.
    pub pool_pages: usize,
    /// Consecutive oids per node segment. Fixed at store creation.
    pub nodes_per_segment: u32,
}

impl Default for PagerConfig {
    fn default() -> Self {
        PagerConfig {
            page_size: 4096,
            pool_pages: 256,
            nodes_per_segment: 16,
        }
    }
}

/// The WAL plus the two LSN watermarks the buffer pool's write-ahead
/// rule needs: how much has been appended and how much is durable.
#[derive(Debug)]
struct WalCtx {
    /// `None` after a WAL failure poisons the store.
    wal: Option<Wal>,
    /// LSN of the last appended (or replayed) frame.
    appended: u64,
    /// Highest LSN known synced to stable storage.
    durable: u64,
}

impl WalClock for WalCtx {
    fn durable_lsn(&self) -> u64 {
        self.durable
    }

    fn ensure_durable(&mut self, lsn: u64) -> Result<(), RepoError> {
        debug_assert!(lsn <= self.appended, "durability ahead of the append point");
        if lsn <= self.durable {
            return Ok(());
        }
        let Some(w) = self.wal.as_mut() else {
            return Err(RepoError::Io(std::io::Error::other(
                "wal unavailable: reopen the store to recover",
            )));
        };
        w.sync()?;
        self.durable = self.appended;
        Ok(())
    }
}

/// The decoded manifest: store geometry plus the consistent cut of
/// segment versions at the last checkpoint.
#[derive(Debug)]
struct Manifest {
    generation: u64,
    base_lsn: u64,
    page_size: u32,
    nodes_per_segment: u32,
    next_page: u32,
    entries: Vec<(SegKey, u64, Vec<u32>)>,
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut body = Vec::new();
    write_varint(&mut body, m.entries.len() as u64).expect("vec write");
    for (key, len, pages) in &m.entries {
        let (tag, idx) = match key {
            SegKey::Catalog => (0u8, 0u32),
            SegKey::Nodes(i) => (1, *i),
            SegKey::Collection(i) => (2, *i),
        };
        body.push(tag);
        write_varint(&mut body, idx as u64).expect("vec write");
        write_varint(&mut body, *len).expect("vec write");
        write_varint(&mut body, pages.len() as u64).expect("vec write");
        for p in pages {
            write_varint(&mut body, *p as u64).expect("vec write");
        }
    }
    let mut buf = Vec::with_capacity(MANIFEST_HEADER_LEN + body.len());
    buf.extend_from_slice(MANIFEST_MAGIC);
    buf.push(MANIFEST_VERSION);
    buf.extend_from_slice(&m.generation.to_le_bytes());
    buf.extend_from_slice(&m.base_lsn.to_le_bytes());
    buf.extend_from_slice(&m.page_size.to_le_bytes());
    buf.extend_from_slice(&m.nodes_per_segment.to_le_bytes());
    buf.extend_from_slice(&m.next_page.to_le_bytes());
    // The checksum covers everything but itself: header fields and body.
    let mut h = Crc32::new();
    h.update(&buf);
    h.update(&body);
    buf.extend_from_slice(&h.finish().to_le_bytes());
    buf.extend_from_slice(&body);
    buf
}

/// Decodes a manifest image. Strictly bounds-checked: hostile or torn
/// bytes come back as [`RepoError::Corrupt`], never a panic.
fn decode_manifest(bytes: &[u8]) -> Result<Manifest, RepoError> {
    if bytes.len() < MANIFEST_HEADER_LEN {
        return Err(corrupt(0, "manifest shorter than its header"));
    }
    if &bytes[..8] != MANIFEST_MAGIC {
        return Err(corrupt(0, "bad manifest magic"));
    }
    if bytes[8] != MANIFEST_VERSION {
        return Err(corrupt(8, format!("unknown manifest version {}", bytes[8])));
    }
    let generation = u64::from_le_bytes(bytes[9..17].try_into().unwrap());
    let base_lsn = u64::from_le_bytes(bytes[17..25].try_into().unwrap());
    let page_size = u32::from_le_bytes(bytes[25..29].try_into().unwrap());
    let nodes_per_segment = u32::from_le_bytes(bytes[29..33].try_into().unwrap());
    let next_page = u32::from_le_bytes(bytes[33..37].try_into().unwrap());
    let stored_crc = u32::from_le_bytes(bytes[37..41].try_into().unwrap());
    let body = &bytes[MANIFEST_HEADER_LEN..];
    let mut h = Crc32::new();
    h.update(&bytes[..37]);
    h.update(body);
    if h.finish() != stored_crc {
        return Err(corrupt(0, "manifest checksum mismatch"));
    }
    if page_size < page::MIN_PAGE_SIZE as u32 {
        return Err(corrupt(25, format!("page size {page_size} below minimum")));
    }
    if nodes_per_segment == 0 {
        return Err(corrupt(29, "zero nodes per segment"));
    }
    let mut r = body;
    let mut offset = MANIFEST_HEADER_LEN as u64;
    let count = read_varint(&mut r, &mut offset)?;
    if count > r.len() as u64 {
        return Err(corrupt(offset, format!("entry count {count} exceeds input")));
    }
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let mut tag = [0u8; 1];
        std::io::Read::read_exact(&mut r, &mut tag)?;
        offset += 1;
        let idx = read_varint(&mut r, &mut offset)?;
        let idx = u32::try_from(idx).map_err(|_| corrupt(offset, "segment index overflow"))?;
        let key = match tag[0] {
            0 => SegKey::Catalog,
            1 => SegKey::Nodes(idx),
            2 => SegKey::Collection(idx),
            t => return Err(corrupt(offset, format!("unknown segment tag {t}"))),
        };
        let len = read_varint(&mut r, &mut offset)?;
        let n_pages = read_varint(&mut r, &mut offset)?;
        if n_pages > r.len() as u64 {
            return Err(corrupt(offset, format!("page count {n_pages} exceeds input")));
        }
        let mut pages = Vec::with_capacity(n_pages as usize);
        for _ in 0..n_pages {
            let p = read_varint(&mut r, &mut offset)?;
            let p = u32::try_from(p).map_err(|_| corrupt(offset, "page number overflow"))?;
            if p >= next_page {
                return Err(corrupt(offset, format!("page {p} beyond next_page {next_page}")));
            }
            pages.push(p);
        }
        entries.push((key, len, pages));
    }
    if !r.is_empty() {
        return Err(corrupt(offset, "trailing bytes after manifest"));
    }
    Ok(Manifest {
        generation,
        base_lsn,
        page_size,
        nodes_per_segment,
        next_page,
        entries,
    })
}

/// Writes `m` durably: staged to a tmp name, synced, renamed into place,
/// directory synced — the same protocol the snapshot store uses, so a
/// crash at any step leaves either the old manifest or the new one.
fn write_manifest(vfs: &dyn Vfs, dir: &Path, m: &Manifest) -> Result<(), RepoError> {
    let tmp = dir.join(MANIFEST_TMP);
    let path = dir.join(MANIFEST_FILE);
    let bytes = encode_manifest(m);
    let mut f = vfs.create(&tmp)?;
    f.write(&bytes)?;
    f.sync()?;
    drop(f);
    vfs.rename(&tmp, &path)?;
    vfs.sync_dir(dir)?;
    Ok(())
}

fn read_manifest(vfs: &dyn Vfs, path: &Path) -> Result<Manifest, RepoError> {
    let bytes = vfs.read(path)?;
    let disk_len = vfs.len(path)?;
    if bytes.len() as u64 != disk_len {
        return Err(RepoError::Io(std::io::Error::other(format!(
            "manifest short read: got {} of {} bytes",
            bytes.len(),
            disk_len
        ))));
    }
    decode_manifest(&bytes)
}

/// The staged, not-yet-committed effects of one delta: segment images
/// loaded copy-on-write plus catalog additions. Deterministically
/// ordered (`BTreeMap`) so page allocation — and therefore the torture
/// harness's operation schedule — is reproducible.
#[derive(Debug, Default)]
struct Scratch {
    nodes: BTreeMap<u32, Vec<NodeRec>>,
    members: BTreeMap<u32, Vec<Value>>,
    new_labels: Vec<String>,
    new_collections: Vec<String>,
    new_names: Vec<(String, u64)>,
    node_count: u64,
    catalog_dirty: bool,
}

/// Everything behind the store's mutex: the pool, the WAL watermarks,
/// the version table, reader epochs, the free-space map, and the
/// in-memory catalog mirrors.
#[derive(Debug)]
struct State {
    nodes_per_segment: u32,
    pool: BufferPool,
    wal: WalCtx,
    versions: VersionTable,
    readers: ReaderRegistry,
    /// Current commit epoch; bumped once per applied delta.
    epoch: u64,
    generation: u64,
    /// LSN at the last checkpoint (the manifest's WAL position).
    base_lsn: u64,
    /// Page allocation: lowest-numbered free page first, then growth.
    next_page: u32,
    free: BTreeSet<u32>,
    /// Pages the durable manifest references — never reusable until the
    /// next checkpoint supersedes it.
    manifest_pages: HashSet<u32>,
    /// Retired pages that are still manifest-referenced; they join
    /// `free` at the next checkpoint.
    pending_free: Vec<u32>,
    // In-memory mirrors of the catalog (authoritative copy is paged).
    labels: Vec<String>,
    label_ids: HashMap<String, u32>,
    collections: Vec<String>,
    collection_ids: HashMap<String, u32>,
    /// Name → oid. Names are never removed; snapshot visibility is
    /// gated by the snapshot's node count (nodes are append-only).
    names: HashMap<String, u64>,
    node_count: u64,
    /// A WAL or page write failed mid-commit; in-memory state may not
    /// match disk. All further writes fail until the store is reopened.
    poisoned: bool,
}

impl State {
    fn check_poisoned(&self) -> Result<(), RepoError> {
        if self.poisoned {
            return Err(RepoError::Io(std::io::Error::other(
                "store poisoned by an earlier write failure: reopen to recover",
            )));
        }
        Ok(())
    }

    fn alloc_page(&mut self) -> u32 {
        if let Some(p) = self.free.pop_first() {
            return p;
        }
        let p = self.next_page;
        self.next_page += 1;
        p
    }

    /// Reads the version of `key` visible at `epoch` through the pool,
    /// pinning one page at a time.
    fn read_segment(&mut self, key: SegKey, epoch: u64) -> Result<Option<Vec<u8>>, RepoError> {
        let Some(entry) = self.versions.resolve(key, epoch) else {
            return Ok(None);
        };
        let len = entry.len as usize;
        let pages = entry.pages.clone();
        let mut bytes = Vec::with_capacity(len);
        for p in pages {
            let idx = self.pool.get(p, &mut self.wal)?;
            bytes.extend_from_slice(self.pool.payload(idx));
            self.pool.unpin(idx);
        }
        if bytes.len() != len {
            return Err(corrupt(
                0,
                format!("segment reassembled to {} bytes, expected {len}", bytes.len()),
            ));
        }
        Ok(Some(bytes))
    }

    /// Writes `bytes` as a new version of `key` at (`epoch`, `lsn`):
    /// chunks them over freshly allocated pages (copy-on-write — never a
    /// page the durable manifest references) and publishes the version.
    fn write_segment(
        &mut self,
        key: SegKey,
        bytes: &[u8],
        epoch: u64,
        lsn: u64,
    ) -> Result<(), RepoError> {
        let cap = self.pool.payload_capacity();
        let n_chunks = bytes.len().div_ceil(cap);
        let mut pages = Vec::with_capacity(n_chunks);
        for chunk in bytes.chunks(cap) {
            let page_no = self.alloc_page();
            self.pool.put(page_no, lsn, chunk.to_vec(), &mut self.wal)?;
            pages.push(page_no);
        }
        self.versions.publish(
            key,
            VersionEntry {
                epoch,
                lsn,
                len: bytes.len() as u64,
                pages,
            },
        );
        Ok(())
    }

    /// Reclaims every version no registered reader can still reach.
    fn retire_versions(&mut self) {
        let min = self.readers.min_active(self.epoch);
        let State {
            versions,
            pool,
            free,
            manifest_pages,
            pending_free,
            ..
        } = self;
        versions.retire(min, |v| {
            for &p in &v.pages {
                pool.forget(p);
                if manifest_pages.contains(&p) {
                    pending_free.push(p);
                } else {
                    free.insert(p);
                }
            }
        });
    }

    // ---- staged (copy-on-write) delta application -------------------

    fn lookup_label(&self, s: &Scratch, name: &str) -> Option<u32> {
        if let Some(&i) = self.label_ids.get(name) {
            return Some(i);
        }
        s.new_labels
            .iter()
            .position(|l| l == name)
            .map(|p| (self.labels.len() + p) as u32)
    }

    fn intern_label_staged(&self, s: &mut Scratch, name: &str) -> u32 {
        if let Some(i) = self.lookup_label(s, name) {
            return i;
        }
        s.new_labels.push(name.to_string());
        s.catalog_dirty = true;
        (self.labels.len() + s.new_labels.len() - 1) as u32
    }

    fn lookup_collection(&self, s: &Scratch, name: &str) -> Option<u32> {
        if let Some(&i) = self.collection_ids.get(name) {
            return Some(i);
        }
        s.new_collections
            .iter()
            .position(|c| c == name)
            .map(|p| (self.collections.len() + p) as u32)
    }

    fn intern_collection_staged(&self, s: &mut Scratch, name: &str) -> u32 {
        if let Some(i) = self.lookup_collection(s, name) {
            return i;
        }
        s.new_collections.push(name.to_string());
        s.catalog_dirty = true;
        (self.collections.len() + s.new_collections.len() - 1) as u32
    }

    fn lookup_name(&self, s: &Scratch, name: &str) -> Option<u64> {
        if let Some(&oid) = self.names.get(name) {
            return Some(oid);
        }
        s.new_names.iter().find(|(n, _)| n == name).map(|(_, o)| *o)
    }

    /// The staged image of node segment `seg`, loaded copy-on-write from
    /// the newest committed version on first touch.
    fn staged_nodes<'a>(
        &mut self,
        s: &'a mut Scratch,
        seg: u32,
    ) -> Result<&'a mut Vec<NodeRec>, RepoError> {
        if let std::collections::btree_map::Entry::Vacant(e) = s.nodes.entry(seg) {
            let recs = match self.read_segment(SegKey::Nodes(seg), self.epoch)? {
                Some(bytes) => decode_nodes(&bytes)?,
                None => Vec::new(),
            };
            e.insert(recs);
        }
        Ok(s.nodes.get_mut(&seg).expect("inserted above"))
    }

    /// The staged member list of collection `cid`, ditto.
    fn staged_members<'a>(
        &mut self,
        s: &'a mut Scratch,
        cid: u32,
    ) -> Result<&'a mut Vec<Value>, RepoError> {
        if let std::collections::btree_map::Entry::Vacant(e) = s.members.entry(cid) {
            let members = match self.read_segment(SegKey::Collection(cid), self.epoch)? {
                Some(bytes) => decode_members(&bytes)?,
                None => Vec::new(),
            };
            e.insert(members);
        }
        Ok(s.members.get_mut(&cid).expect("inserted above"))
    }

    /// Applies `delta` to a scratch overlay without touching committed
    /// state, enforcing exactly the [`Graph`] mutation semantics (named
    /// nodes dedupe, collections are sets, removals need a match). Any
    /// error leaves the store untouched — the scratch is simply dropped.
    fn stage_delta(&mut self, delta: &GraphDelta) -> Result<Scratch, RepoError> {
        let nps = self.nodes_per_segment as u64;
        let mut s = Scratch {
            node_count: self.node_count,
            ..Scratch::default()
        };
        let check_value = |count: u64, v: &Value| -> Result<(), DeltaError> {
            if let Some(o) = v.as_node() {
                if o.index() as u64 >= count {
                    return Err(DeltaError::UnknownNode(o));
                }
            }
            Ok(())
        };
        for op in delta.ops() {
            match op {
                DeltaOp::AddNode { name } => {
                    if let Some(n) = name {
                        if self.lookup_name(&s, n).is_some() {
                            // Same as Graph::add_named_node: an existing
                            // name fetches the node instead of creating.
                            continue;
                        }
                    }
                    let oid = s.node_count;
                    let seg = (oid / nps) as u32;
                    let recs = self.staged_nodes(&mut s, seg)?;
                    debug_assert_eq!(recs.len() as u64, oid % nps, "segment fill out of order");
                    recs.push(NodeRec {
                        name: name.as_ref().map(|n| n.to_string()),
                        ..NodeRec::default()
                    });
                    if let Some(n) = name {
                        s.new_names.push((n.to_string(), oid));
                    }
                    s.node_count += 1;
                    s.catalog_dirty = true;
                }
                DeltaOp::AddEdge { from, label, to } => {
                    let from_i = from.index() as u64;
                    if from_i >= s.node_count {
                        return Err(DeltaError::UnknownNode(*from).into());
                    }
                    check_value(s.node_count, to)?;
                    let lidx = self.intern_label_staged(&mut s, label);
                    let recs = self.staged_nodes(&mut s, (from_i / nps) as u32)?;
                    recs[(from_i % nps) as usize].edges.push((lidx, to.clone()));
                    if let Some(t) = to.as_node() {
                        let t_i = t.index() as u64;
                        let trecs = self.staged_nodes(&mut s, (t_i / nps) as u32)?;
                        trecs[(t_i % nps) as usize].rev.push((from_i, lidx));
                    }
                }
                DeltaOp::RemoveEdge { from, label, to } => {
                    let from_i = from.index() as u64;
                    if from_i >= s.node_count {
                        return Err(DeltaError::UnknownNode(*from).into());
                    }
                    let missing = || DeltaError::MissingEdge {
                        from: *from,
                        label: label.clone(),
                    };
                    let Some(lidx) = self.lookup_label(&s, label) else {
                        return Err(missing().into());
                    };
                    let recs = self.staged_nodes(&mut s, (from_i / nps) as u32)?;
                    let rec = &mut recs[(from_i % nps) as usize];
                    let Some(pos) = rec
                        .edges
                        .iter()
                        .position(|(l, v)| *l == lidx && v == to)
                    else {
                        return Err(missing().into());
                    };
                    rec.edges.remove(pos);
                    if let Some(t) = to.as_node() {
                        // Mirror Graph::remove_edge: drop the first
                        // (from, label) entry of the target's reverse
                        // adjacency, whatever its value.
                        let t_i = t.index() as u64;
                        let trecs = self.staged_nodes(&mut s, (t_i / nps) as u32)?;
                        let trec = &mut trecs[(t_i % nps) as usize];
                        if let Some(rpos) = trec
                            .rev
                            .iter()
                            .position(|(f, l)| *f == from_i && *l == lidx)
                        {
                            trec.rev.remove(rpos);
                        }
                    }
                }
                DeltaOp::Collect { collection, member } => {
                    check_value(s.node_count, member)?;
                    let cid = self.intern_collection_staged(&mut s, collection);
                    let members = self.staged_members(&mut s, cid)?;
                    if !members.iter().any(|m| m == member) {
                        members.push(member.clone());
                    }
                }
                DeltaOp::Uncollect { collection, member } => {
                    let missing = || DeltaError::MissingMember {
                        collection: collection.clone(),
                    };
                    let Some(cid) = self.lookup_collection(&s, collection) else {
                        return Err(missing().into());
                    };
                    let members = self.staged_members(&mut s, cid)?;
                    let Some(pos) = members.iter().position(|m| m == member) else {
                        return Err(missing().into());
                    };
                    members.remove(pos);
                }
            }
        }
        Ok(s)
    }

    /// Publishes a staged delta at the next epoch: merges the catalog
    /// additions, writes every touched segment to fresh pages at `lsn`,
    /// bumps the epoch, and retires unreachable versions. The WAL frame
    /// for `lsn` must already be appended.
    fn commit_staged(&mut self, s: Scratch, lsn: u64) -> Result<(), RepoError> {
        let epoch = self.epoch + 1;
        for l in s.new_labels {
            self.label_ids.insert(l.clone(), self.labels.len() as u32);
            self.labels.push(l);
        }
        for c in s.new_collections {
            self.collection_ids
                .insert(c.clone(), self.collections.len() as u32);
            self.collections.push(c);
        }
        for (n, oid) in s.new_names {
            self.names.insert(n, oid);
        }
        self.node_count = s.node_count;
        if s.catalog_dirty {
            let cat = Catalog {
                labels: self.labels.clone(),
                collections: self.collections.clone(),
                node_count: self.node_count,
            };
            self.write_segment(SegKey::Catalog, &encode_catalog(&cat), epoch, lsn)?;
        }
        for (seg, recs) in &s.nodes {
            self.write_segment(SegKey::Nodes(*seg), &encode_nodes(recs), epoch, lsn)?;
        }
        for (cid, members) in &s.members {
            self.write_segment(SegKey::Collection(*cid), &encode_members(members), epoch, lsn)?;
        }
        self.epoch = epoch;
        self.retire_versions();
        Ok(())
    }

    /// Checkpoint: force the log and every dirty page down, publish a
    /// new manifest generation atomically, and restart the WAL.
    fn checkpoint_inner(&mut self, vfs: &dyn Vfs, dir: &Path) -> Result<(), RepoError> {
        let lsn = self.wal.appended;
        self.wal.ensure_durable(lsn)?;
        self.pool.flush_all(&mut self.wal)?;
        let new_gen = self.generation + 1;
        let manifest = Manifest {
            generation: new_gen,
            base_lsn: lsn,
            page_size: (self.pool.payload_capacity() + page::PAGE_HEADER_LEN) as u32,
            nodes_per_segment: self.nodes_per_segment,
            next_page: self.next_page,
            entries: self
                .versions
                .current(self.epoch)
                .map(|(k, v)| (k, v.len, v.pages.clone()))
                .collect(),
        };
        write_manifest(vfs, dir, &manifest)?;
        // A crash here leaves manifest generation new_gen with the old
        // WAL still at new_gen - 1: recovery discards the stale log and
        // trusts the (complete) checkpoint alone.
        let new_wal = Wal::create_with(vfs, &dir.join(WAL_FILE), new_gen)?;
        self.wal.wal = Some(new_wal);
        self.generation = new_gen;
        self.base_lsn = lsn;
        self.manifest_pages = manifest
            .entries
            .iter()
            .flat_map(|(_, _, pages)| pages.iter().copied())
            .collect();
        // Pages retired while the old manifest still referenced them are
        // now reusable: a retired version cannot be in the new cut.
        let pending: Vec<u32> = self.pending_free.drain(..).collect();
        self.free.extend(pending);
        Ok(())
    }
}

#[derive(Debug)]
struct Inner {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    state: Mutex<State>,
}

/// A paged, MVCC, write-ahead-logged graph store. Cheap to clone; all
/// clones share one buffer pool and version table.
#[derive(Clone, Debug)]
pub struct PagedRepo {
    inner: Arc<Inner>,
}

impl PagedRepo {
    /// Opens (or creates) the paged store in `dir` on the real
    /// filesystem.
    pub fn open(dir: &Path, cfg: PagerConfig) -> Result<Self, RepoError> {
        Self::open_with(Arc::new(RealVfs), dir, cfg)
    }

    /// Opens (or creates) the paged store in `dir` through `vfs`,
    /// running the recovery matrix: the manifest names a generation; a
    /// WAL of an older generation (or with a torn header) is a stale
    /// leftover and is discarded, a newer one is corruption, a matching
    /// one is replayed — through the same staged-apply path as live
    /// commits, so post-checkpoint page state is re-derived rather than
    /// trusted.
    pub fn open_with(vfs: Arc<dyn Vfs>, dir: &Path, cfg: PagerConfig) -> Result<Self, RepoError> {
        vfs.create_dir_all(dir)?;
        let tmp = dir.join(MANIFEST_TMP);
        if vfs.exists(&tmp) {
            // An unfinished checkpoint died before its rename; the real
            // manifest is still authoritative.
            vfs.remove_file(&tmp)?;
        }
        let manifest_path = dir.join(MANIFEST_FILE);
        let wal_path = dir.join(WAL_FILE);
        if !vfs.exists(&manifest_path) {
            let fresh = Manifest {
                generation: 0,
                base_lsn: 0,
                page_size: cfg.page_size.max(page::MIN_PAGE_SIZE) as u32,
                nodes_per_segment: cfg.nodes_per_segment.max(1),
                next_page: 0,
                entries: Vec::new(),
            };
            write_manifest(&*vfs, dir, &fresh)?;
            Wal::create_with(&*vfs, &wal_path, 0)?;
        }
        let m = read_manifest(&*vfs, &manifest_path)?;

        let report = wal::replay_report_with(&*vfs, &wal_path)?;
        let (deltas, wal) = if report.torn_header || report.generation < m.generation {
            // Stale or torn log from before (or during) the manifest's
            // checkpoint: the checkpoint is complete, the log is noise.
            (Vec::new(), Wal::create_with(&*vfs, &wal_path, m.generation)?)
        } else if report.generation > m.generation {
            return Err(corrupt(
                0,
                format!(
                    "wal generation {} ahead of manifest generation {}",
                    report.generation, m.generation
                ),
            ));
        } else {
            if report.discarded_bytes > 0 {
                let keep = vfs.len(&wal_path)?.saturating_sub(report.discarded_bytes);
                vfs.set_len(&wal_path, keep)?;
            }
            (
                report.deltas,
                Wal::open_append_with(&*vfs, &wal_path, m.generation)?,
            )
        };

        let pool = BufferPool::new(
            vfs.open_rw(&dir.join(PAGES_FILE))?,
            m.page_size as usize,
            cfg.pool_pages,
        );
        let mut versions = VersionTable::new();
        let mut manifest_pages = HashSet::new();
        for (key, len, pages) in &m.entries {
            manifest_pages.extend(pages.iter().copied());
            versions.publish(
                *key,
                VersionEntry {
                    epoch: 0,
                    lsn: m.base_lsn,
                    len: *len,
                    pages: pages.clone(),
                },
            );
        }
        let free = (0..m.next_page)
            .filter(|p| !manifest_pages.contains(p))
            .collect();
        let mut st = State {
            nodes_per_segment: m.nodes_per_segment,
            pool,
            wal: WalCtx {
                wal: Some(wal),
                appended: m.base_lsn,
                durable: m.base_lsn,
            },
            versions,
            readers: ReaderRegistry::new(),
            epoch: 0,
            generation: m.generation,
            base_lsn: m.base_lsn,
            next_page: m.next_page,
            free,
            manifest_pages,
            pending_free: Vec::new(),
            labels: Vec::new(),
            label_ids: HashMap::new(),
            collections: Vec::new(),
            collection_ids: HashMap::new(),
            names: HashMap::new(),
            node_count: 0,
            poisoned: false,
        };

        // Rebuild the in-memory catalog mirrors from the checkpoint.
        if let Some(bytes) = st.read_segment(SegKey::Catalog, 0)? {
            let cat = decode_catalog(&bytes)?;
            for (i, l) in cat.labels.iter().enumerate() {
                st.label_ids.insert(l.clone(), i as u32);
            }
            for (i, c) in cat.collections.iter().enumerate() {
                st.collection_ids.insert(c.clone(), i as u32);
            }
            st.labels = cat.labels;
            st.collections = cat.collections;
            st.node_count = cat.node_count;
        }
        let nps = st.nodes_per_segment as u64;
        for seg in 0..st.node_count.div_ceil(nps) {
            let bytes = st
                .read_segment(SegKey::Nodes(seg as u32), 0)?
                .ok_or_else(|| corrupt(0, format!("missing node segment {seg}")))?;
            for (i, rec) in decode_nodes(&bytes)?.iter().enumerate() {
                if let Some(n) = &rec.name {
                    st.names.insert(n.clone(), seg * nps + i as u64);
                }
            }
        }

        // Replay post-checkpoint deltas through the live commit path.
        for (i, delta) in deltas.iter().enumerate() {
            let lsn = m.base_lsn + i as u64 + 1;
            let scratch = st.stage_delta(delta)?;
            st.wal.appended = lsn;
            st.commit_staged(scratch, lsn)?;
        }
        // Everything replayed was read from the log: it is durable.
        st.wal.durable = st.wal.appended;

        Ok(PagedRepo {
            inner: Arc::new(Inner {
                vfs,
                dir: dir.to_path_buf(),
                state: Mutex::new(st),
            }),
        })
    }

    /// Creates a fresh paged store in `dir` on the real filesystem
    /// holding `graph`. See [`PagedRepo::bulk_load_with`].
    pub fn bulk_load(dir: &Path, cfg: PagerConfig, graph: &Graph) -> Result<Self, RepoError> {
        Self::bulk_load_with(Arc::new(RealVfs), dir, cfg, graph)
    }

    /// Creates a fresh paged store in `dir` holding `graph`, loaded in
    /// bounded chunks (nodes, then edges, then collections) and
    /// checkpointed, so peak staging memory stays small no matter the
    /// site size. Fails if `dir` already holds a non-empty store.
    pub fn bulk_load_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        cfg: PagerConfig,
        graph: &Graph,
    ) -> Result<Self, RepoError> {
        let repo = Self::open_with(vfs, dir, cfg)?;
        if repo.lock().node_count > 0 {
            return Err(RepoError::Io(std::io::Error::other(
                "bulk_load into a non-empty paged store",
            )));
        }
        const CHUNK: usize = 256;
        let mut d = GraphDelta::new();
        let flush = |repo: &PagedRepo, d: &mut GraphDelta, force: bool| -> Result<(), RepoError> {
            if d.len() >= CHUNK || (force && !d.is_empty()) {
                repo.apply_delta(d)?;
                *d = GraphDelta::new();
            }
            Ok(())
        };
        for oid in graph.node_oids() {
            d.add_node(graph.node_name(oid));
            flush(&repo, &mut d, false)?;
        }
        flush(&repo, &mut d, true)?;
        for oid in graph.node_oids() {
            for e in graph.edges(oid) {
                d.add_edge(oid, graph.label_name(e.label), e.to.clone());
                flush(&repo, &mut d, false)?;
            }
        }
        flush(&repo, &mut d, true)?;
        for (cid, name) in graph.collections() {
            let members = graph.members(cid);
            if members.is_empty() {
                // There is no "create empty collection" op; a collect
                // and uncollect of a placeholder in one delta interns
                // the collection and leaves it empty.
                d.collect(name, Value::Int(0));
                d.uncollect(name, Value::Int(0));
            }
            for mem in members {
                d.collect(name, mem.clone());
            }
            flush(&repo, &mut d, false)?;
        }
        flush(&repo, &mut d, true)?;
        repo.checkpoint()?;
        Ok(repo)
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.inner.state.lock().expect("pager state lock")
    }

    /// Validates and commits `delta`: staged copy-on-write against the
    /// current epoch, WAL-appended, written to fresh pages, published at
    /// the next epoch. All-or-nothing — a validation error changes
    /// nothing; a write failure after the WAL append poisons the store
    /// (reopen recovers from the log).
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<(), RepoError> {
        let mut st = self.lock();
        st.check_poisoned()?;
        let scratch = st.stage_delta(delta)?;
        let lsn = st.wal.appended + 1;
        let w = st.wal.wal.as_mut().expect("unpoisoned store has a wal");
        if let Err(e) = w.append(delta) {
            st.poisoned = true;
            st.wal.wal = None;
            return Err(e);
        }
        st.wal.appended = lsn;
        let res = st.commit_staged(scratch, lsn);
        if res.is_err() {
            st.poisoned = true;
        }
        res
    }

    /// Forces the log and all dirty pages durable, publishes a new
    /// manifest generation (tmp → fsync → rename → dir-sync), and
    /// restarts the WAL at that generation.
    pub fn checkpoint(&self) -> Result<(), RepoError> {
        let mut st = self.lock();
        st.check_poisoned()?;
        let res = st.checkpoint_inner(&*self.inner.vfs, &self.inner.dir);
        if res.is_err() {
            st.poisoned = true;
            st.wal.wal = None;
        }
        res
    }

    /// Opens a consistent read snapshot at the current commit epoch. The
    /// snapshot keeps observing exactly this state — concurrent
    /// `apply_delta` commits land in later epochs — until dropped, which
    /// releases its version pins for retirement.
    pub fn snapshot(&self) -> PagedSnapshot {
        let mut st = self.lock();
        let epoch = st.epoch;
        st.readers.register(epoch);
        PagedSnapshot {
            inner: Arc::clone(&self.inner),
            epoch,
            node_count: st.node_count,
            label_count: st.labels.len(),
            collection_count: st.collections.len(),
        }
    }

    /// The durable manifest generation.
    pub fn generation(&self) -> u64 {
        self.lock().generation
    }

    /// The current commit epoch (one per applied delta).
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Nodes in the store at the current epoch.
    pub fn node_count(&self) -> u64 {
        self.lock().node_count
    }

    /// `(occupancy, capacity, hits, misses, evictions, writebacks)` of
    /// this store's buffer pool.
    pub fn pool_stats(&self) -> (usize, usize, u64, u64, u64, u64) {
        let st = self.lock();
        let (h, m, e, w) = st.pool.local_stats();
        (st.pool.occupancy(), st.pool.capacity(), h, m, e, w)
    }

    /// Whether an earlier write failure poisoned the store: reads keep
    /// working from committed state, every write fails until the store
    /// is reopened (which recovers from the log). Health endpoints
    /// surface this so a supervisor can recycle the process.
    pub fn is_poisoned(&self) -> bool {
        self.lock().poisoned
    }
}

/// A consistent MVCC read view of a [`PagedRepo`] at one commit epoch.
///
/// Every accessor resolves segments to the newest version at or below
/// the snapshot's epoch, so concurrent commits are invisible. Dropping
/// the snapshot deregisters its epoch and lets superseded versions
/// retire.
#[derive(Debug)]
pub struct PagedSnapshot {
    inner: Arc<Inner>,
    epoch: u64,
    node_count: u64,
    label_count: usize,
    collection_count: usize,
}

impl PagedSnapshot {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.inner.state.lock().expect("pager state lock")
    }

    /// The snapshot's commit epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Nodes visible to this snapshot.
    pub fn node_count(&self) -> u64 {
        self.node_count
    }

    /// Labels visible to this snapshot, in intern order.
    pub fn labels(&self) -> Vec<String> {
        self.lock().labels[..self.label_count].to_vec()
    }

    /// Collection names visible to this snapshot, in creation order.
    pub fn collections(&self) -> Vec<String> {
        self.lock().collections[..self.collection_count].to_vec()
    }

    /// The name of a visible label index.
    pub fn label_name(&self, label: Label) -> Option<String> {
        if label.index() >= self.label_count {
            return None;
        }
        Some(self.lock().labels[label.index()].clone())
    }

    fn node_rec(&self, st: &mut State, oid: u64) -> Result<NodeRec, RepoError> {
        let nps = st.nodes_per_segment as u64;
        let seg = (oid / nps) as u32;
        let bytes = st
            .read_segment(SegKey::Nodes(seg), self.epoch)?
            .ok_or_else(|| corrupt(0, format!("missing node segment {seg}")))?;
        let mut recs = decode_nodes(&bytes)?;
        let slot = (oid % nps) as usize;
        if slot >= recs.len() {
            return Err(corrupt(0, format!("node {oid} beyond segment {seg}")));
        }
        Ok(recs.swap_remove(slot))
    }

    /// The symbolic name of `oid`, if the node is visible and named.
    pub fn node_name(&self, oid: u64) -> Result<Option<String>, RepoError> {
        if oid >= self.node_count {
            return Ok(None);
        }
        let mut st = self.lock();
        Ok(self.node_rec(&mut st, oid)?.name)
    }

    /// Resolves a symbolic name to its oid, if visible.
    pub fn node_by_name(&self, name: &str) -> Option<u64> {
        self.lock()
            .names
            .get(name)
            .copied()
            .filter(|&oid| oid < self.node_count)
    }

    /// The out-edges of `oid` in insertion order.
    pub fn edges(&self, oid: u64) -> Result<Vec<Edge>, RepoError> {
        if oid >= self.node_count {
            return Err(DeltaError::UnknownNode(Oid::from_index(oid as usize)).into());
        }
        let mut st = self.lock();
        let rec = self.node_rec(&mut st, oid)?;
        Ok(rec
            .edges
            .into_iter()
            .map(|(l, to)| Edge {
                label: Label::from_index(l as usize),
                to,
            })
            .collect())
    }

    /// The in-edges of `oid` (reverse adjacency) in insertion order.
    pub fn edges_in(&self, oid: u64) -> Result<Vec<InEdge>, RepoError> {
        if oid >= self.node_count {
            return Err(DeltaError::UnknownNode(Oid::from_index(oid as usize)).into());
        }
        let mut st = self.lock();
        let rec = self.node_rec(&mut st, oid)?;
        Ok(rec
            .rev
            .into_iter()
            .map(|(from, l)| InEdge {
                from: Oid::from_index(from as usize),
                label: Label::from_index(l as usize),
            })
            .collect())
    }

    /// The members of the named collection, in insertion order. Unknown
    /// or not-yet-visible collections read as empty.
    pub fn members(&self, name: &str) -> Result<Vec<Value>, RepoError> {
        let mut st = self.lock();
        let cid = match st.collection_ids.get(name) {
            Some(&i) if (i as usize) < self.collection_count => i,
            _ => return Ok(Vec::new()),
        };
        match st.read_segment(SegKey::Collection(cid), self.epoch)? {
            Some(bytes) => decode_members(&bytes),
            None => Ok(Vec::new()),
        }
    }

    /// Reconstructs the full in-memory [`Graph`] this snapshot sees —
    /// identical (including serialization byte-for-byte) to replaying
    /// the same deltas against a fresh graph. This is the out-of-core
    /// store's bridge to the in-memory query machinery, and the oracle
    /// hook for the differential tests.
    pub fn materialize(&self) -> Result<Graph, RepoError> {
        let mut st = self.lock();
        let mut g = Graph::new();
        for l in &st.labels[..self.label_count] {
            g.intern_label(l);
        }
        let nps = st.nodes_per_segment as u64;
        let seg_count = self.node_count.div_ceil(nps);
        let mut segments = Vec::with_capacity(seg_count as usize);
        for seg in 0..seg_count {
            let bytes = st
                .read_segment(SegKey::Nodes(seg as u32), self.epoch)?
                .ok_or_else(|| corrupt(0, format!("missing node segment {seg}")))?;
            let mut recs = decode_nodes(&bytes)?;
            // A snapshot may see a shorter prefix of the final segment
            // than its newest version holds.
            let visible = (self.node_count - seg * nps).min(nps) as usize;
            recs.truncate(visible);
            for rec in &recs {
                match &rec.name {
                    Some(n) => {
                        g.add_named_node(n);
                    }
                    None => {
                        g.add_node();
                    }
                }
            }
            segments.push(recs);
        }
        for (seg, recs) in segments.iter().enumerate() {
            for (i, rec) in recs.iter().enumerate() {
                let from = Oid::from_index(seg * nps as usize + i);
                for (l, to) in &rec.edges {
                    g.add_edge(from, Label::from_index(*l as usize), to.clone());
                }
            }
        }
        for cid in 0..self.collection_count as u32 {
            let name = st.collections[cid as usize].clone();
            let gcid = g.intern_collection(&name);
            if let Some(bytes) = st.read_segment(SegKey::Collection(cid), self.epoch)? {
                for m in decode_members(&bytes)? {
                    g.collect(gcid, m);
                }
            }
        }
        Ok(g)
    }
}

impl Drop for PagedSnapshot {
    fn drop(&mut self) {
        // A poisoned mutex means a writer panicked; skip retirement
        // rather than double-panic.
        if let Ok(mut st) = self.inner.state.lock() {
            st.readers.deregister(self.epoch);
            st.retire_versions();
        }
    }
}

// ---- read-only reopen-for-replay ------------------------------------
//
// A second process can rebuild the graph a paged store holds without
// taking the store's files for writing: read the manifest's consistent
// cut with raw page reads (never through a buffer pool, whose evictions
// write), then apply the WAL's post-checkpoint deltas in memory. Shadow
// paging makes the concurrent read safe — a live writer never
// overwrites a page the durable manifest references — and the
// generation stamps shared by manifest and WAL detect the one unsafe
// window (a checkpoint landing mid-read), which is simply retried.
// This is how cluster shard workers recover after a crash: full replay
// on start, then WAL-suffix catch-up per delta.

/// A read-only materialization of a paged store's committed state.
#[derive(Debug)]
pub struct ReplayedStore {
    /// The store's graph: checkpoint cut plus every complete WAL delta.
    pub graph: Graph,
    /// The manifest generation the replay observed.
    pub generation: u64,
    /// WAL deltas applied on top of the checkpoint cut.
    pub wal_deltas: u64,
}

/// Replays the committed state of the paged store in `dir` read-only on
/// the real filesystem. See [`replay_committed_with`].
pub fn replay_committed(dir: &Path) -> Result<ReplayedStore, RepoError> {
    replay_committed_with(&RealVfs, dir)
}

/// Replays the committed state of the paged store in `dir` read-only:
/// no file is created, written, or truncated, so a live [`PagedRepo`]
/// in another process keeps committing concurrently. A torn WAL tail is
/// ignored (its delta never committed); a checkpoint racing the read is
/// detected by generation mismatch and retried a few times.
pub fn replay_committed_with(vfs: &dyn Vfs, dir: &Path) -> Result<ReplayedStore, RepoError> {
    let mut last = None;
    for _ in 0..5 {
        match replay_committed_once(vfs, dir) {
            Ok(Some(r)) => return Ok(r),
            // The manifest advanced between our manifest and WAL reads.
            Ok(None) => continue,
            // A checkpoint freed and reused pages under the read; the
            // self-identifying page format caught it. Retry from the new
            // manifest.
            Err(e @ RepoError::Corrupt { .. }) => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        corrupt(0, "replay_committed: manifest generation kept advancing")
    }))
}

/// The WAL deltas currently committed past the checkpoint of the store
/// in `dir`, with the generation they extend — the cheap catch-up read
/// a replica performs per delta (the full replay only on restart). A
/// torn trailing record is ignored, not an error: its commit never
/// completed, and the writer will retry or truncate it.
pub fn committed_wal_deltas(dir: &Path) -> Result<(u64, Vec<GraphDelta>), RepoError> {
    committed_wal_deltas_with(&RealVfs, dir)
}

/// See [`committed_wal_deltas`].
pub fn committed_wal_deltas_with(
    vfs: &dyn Vfs,
    dir: &Path,
) -> Result<(u64, Vec<GraphDelta>), RepoError> {
    let report = wal::replay_report_with(vfs, &dir.join(WAL_FILE))?;
    if report.torn_header {
        return Ok((0, Vec::new()));
    }
    Ok((report.generation, report.deltas))
}

fn replay_committed_once(vfs: &dyn Vfs, dir: &Path) -> Result<Option<ReplayedStore>, RepoError> {
    let m = read_manifest(vfs, &dir.join(MANIFEST_FILE))?;
    let page_size = m.page_size as usize;
    let mut pages = vfs.open_rw(&dir.join(PAGES_FILE))?;
    let read_segment = |file: &mut Box<dyn crate::vfs::VfsRandomFile>,
                        entry: &(SegKey, u64, Vec<u32>)|
     -> Result<Vec<u8>, RepoError> {
        let (key, len, page_nos) = entry;
        let mut bytes = Vec::with_capacity(*len as usize);
        for &p in page_nos {
            let mut buf = vec![0u8; page_size];
            let mut got = 0usize;
            while got < page_size {
                let n = file.read_at(&mut buf[got..], p as u64 * page_size as u64 + got as u64)?;
                if n == 0 {
                    return Err(corrupt(
                        p as u64 * page_size as u64,
                        format!("page {p} of segment {key:?} truncated"),
                    ));
                }
                got += n;
            }
            bytes.extend_from_slice(page::decode_page(&buf, p, page_size)?.payload);
        }
        if bytes.len() < *len as usize {
            return Err(corrupt(
                0,
                format!("segment {key:?} reassembled short: {} of {len}", bytes.len()),
            ));
        }
        bytes.truncate(*len as usize);
        Ok(bytes)
    };

    // The checkpoint cut, assembled exactly as PagedSnapshot::materialize
    // does: labels in intern order, node segments truncated to the
    // visible count, then edges, then collections in creation order.
    let mut catalog = Catalog::default();
    for entry in &m.entries {
        if entry.0 == SegKey::Catalog {
            catalog = decode_catalog(&read_segment(&mut pages, entry)?)?;
        }
    }
    let mut g = Graph::new();
    for l in &catalog.labels {
        g.intern_label(l);
    }
    let nps = m.nodes_per_segment as u64;
    let seg_count = catalog.node_count.div_ceil(nps);
    let mut segments: Vec<Vec<NodeRec>> = Vec::with_capacity(seg_count as usize);
    for seg in 0..seg_count {
        let entry = m
            .entries
            .iter()
            .find(|(k, _, _)| *k == SegKey::Nodes(seg as u32))
            .ok_or_else(|| corrupt(0, format!("missing node segment {seg}")))?;
        let mut recs = decode_nodes(&read_segment(&mut pages, entry)?)?;
        let visible = (catalog.node_count - seg * nps).min(nps) as usize;
        recs.truncate(visible);
        for rec in &recs {
            match &rec.name {
                Some(n) => {
                    g.add_named_node(n);
                }
                None => {
                    g.add_node();
                }
            }
        }
        segments.push(recs);
    }
    for (seg, recs) in segments.iter().enumerate() {
        for (i, rec) in recs.iter().enumerate() {
            let from = Oid::from_index(seg * nps as usize + i);
            for (l, to) in &rec.edges {
                g.add_edge(from, Label::from_index(*l as usize), to.clone());
            }
        }
    }
    for (cid, name) in catalog.collections.iter().enumerate() {
        let gcid = g.intern_collection(name);
        if let Some(entry) = m
            .entries
            .iter()
            .find(|(k, _, _)| *k == SegKey::Collection(cid as u32))
        {
            for member in decode_members(&read_segment(&mut pages, entry)?)? {
                g.collect(gcid, member);
            }
        }
    }
    drop(pages);

    // Post-checkpoint deltas from the WAL. Older generation (or torn
    // header): a checkpoint completed after the log was written — the
    // cut above already holds those deltas. Newer: the manifest advanced
    // between our two reads — retry from the fresh manifest.
    let report = wal::replay_report_with(vfs, &dir.join(WAL_FILE))?;
    let deltas = if report.torn_header || report.generation < m.generation {
        Vec::new()
    } else if report.generation > m.generation {
        return Ok(None);
    } else {
        report.deltas
    };
    let wal_deltas = deltas.len() as u64;
    for delta in &deltas {
        delta.apply(&mut g).map_err(|e| {
            corrupt(0, format!("committed wal delta does not apply: {e}"))
        })?;
    }
    Ok(Some(ReplayedStore {
        graph: g,
        generation: m.generation,
        wal_deltas,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("strudel-pager-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_cfg() -> PagerConfig {
        PagerConfig {
            page_size: 128,
            pool_pages: 4,
            nodes_per_segment: 4,
        }
    }

    /// A little site: named and anonymous nodes, values and node edges,
    /// two collections, plus some churn (edge removal, uncollect).
    fn build_deltas() -> Vec<GraphDelta> {
        let mut out = Vec::new();
        let mut d = GraphDelta::new();
        d.add_node(Some("root"));
        d.add_node(Some("alice"));
        d.add_node(None);
        out.push(d);
        let mut d = GraphDelta::new();
        d.add_edge(Oid::from_index(0), "title", Value::string("Strudel"));
        d.add_edge(Oid::from_index(0), "author", Value::Node(Oid::from_index(1)));
        d.add_edge(Oid::from_index(1), "age", Value::Int(30));
        d.collect("Pages", Value::Node(Oid::from_index(0)));
        d.collect("People", Value::Node(Oid::from_index(1)));
        out.push(d);
        let mut d = GraphDelta::new();
        for i in 0..20 {
            d.add_node(Some(&format!("n{i}")));
        }
        out.push(d);
        let mut d = GraphDelta::new();
        for i in 3..23u64 {
            d.add_edge(
                Oid::from_index(i as usize),
                "link",
                Value::Node(Oid::from_index(((i + 1) % 23) as usize)),
            );
        }
        d.remove_edge(Oid::from_index(1), "age", Value::Int(30));
        d.collect("Pages", Value::Node(Oid::from_index(3)));
        d.uncollect("Pages", Value::Node(Oid::from_index(3)));
        out.push(d);
        out
    }

    fn shadow_of(deltas: &[GraphDelta]) -> Graph {
        let mut g = Graph::new();
        for d in deltas {
            d.apply(&mut g).unwrap();
        }
        g
    }

    fn graph_bytes(g: &Graph) -> Vec<u8> {
        let mut buf = Cursor::new(Vec::new());
        crate::snapshot::save_graph(g, &mut buf).unwrap();
        buf.into_inner()
    }

    #[test]
    fn paged_store_matches_shadow_graph_byte_for_byte() {
        let dir = tmp_dir("shadow");
        let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
        let deltas = build_deltas();
        for d in &deltas {
            repo.apply_delta(d).unwrap();
        }
        let shadow = shadow_of(&deltas);
        let got = repo.snapshot().materialize().unwrap();
        assert_eq!(graph_bytes(&got), graph_bytes(&shadow));
    }

    #[test]
    fn reopen_replays_the_wal() {
        let dir = tmp_dir("reopen");
        let deltas = build_deltas();
        {
            let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
            for d in &deltas {
                repo.apply_delta(d).unwrap();
            }
        }
        let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
        let shadow = shadow_of(&deltas);
        let got = repo.snapshot().materialize().unwrap();
        assert_eq!(graph_bytes(&got), graph_bytes(&shadow));
        assert_eq!(repo.node_count(), shadow.node_count() as u64);
    }

    #[test]
    fn checkpoint_bumps_the_generation_and_survives_reopen() {
        let dir = tmp_dir("ckpt");
        let deltas = build_deltas();
        let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
        for d in &deltas[..2] {
            repo.apply_delta(d).unwrap();
        }
        repo.checkpoint().unwrap();
        assert_eq!(repo.generation(), 1);
        for d in &deltas[2..] {
            repo.apply_delta(d).unwrap();
        }
        drop(repo);
        let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
        assert_eq!(repo.generation(), 1);
        let got = repo.snapshot().materialize().unwrap();
        assert_eq!(graph_bytes(&got), graph_bytes(&shadow_of(&deltas)));
    }

    #[test]
    fn read_only_replay_matches_live_store_while_it_stays_open() {
        let dir = tmp_dir("ro-replay");
        let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
        let deltas = build_deltas();
        for d in &deltas {
            repo.apply_delta(d).unwrap();
        }
        // Replay concurrently with the live writer — no close, no lock.
        let replayed = replay_committed(&dir).unwrap();
        assert_eq!(replayed.generation, 0);
        assert_eq!(replayed.wal_deltas, deltas.len() as u64);
        assert_eq!(
            graph_bytes(&replayed.graph),
            graph_bytes(&shadow_of(&deltas))
        );
        // The live store is untouched by the read-only pass.
        let got = repo.snapshot().materialize().unwrap();
        assert_eq!(graph_bytes(&got), graph_bytes(&shadow_of(&deltas)));
    }

    #[test]
    fn read_only_replay_after_checkpoint_reads_the_cut_plus_wal_suffix() {
        let dir = tmp_dir("ro-ckpt");
        let deltas = build_deltas();
        let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
        for d in &deltas[..2] {
            repo.apply_delta(d).unwrap();
        }
        repo.checkpoint().unwrap();
        for d in &deltas[2..] {
            repo.apply_delta(d).unwrap();
        }
        let replayed = replay_committed(&dir).unwrap();
        assert_eq!(replayed.generation, 1);
        assert_eq!(replayed.wal_deltas, (deltas.len() - 2) as u64);
        assert_eq!(
            graph_bytes(&replayed.graph),
            graph_bytes(&shadow_of(&deltas))
        );
    }

    #[test]
    fn read_only_replay_of_a_fresh_store_is_empty() {
        let dir = tmp_dir("ro-empty");
        let _repo = PagedRepo::open(&dir, small_cfg()).unwrap();
        let replayed = replay_committed(&dir).unwrap();
        assert_eq!(replayed.wal_deltas, 0);
        assert_eq!(replayed.graph.node_count(), 0);
    }

    #[test]
    fn committed_wal_deltas_exposes_the_catchup_suffix() {
        let dir = tmp_dir("ro-catchup");
        let deltas = build_deltas();
        let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
        for d in &deltas[..2] {
            repo.apply_delta(d).unwrap();
        }
        repo.checkpoint().unwrap();
        let (generation, suffix) = committed_wal_deltas(&dir).unwrap();
        assert_eq!(generation, 1);
        assert!(suffix.is_empty());
        for d in &deltas[2..] {
            repo.apply_delta(d).unwrap();
        }
        let (generation, suffix) = committed_wal_deltas(&dir).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(suffix.len(), deltas.len() - 2);
        // The suffix applies on top of a replica that replayed the cut.
        let mut g = shadow_of(&deltas[..2]);
        for d in &suffix {
            d.apply(&mut g).unwrap();
        }
        assert_eq!(graph_bytes(&g), graph_bytes(&shadow_of(&deltas)));
    }

    #[test]
    fn snapshots_are_isolated_from_later_commits() {
        let dir = tmp_dir("mvcc");
        let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
        let deltas = build_deltas();
        repo.apply_delta(&deltas[0]).unwrap();
        repo.apply_delta(&deltas[1]).unwrap();
        let old = repo.snapshot();
        let old_bytes = graph_bytes(&old.materialize().unwrap());
        for d in &deltas[2..] {
            repo.apply_delta(d).unwrap();
        }
        // The old snapshot still reads its epoch...
        assert_eq!(graph_bytes(&old.materialize().unwrap()), old_bytes);
        assert_eq!(old.node_count(), 3);
        // ...while a fresh one sees everything.
        let new = repo.snapshot();
        assert_eq!(graph_bytes(&new.materialize().unwrap()), graph_bytes(&shadow_of(&deltas)));
        // While the old reader is live, some segment must keep two
        // versions; dropping every reader retires down to one each.
        {
            let st = repo.lock();
            let live = st.versions.all().count();
            let current = st.versions.current(st.epoch).count();
            assert!(live > current, "old snapshot should pin old versions");
        }
        drop(old);
        drop(new);
        let st = repo.lock();
        assert_eq!(
            st.versions.all().count(),
            st.versions.current(st.epoch).count(),
            "no readers left: only current versions may survive"
        );
    }

    #[test]
    fn invalid_deltas_change_nothing() {
        let dir = tmp_dir("invalid");
        let repo = PagedRepo::open(&dir, small_cfg()).unwrap();
        let deltas = build_deltas();
        for d in &deltas {
            repo.apply_delta(d).unwrap();
        }
        let before = graph_bytes(&repo.snapshot().materialize().unwrap());
        let epoch = repo.epoch();

        // Unknown node.
        let mut bad = GraphDelta::new();
        bad.add_edge(Oid::from_index(999), "x", Value::Int(1));
        assert!(repo.apply_delta(&bad).is_err());
        // Missing edge.
        let mut bad = GraphDelta::new();
        bad.remove_edge(Oid::from_index(0), "nope", Value::Int(1));
        assert!(repo.apply_delta(&bad).is_err());
        // Missing member.
        let mut bad = GraphDelta::new();
        bad.uncollect("Pages", Value::Int(77));
        assert!(repo.apply_delta(&bad).is_err());

        assert_eq!(repo.epoch(), epoch, "failed deltas must not commit");
        assert_eq!(graph_bytes(&repo.snapshot().materialize().unwrap()), before);
    }

    #[test]
    fn tiny_pool_still_serves_a_larger_site() {
        let dir = tmp_dir("tiny");
        let cfg = PagerConfig {
            page_size: 128,
            pool_pages: 2,
            nodes_per_segment: 2,
        };
        let repo = PagedRepo::open(&dir, cfg).unwrap();
        let mut d = GraphDelta::new();
        for i in 0..64 {
            d.add_node(Some(&format!("page{i}")));
        }
        repo.apply_delta(&d).unwrap();
        let mut d = GraphDelta::new();
        for i in 0..64u64 {
            d.add_edge(
                Oid::from_index(i as usize),
                "next",
                Value::Node(Oid::from_index(((i + 1) % 64) as usize)),
            );
        }
        repo.apply_delta(&d).unwrap();
        let snap = repo.snapshot();
        for i in 0..64u64 {
            assert_eq!(snap.node_name(i).unwrap().as_deref(), Some(format!("page{i}").as_str()));
            assert_eq!(snap.edges(i).unwrap().len(), 1);
            assert_eq!(snap.edges_in(i).unwrap().len(), 1);
        }
        let (_, _, _, _, evictions, _) = repo.pool_stats();
        assert!(evictions > 0, "a 2-frame pool over 64 nodes must evict");
    }

    #[test]
    fn bulk_load_round_trips_a_graph() {
        let dir = tmp_dir("bulk");
        let mut g = Graph::new();
        let root = g.add_named_node("root");
        for i in 0..40 {
            let n = g.add_named_node(&format!("d{i}"));
            g.add_edge_str(root, "child", Value::Node(n));
            g.add_edge_str(n, "idx", Value::Int(i));
            g.collect_str("All", Value::Node(n));
        }
        g.intern_collection("Empty");
        let repo = PagedRepo::bulk_load_with(Arc::new(RealVfs), &dir, small_cfg(), &g).unwrap();
        assert!(repo.generation() >= 1, "bulk load ends in a checkpoint");
        let got = repo.snapshot().materialize().unwrap();
        assert_eq!(graph_bytes(&got), graph_bytes(&g));
    }

    #[test]
    fn manifest_round_trips_and_rejects_corruption() {
        let m = Manifest {
            generation: 3,
            base_lsn: 99,
            page_size: 4096,
            nodes_per_segment: 16,
            next_page: 12,
            entries: vec![
                (SegKey::Catalog, 10, vec![0]),
                (SegKey::Nodes(2), 5000, vec![3, 4, 7]),
                (SegKey::Collection(0), 0, vec![]),
            ],
        };
        let bytes = encode_manifest(&m);
        let back = decode_manifest(&bytes).unwrap();
        assert_eq!(back.generation, 3);
        assert_eq!(back.base_lsn, 99);
        assert_eq!(back.next_page, 12);
        assert_eq!(back.entries, m.entries);
        for cut in 0..bytes.len() {
            assert!(decode_manifest(&bytes[..cut]).is_err(), "truncation at {cut}");
        }
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x40;
            assert!(decode_manifest(&bad).is_err(), "flip at byte {byte} slipped through");
        }
    }
}
