//! The on-disk page format.
//!
//! Every page in the page file is a fixed-size block:
//!
//! ```text
//! page    := magic:u16le kind:u8 reserved:u8 page_no:u32le lsn:u64le
//!            len:u32le crc:u32le payload[len] zero-pad to page_size
//! crc     := crc32(bytes[0..20])  ‖  crc32 continues over payload
//! ```
//!
//! The header carries the page's own number (catching misdirected I/O),
//! the LSN of the WAL record that last touched it (the write-ahead
//! coupling: a page may not be flushed until its LSN is durable), and a
//! CRC32 over header-and-payload so a torn or short page read is detected
//! rather than trusted. Decoding is strictly bounds-checked and never
//! panics — hostile bytes come back as [`RepoError::Corrupt`].

use crate::codec::corrupt;
use crate::crc::Crc32;
use crate::RepoError;

/// Magic prefix of every page ("SP" little-endian).
pub const PAGE_MAGIC: u16 = 0x5053;
/// Bytes of header before the payload.
pub const PAGE_HEADER_LEN: usize = 24;
/// The only page kind so far: graph data.
pub const KIND_DATA: u8 = 1;
/// The smallest page size the pager accepts — headers plus a useful
/// payload sliver.
pub const MIN_PAGE_SIZE: usize = 64;

/// Usable payload bytes per page of `page_size`.
pub fn payload_capacity(page_size: usize) -> usize {
    page_size - PAGE_HEADER_LEN
}

/// Encodes one page image of exactly `page_size` bytes.
///
/// # Panics
///
/// Panics if the payload exceeds [`payload_capacity`] or `page_size` is
/// below [`MIN_PAGE_SIZE`] — both are internal invariants of the buffer
/// pool, not input-dependent conditions.
pub fn encode_page(page_no: u32, lsn: u64, payload: &[u8], page_size: usize) -> Vec<u8> {
    assert!(page_size >= MIN_PAGE_SIZE, "page size below minimum");
    assert!(
        payload.len() <= payload_capacity(page_size),
        "payload overflows page"
    );
    let mut buf = vec![0u8; page_size];
    buf[0..2].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
    buf[2] = KIND_DATA;
    buf[3] = 0;
    buf[4..8].copy_from_slice(&page_no.to_le_bytes());
    buf[8..16].copy_from_slice(&lsn.to_le_bytes());
    buf[16..20].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    buf[PAGE_HEADER_LEN..PAGE_HEADER_LEN + payload.len()].copy_from_slice(payload);
    let mut h = Crc32::new();
    h.update(&buf[0..20]);
    h.update(payload);
    buf[20..24].copy_from_slice(&h.finish().to_le_bytes());
    buf
}

/// A decoded page: its LSN and a view of its payload.
#[derive(Debug, PartialEq, Eq)]
pub struct PageView<'a> {
    /// The WAL position that last wrote this page.
    pub lsn: u64,
    /// The payload bytes (without padding).
    pub payload: &'a [u8],
}

/// Decodes a page image, verifying size, magic, kind, self-identifying
/// page number, payload bounds, and checksum. Any mismatch — including a
/// short buffer from a torn or short read — is a [`RepoError::Corrupt`];
/// decoding never panics.
pub fn decode_page(
    buf: &[u8],
    expect_page_no: u32,
    page_size: usize,
) -> Result<PageView<'_>, RepoError> {
    let base = expect_page_no as u64 * page_size as u64;
    if buf.len() != page_size {
        return Err(corrupt(
            base,
            format!("page is {} bytes, expected {page_size}", buf.len()),
        ));
    }
    if buf[0..2] != PAGE_MAGIC.to_le_bytes() {
        return Err(corrupt(base, "bad page magic"));
    }
    if buf[2] != KIND_DATA {
        return Err(corrupt(base, format!("unknown page kind {}", buf[2])));
    }
    let page_no = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if page_no != expect_page_no {
        return Err(corrupt(
            base,
            format!("misdirected page: header says {page_no}, expected {expect_page_no}"),
        ));
    }
    let lsn = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    let len = u32::from_le_bytes(buf[16..20].try_into().unwrap()) as usize;
    if len > page_size - PAGE_HEADER_LEN {
        return Err(corrupt(base, format!("payload length {len} overflows page")));
    }
    let stored_crc = u32::from_le_bytes(buf[20..24].try_into().unwrap());
    let payload = &buf[PAGE_HEADER_LEN..PAGE_HEADER_LEN + len];
    let mut h = Crc32::new();
    h.update(&buf[0..20]);
    h.update(payload);
    if h.finish() != stored_crc {
        return Err(corrupt(base, "page checksum mismatch"));
    }
    Ok(PageView { lsn, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_round_trips() {
        let img = encode_page(7, 42, b"hello pages", 128);
        assert_eq!(img.len(), 128);
        let view = decode_page(&img, 7, 128).unwrap();
        assert_eq!(view.lsn, 42);
        assert_eq!(view.payload, b"hello pages");
    }

    #[test]
    fn empty_payload_round_trips() {
        let img = encode_page(0, 0, b"", MIN_PAGE_SIZE);
        let view = decode_page(&img, 0, MIN_PAGE_SIZE).unwrap();
        assert_eq!(view.payload, b"");
    }

    #[test]
    fn misdirected_page_is_rejected() {
        let img = encode_page(7, 1, b"x", 128);
        assert!(matches!(
            decode_page(&img, 8, 128),
            Err(RepoError::Corrupt { .. })
        ));
    }

    #[test]
    fn every_single_bit_flip_in_covered_bytes_is_caught() {
        let payload = b"payload bytes";
        let img = encode_page(3, 9, payload, 128);
        // The checksum covers header + payload; padding is dead space.
        for byte in 0..PAGE_HEADER_LEN + payload.len() {
            let mut bad = img.clone();
            bad[byte] ^= 0x10;
            assert!(
                decode_page(&bad, 3, 128).is_err(),
                "flip at byte {byte} slipped through"
            );
        }
    }

    #[test]
    fn short_buffer_is_corrupt_not_panic() {
        let img = encode_page(3, 9, b"abc", 128);
        for cut in 0..img.len() {
            assert!(decode_page(&img[..cut], 3, 128).is_err());
        }
    }
}
