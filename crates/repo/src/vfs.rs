//! Filesystem abstraction behind the WAL and snapshots.
//!
//! All durable I/O in this crate goes through the [`Vfs`] trait so the
//! crash-torture harness can swap the real filesystem for a deterministic
//! [`FaultVfs`] that fails, tears, or short-reads the Nth operation. The
//! production implementation is [`RealVfs`]; both are `Send + Sync` so a
//! `Database` holding an `Arc<dyn Vfs>` stays shareable.
//!
//! The fault model is a *process* crash, not media corruption: an
//! operation that returned `Ok` is visible in the file afterwards, the
//! faulted operation itself is either absent ([`FaultMode::Fail`]) or a
//! strict prefix ([`FaultMode::Partial`]), and — when armed as a crash —
//! every subsequent operation fails as well, because a crashed process
//! issues no more I/O.

use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// An open file handle: sequential writes plus an explicit sync.
pub trait VfsFile: Send + Sync + Debug {
    /// Writes all of `buf` (or fails having written a prefix).
    fn write(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Forces written data to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// A file open for page-granular random access, as the buffer pool needs:
/// positioned reads and writes plus an explicit sync. Offsets past the
/// current end extend the file (the pager allocates pages by growing it).
pub trait VfsRandomFile: Send + Sync + Debug {
    /// Reads up to `buf.len()` bytes at `offset`, returning how many were
    /// read (fewer only at end-of-file — or under an injected short read,
    /// which page checksums must catch).
    fn read_at(&mut self, buf: &mut [u8], offset: u64) -> io::Result<usize>;
    /// Writes all of `buf` at `offset` (or fails having written a prefix).
    fn write_at(&mut self, buf: &[u8], offset: u64) -> io::Result<()>;
    /// Forces written data to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// The filesystem operations the storage layer needs.
pub trait Vfs: Send + Sync + Debug {
    /// Creates (truncating) `path` for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing `path` for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens `path` for random-access reads and writes, creating it when
    /// missing (never truncating). All pager page I/O goes through the
    /// returned handle so fault injection covers it.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsRandomFile>>;
    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// The file's length in bytes, from metadata (never fault-injected:
    /// recovery uses it to detect short reads).
    fn len(&self, path: &Path) -> io::Result<u64>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Truncates `path` to `len` bytes.
    fn set_len(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Syncs a directory, making renames within it durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

#[derive(Debug)]
struct RealFile(File);

impl VfsFile for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

#[derive(Debug)]
struct RealRandomFile(File);

impl VfsRandomFile for RealRandomFile {
    fn read_at(&mut self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        self.0.seek(SeekFrom::Start(offset))?;
        let mut total = 0;
        while total < buf.len() {
            let n = self.0.read(&mut buf[total..])?;
            if n == 0 {
                break; // end of file
            }
            total += n;
        }
        Ok(total)
    }
    fn write_at(&mut self, buf: &[u8], offset: u64) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(offset))?;
        self.0.write_all(buf)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl Vfs for RealVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(File::create(path)?)))
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(
            OpenOptions::new().append(true).open(path)?,
        )))
    }
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsRandomFile>> {
        Ok(Box::new(RealRandomFile(
            OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(path)?,
        )))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        OpenOptions::new().write(true).open(path)?.set_len(len)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Directory handles aren't openable everywhere; best-effort open,
        // but a failing fsync on an opened handle is a real error.
        match File::open(path) {
            Ok(f) => f.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

/// What an injected fault does to the operation it lands on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation fails outright with no effect on the file.
    Fail,
    /// A write persists only its first `n` bytes (a torn write, clamped to
    /// a strict prefix) and then fails; a read silently returns `n` fewer
    /// bytes than the file holds (a short read, at least one byte
    /// dropped); any other operation fails outright.
    Partial(usize),
}

#[derive(Debug)]
struct FaultState {
    ops: u64,
    arm_at: Option<u64>,
    mode: FaultMode,
    /// When true (a crash), every operation after the fault fails too.
    halt_after_fault: bool,
    fired: bool,
}

/// A deterministic fault-injecting [`Vfs`] over the real filesystem.
///
/// Every gated operation (write, sync, read, rename, set_len, remove,
/// create, open, sync_dir) increments an operation counter; arming the
/// vfs at counter value `k` makes the `k`-th operation fault. The two arm
/// flavors differ in what happens *after* the fault: [`FaultVfs::arm_crash`]
/// simulates a process crash (all later operations fail until rearmed),
/// [`FaultVfs::arm_fault`] simulates one transient I/O error (later
/// operations succeed). Tests derive `k` and the [`FaultMode`] from
/// `strudel-prng` seeds, so every torture schedule is reproducible.
#[derive(Clone, Debug)]
pub struct FaultVfs {
    inner: RealVfs,
    state: Arc<Mutex<FaultState>>,
}

impl Default for FaultVfs {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn VfsFile>,
    state: Arc<Mutex<FaultState>>,
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

/// Consumes one operation slot: `Ok(None)` to proceed normally,
/// `Ok(Some(mode))` when this operation is the armed fault.
fn gate(state: &Arc<Mutex<FaultState>>, what: &str) -> io::Result<Option<FaultMode>> {
    let mut s = state.lock().unwrap();
    if s.fired && s.halt_after_fault {
        return Err(injected("process crashed"));
    }
    let op = s.ops;
    s.ops += 1;
    if s.arm_at == Some(op) {
        s.fired = true;
        if matches!(s.mode, FaultMode::Partial(_)) && (what == "write" || what == "read") {
            return Ok(Some(s.mode));
        }
        return Err(injected(what));
    }
    Ok(None)
}

impl VfsFile for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<()> {
        match gate(&self.state, "write")? {
            None => self.inner.write(buf),
            Some(FaultMode::Fail) => unreachable!("gate returns Err for Fail"),
            Some(FaultMode::Partial(n)) => {
                // A torn write is a strict prefix: a fully persisted write
                // that merely failed to report is indistinguishable from a
                // committed one, which would break the shadow oracle.
                let keep = n.min(buf.len().saturating_sub(1));
                self.inner.write(&buf[..keep])?;
                Err(injected("torn write"))
            }
        }
    }
    fn sync(&mut self) -> io::Result<()> {
        match gate(&self.state, "sync")? {
            None => self.inner.sync(),
            Some(_) => Err(injected("sync")),
        }
    }
}

#[derive(Debug)]
struct FaultRandomFile {
    inner: Box<dyn VfsRandomFile>,
    state: Arc<Mutex<FaultState>>,
}

impl VfsRandomFile for FaultRandomFile {
    fn read_at(&mut self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        match gate(&self.state, "read")? {
            None => self.inner.read_at(buf, offset),
            Some(FaultMode::Fail) => unreachable!("gate returns Err for Fail"),
            Some(FaultMode::Partial(n)) => {
                // A silent short read, like Vfs::read: at least one byte is
                // dropped and the caller must notice via the page checksum.
                let got = self.inner.read_at(buf, offset)?;
                Ok(got.saturating_sub(n.max(1)))
            }
        }
    }
    fn write_at(&mut self, buf: &[u8], offset: u64) -> io::Result<()> {
        match gate(&self.state, "write")? {
            None => self.inner.write_at(buf, offset),
            Some(FaultMode::Fail) => unreachable!("gate returns Err for Fail"),
            Some(FaultMode::Partial(n)) => {
                // Torn page write: a strict prefix lands, then the error.
                let keep = n.min(buf.len().saturating_sub(1));
                self.inner.write_at(&buf[..keep], offset)?;
                Err(injected("torn page write"))
            }
        }
    }
    fn sync(&mut self) -> io::Result<()> {
        match gate(&self.state, "sync")? {
            None => self.inner.sync(),
            Some(_) => Err(injected("sync")),
        }
    }
}

impl FaultVfs {
    /// A fault vfs with nothing armed: counts operations, injects nothing.
    pub fn new() -> Self {
        FaultVfs {
            inner: RealVfs,
            state: Arc::new(Mutex::new(FaultState {
                ops: 0,
                arm_at: None,
                mode: FaultMode::Fail,
                halt_after_fault: true,
                fired: false,
            })),
        }
    }

    /// Arms a crash: operation number `at` (0-based) faults with `mode`,
    /// and every operation after it fails too.
    pub fn arm_crash(&self, at: u64, mode: FaultMode) {
        self.arm(at, mode, true);
    }

    /// Arms one transient fault: operation `at` faults with `mode`, later
    /// operations proceed normally.
    pub fn arm_fault(&self, at: u64, mode: FaultMode) {
        self.arm(at, mode, false);
    }

    fn arm(&self, at: u64, mode: FaultMode, halt: bool) {
        let mut s = self.state.lock().unwrap();
        s.arm_at = Some(at);
        s.mode = mode;
        s.halt_after_fault = halt;
        s.fired = false;
    }

    /// Disarms any pending or fired fault; the counter keeps running.
    pub fn disarm(&self) {
        let mut s = self.state.lock().unwrap();
        s.arm_at = None;
        s.fired = false;
    }

    /// How many gated operations have been issued so far.
    pub fn op_count(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// Whether the armed fault has fired.
    pub fn fired(&self) -> bool {
        self.state.lock().unwrap().fired
    }

    fn file(&self, inner: Box<dyn VfsFile>) -> Box<dyn VfsFile> {
        Box::new(FaultFile {
            inner,
            state: Arc::clone(&self.state),
        })
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        match gate(&self.state, "create")? {
            None => Ok(self.file(self.inner.create(path)?)),
            Some(_) => Err(injected("create")),
        }
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        match gate(&self.state, "open_append")? {
            None => Ok(self.file(self.inner.open_append(path)?)),
            Some(_) => Err(injected("open_append")),
        }
    }
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsRandomFile>> {
        match gate(&self.state, "open_rw")? {
            None => Ok(Box::new(FaultRandomFile {
                inner: self.inner.open_rw(path)?,
                state: Arc::clone(&self.state),
            })),
            Some(_) => Err(injected("open_rw")),
        }
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match gate(&self.state, "read")? {
            None => self.inner.read(path),
            Some(FaultMode::Fail) => unreachable!("gate returns Err for Fail"),
            Some(FaultMode::Partial(n)) => {
                let mut bytes = self.inner.read(path)?;
                let keep = bytes.len().saturating_sub(n.max(1));
                bytes.truncate(keep);
                Ok(bytes) // silent: the caller must notice via Vfs::len
            }
        }
    }
    fn len(&self, path: &Path) -> io::Result<u64> {
        self.inner.len(path) // metadata: never faulted
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match gate(&self.state, "rename")? {
            None => self.inner.rename(from, to),
            Some(_) => Err(injected("rename")),
        }
    }
    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        match gate(&self.state, "set_len")? {
            None => self.inner.set_len(path, len),
            Some(_) => Err(injected("set_len")),
        }
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match gate(&self.state, "remove_file")? {
            None => self.inner.remove_file(path),
            Some(_) => Err(injected("remove_file")),
        }
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path) // setup, not a durability boundary
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        match gate(&self.state, "sync_dir")? {
            None => self.inner.sync_dir(path),
            Some(_) => Err(injected("sync_dir")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("strudel-vfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn real_vfs_round_trip() {
        let dir = tmpdir("real");
        let path = dir.join("f");
        let v = RealVfs;
        let mut f = v.create(&path).unwrap();
        f.write(b"hello ").unwrap();
        f.write(b"world").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(v.read(&path).unwrap(), b"hello world");
        assert_eq!(v.len(&path).unwrap(), 11);
        let mut f = v.open_append(&path).unwrap();
        f.write(b"!").unwrap();
        drop(f);
        assert_eq!(v.read(&path).unwrap(), b"hello world!");
        v.set_len(&path, 5).unwrap();
        assert_eq!(v.read(&path).unwrap(), b"hello");
        let moved = dir.join("g");
        v.rename(&path, &moved).unwrap();
        assert!(!v.exists(&path));
        assert!(v.exists(&moved));
        v.sync_dir(&dir).unwrap();
        v.remove_file(&moved).unwrap();
        assert!(!v.exists(&moved));
    }

    #[test]
    fn crash_fault_fires_at_exact_op_and_halts() {
        let dir = tmpdir("crash");
        let v = FaultVfs::new();
        // op 0: create, op 1: write (faulted), then everything fails.
        v.arm_crash(1, FaultMode::Fail);
        let mut f = v.create(&dir.join("f")).unwrap();
        assert!(f.write(b"x").is_err());
        assert!(v.fired());
        assert!(f.write(b"y").is_err(), "halted after crash");
        assert!(v.create(&dir.join("g")).is_err(), "halted after crash");
        assert_eq!(std::fs::read(dir.join("f")).unwrap(), b"");
    }

    #[test]
    fn torn_write_keeps_strict_prefix() {
        let dir = tmpdir("torn");
        let v = FaultVfs::new();
        v.arm_fault(1, FaultMode::Partial(4));
        let mut f = v.create(&dir.join("f")).unwrap();
        assert!(f.write(b"abcdefgh").is_err());
        assert_eq!(std::fs::read(dir.join("f")).unwrap(), b"abcd");
        // Transient fault: later ops succeed.
        f.write(b"rest").unwrap();
        assert_eq!(std::fs::read(dir.join("f")).unwrap(), b"abcdrest");
    }

    #[test]
    fn torn_write_never_completes_fully() {
        let dir = tmpdir("torn-clamp");
        let v = FaultVfs::new();
        v.arm_fault(1, FaultMode::Partial(1000));
        let mut f = v.create(&dir.join("f")).unwrap();
        assert!(f.write(b"abc").is_err());
        assert_eq!(std::fs::read(dir.join("f")).unwrap(), b"ab");
    }

    #[test]
    fn short_read_is_silent_but_len_tells_the_truth() {
        let dir = tmpdir("short");
        let path = dir.join("f");
        std::fs::write(&path, b"0123456789").unwrap();
        let v = FaultVfs::new();
        v.arm_fault(0, FaultMode::Partial(3));
        let bytes = v.read(&path).unwrap();
        assert_eq!(bytes, b"0123456");
        assert_eq!(v.len(&path).unwrap(), 10, "metadata reveals the loss");
    }

    #[test]
    fn random_file_reads_and_writes_at_offsets() {
        let dir = tmpdir("rand");
        let path = dir.join("pages");
        let v = RealVfs;
        let mut f = v.open_rw(&path).unwrap();
        f.write_at(b"bbbb", 4).unwrap();
        f.write_at(b"aaaa", 0).unwrap();
        f.sync().unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(f.read_at(&mut buf, 4).unwrap(), 4);
        assert_eq!(&buf, b"bbbb");
        // Reading past the end is a short read, not an error.
        assert_eq!(f.read_at(&mut buf, 8).unwrap(), 0);
        // Reopening never truncates.
        drop(f);
        let mut f = v.open_rw(&path).unwrap();
        assert_eq!(f.read_at(&mut buf, 0).unwrap(), 4);
        assert_eq!(&buf, b"aaaa");
    }

    #[test]
    fn faulted_page_write_tears_into_a_prefix() {
        let dir = tmpdir("rand-torn");
        let v = FaultVfs::new();
        let mut f = v.open_rw(&dir.join("pages")).unwrap();
        f.write_at(b"01234567", 0).unwrap();
        v.arm_fault(v.op_count(), FaultMode::Partial(3));
        assert!(f.write_at(b"abcdefgh", 0).is_err());
        // Prefix of the new write landed; the old tail survives.
        assert_eq!(std::fs::read(dir.join("pages")).unwrap(), b"abc34567");
    }

    #[test]
    fn faulted_page_read_is_silently_short() {
        let dir = tmpdir("rand-short");
        let v = FaultVfs::new();
        let mut f = v.open_rw(&dir.join("pages")).unwrap();
        f.write_at(b"0123456789", 0).unwrap();
        v.arm_fault(v.op_count(), FaultMode::Partial(4));
        let mut buf = [0u8; 10];
        assert_eq!(f.read_at(&mut buf, 0).unwrap(), 6);
    }

    #[test]
    fn op_counting_and_disarm() {
        let dir = tmpdir("count");
        let v = FaultVfs::new();
        let mut f = v.create(&dir.join("f")).unwrap();
        f.write(b"a").unwrap();
        f.sync().unwrap();
        assert_eq!(v.op_count(), 3);
        v.arm_crash(3, FaultMode::Fail);
        assert!(f.write(b"b").is_err());
        v.disarm();
        f.write(b"c").unwrap();
        assert_eq!(std::fs::read(dir.join("f")).unwrap(), b"ac");
    }
}
