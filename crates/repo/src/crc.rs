//! CRC32 (IEEE 802.3 polynomial, reflected) for WAL frames and snapshot
//! bodies. Table-driven, built at compile time; no dependencies.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `bytes` (the common `crc32()` everyone means: IEEE polynomial,
/// reflected, init and final XOR `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Streaming CRC32, for checksumming discontiguous parts without copying.
pub struct Crc32(u32);

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Feeds more bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.0
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Crc32::new();
        h.update(b"1234");
        h.update(b"");
        h.update(b"56789");
        assert_eq!(h.finish(), crc32(b"123456789"));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}
