//! Binary graph snapshots.
//!
//! A snapshot is the full serialized state of a graph: label table, nodes
//! (with optional symbolic names), per-node edge lists, and collections.
//! The header carries a *generation counter* (which checkpoint produced
//! it — the WAL header records the generation it extends) and a CRC32 of
//! the body, so a damaged snapshot is refused instead of loaded:
//!
//! ```text
//! file := MAGIC version:u8 generation:u64le body_crc:u32le body
//! ```
//!
//! [`save_to_path_with`] writes durably: serialize to `snapshot.tmp` in a
//! single write, fsync it, atomically rename over `snapshot.bin`, then
//! fsync the directory. A crash at any point leaves either the old
//! snapshot or the new one — never a half-written file under the live
//! name. [`Database::checkpoint`] truncates the WAL only after all of
//! that has succeeded.
//!
//! [`Database::checkpoint`]: crate::Database::checkpoint

use crate::codec::{read_str, read_value, read_varint, write_str, write_value, write_varint};
use crate::crc::crc32;
use crate::vfs::{RealVfs, Vfs};
use crate::RepoError;
use std::io::{Read, Write};
use std::path::Path;
use strudel_graph::{Graph, Label, Oid};

const MAGIC: &[u8; 8] = b"STRUSNAP";
const VERSION: u8 = 2;
/// Magic, version, generation, and body checksum.
pub const HEADER_LEN: u64 = 8 + 1 + 8 + 4;

/// Serializes `graph` (with `generation` in the header) to `w`.
pub fn save_graph_gen(graph: &Graph, generation: u64, w: &mut impl Write) -> Result<(), RepoError> {
    let body = encode_body(graph)?;
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&generation.to_le_bytes())?;
    w.write_all(&crc32(&body).to_le_bytes())?;
    w.write_all(&body)?;
    Ok(())
}

/// [`save_graph_gen`] with generation 0 — for callers that only want the
/// serialization (tests, byte-equality oracles).
pub fn save_graph(graph: &Graph, w: &mut impl Write) -> Result<(), RepoError> {
    save_graph_gen(graph, 0, w)
}

fn encode_body(graph: &Graph) -> Result<Vec<u8>, RepoError> {
    let mut w = Vec::new();

    // Label table, in label order so indexes round-trip.
    write_varint(&mut w, graph.labels().len() as u64)?;
    for (_, name) in graph.labels().iter() {
        write_str(&mut w, name)?;
    }

    // Nodes with optional names.
    write_varint(&mut w, graph.node_count() as u64)?;
    for oid in graph.node_oids() {
        match graph.node_name(oid) {
            Some(n) => {
                w.push(1);
                write_str(&mut w, n)?;
            }
            None => w.push(0),
        }
    }

    // Edges, grouped by source node.
    for oid in graph.node_oids() {
        let edges = graph.edges(oid);
        write_varint(&mut w, edges.len() as u64)?;
        for e in edges {
            write_varint(&mut w, e.label.index() as u64)?;
            write_value(&mut w, &e.to)?;
        }
    }

    // Collections.
    write_varint(&mut w, graph.collection_count() as u64)?;
    for (cid, name) in graph.collections() {
        write_str(&mut w, name)?;
        let members = graph.members(cid);
        write_varint(&mut w, members.len() as u64)?;
        for m in members {
            write_value(&mut w, m)?;
        }
    }
    Ok(w)
}

/// Deserializes a graph and its generation from `r`, verifying the body
/// checksum before decoding anything.
pub fn load_graph_gen(r: &mut impl Read) -> Result<(Graph, u64), RepoError> {
    let mut header = [0u8; HEADER_LEN as usize];
    r.read_exact(&mut header)?;
    if &header[..8] != MAGIC {
        return Err(corrupt(8, "bad snapshot magic"));
    }
    if header[8] != VERSION {
        return Err(corrupt(9, format!("unsupported version {}", header[8])));
    }
    let generation = u64::from_le_bytes(header[9..17].try_into().unwrap());
    let stored_crc = u32::from_le_bytes(header[17..21].try_into().unwrap());
    let mut body = Vec::new();
    r.read_to_end(&mut body)?;
    let computed = crc32(&body);
    if computed != stored_crc {
        return Err(corrupt(
            HEADER_LEN,
            format!(
                "body checksum mismatch (stored {stored_crc:#010x}, computed {computed:#010x})"
            ),
        ));
    }
    let graph = decode_body(&body)?;
    Ok((graph, generation))
}

/// [`load_graph_gen`], discarding the generation.
pub fn load_graph(r: &mut impl Read) -> Result<Graph, RepoError> {
    Ok(load_graph_gen(r)?.0)
}

fn decode_body(body: &[u8]) -> Result<Graph, RepoError> {
    let r = &mut &body[..];
    let mut offset = HEADER_LEN;
    let mut g = Graph::new();

    let label_count = read_varint(r, &mut offset)? as usize;
    let mut labels: Vec<Label> = Vec::with_capacity(label_count);
    for _ in 0..label_count {
        let name = read_str(r, &mut offset)?;
        labels.push(g.intern_label(&name));
    }

    let node_count = read_varint(r, &mut offset)? as usize;
    for _ in 0..node_count {
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        offset += 1;
        match flag[0] {
            0 => {
                g.add_node();
            }
            1 => {
                let name = read_str(r, &mut offset)?;
                let before = g.node_count();
                g.add_named_node(&name);
                if g.node_count() == before {
                    return Err(corrupt(offset, format!("duplicate node name '{name}'")));
                }
            }
            other => return Err(corrupt(offset, format!("bad node flag {other}"))),
        }
    }

    for i in 0..node_count {
        let from = Oid::from_index(i);
        let edge_count = read_varint(r, &mut offset)? as usize;
        for _ in 0..edge_count {
            let label_idx = read_varint(r, &mut offset)? as usize;
            let label = *labels
                .get(label_idx)
                .ok_or_else(|| corrupt(offset, "edge label out of range"))?;
            let to = read_value(r, &mut offset)?;
            if let Some(o) = to.as_node() {
                if o.index() >= node_count {
                    return Err(corrupt(offset, "edge target out of range"));
                }
            }
            g.add_edge(from, label, to);
        }
    }

    let coll_count = read_varint(r, &mut offset)? as usize;
    for _ in 0..coll_count {
        let name = read_str(r, &mut offset)?;
        let cid = g.intern_collection(&name);
        let member_count = read_varint(r, &mut offset)? as usize;
        for _ in 0..member_count {
            let m = read_value(r, &mut offset)?;
            if let Some(o) = m.as_node() {
                if o.index() >= node_count {
                    return Err(corrupt(offset, "collection member out of range"));
                }
            }
            g.collect(cid, m);
        }
    }
    Ok(g)
}

/// Saves a graph to `path` durably through `vfs`: single write to a temp
/// file, fsync, atomic rename, directory fsync.
pub fn save_to_path_with(
    vfs: &dyn Vfs,
    graph: &Graph,
    generation: u64,
    path: &Path,
) -> Result<(), RepoError> {
    let mut bytes = Vec::new();
    save_graph_gen(graph, generation, &mut bytes)?;
    let tmp = path.with_extension("tmp");
    {
        let mut file = vfs.create(&tmp)?;
        file.write(&bytes)?;
        file.sync()?;
    }
    vfs.rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        vfs.sync_dir(parent)?;
    }
    Ok(())
}

/// [`save_to_path_with`] on the real filesystem, generation 0.
pub fn save_to_path(graph: &Graph, path: &Path) -> Result<(), RepoError> {
    save_to_path_with(&RealVfs, graph, 0, path)
}

/// Loads a graph and its generation from `path` through `vfs`, detecting
/// short reads via the file's metadata length.
pub fn load_from_path_with(vfs: &dyn Vfs, path: &Path) -> Result<(Graph, u64), RepoError> {
    let bytes = vfs.read(path)?;
    let disk_len = vfs.len(path)?;
    if bytes.len() as u64 != disk_len {
        return Err(RepoError::Io(std::io::Error::other(format!(
            "snapshot short read: got {} of {} bytes",
            bytes.len(),
            disk_len
        ))));
    }
    load_graph_gen(&mut &bytes[..])
}

/// Loads a graph from `path`.
pub fn load_from_path(path: &Path) -> Result<Graph, RepoError> {
    Ok(load_from_path_with(&RealVfs, path)?.0)
}

fn corrupt(offset: u64, message: impl Into<String>) -> RepoError {
    RepoError::Corrupt {
        what: "snapshot",
        offset,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::{FileKind, Value};

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_named_node("a");
        let b = g.add_node();
        g.add_edge_str(a, "title", Value::string("Strudel"));
        g.add_edge_str(a, "year", Value::Int(1998));
        g.add_edge_str(a, "next", Value::Node(b));
        g.add_edge_str(b, "pic", Value::file(FileKind::Image, "x.gif"));
        g.collect_str("Pubs", a);
        g.collect_str("Years", Value::Int(1998));
        g
    }

    fn round_trip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        save_graph(g, &mut buf).unwrap();
        load_graph(&mut &buf[..]).unwrap()
    }

    #[test]
    fn snapshot_round_trips() {
        let g = sample();
        let g2 = round_trip(&g);
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.collection_count(), g.collection_count());
        let a = g2.node_by_name("a").unwrap();
        assert_eq!(g2.first_attr_str(a, "year"), Some(&Value::Int(1998)));
        let b = g2.first_attr_str(a, "next").unwrap().as_node().unwrap();
        assert!(g2
            .first_attr_str(b, "pic")
            .unwrap()
            .is_file_kind(FileKind::Image));
        assert_eq!(g2.members_str("Years"), &[Value::Int(1998)]);
    }

    #[test]
    fn generation_round_trips() {
        let g = sample();
        let mut buf = Vec::new();
        save_graph_gen(&g, 42, &mut buf).unwrap();
        let (g2, generation) = load_graph_gen(&mut &buf[..]).unwrap();
        assert_eq!(generation, 42);
        assert_eq!(g2.edge_count(), g.edge_count());
    }

    #[test]
    fn oids_are_preserved_exactly() {
        let g = sample();
        let g2 = round_trip(&g);
        for oid in g.node_oids() {
            assert_eq!(g.node_name(oid), g2.node_name(oid));
            assert_eq!(g.edges(oid).len(), g2.edges(oid).len());
        }
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new();
        let g2 = round_trip(&g);
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.edge_count(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = b"NOTSNAPX\x02".to_vec();
        buf.extend_from_slice(&[0u8; 12]);
        assert!(matches!(
            load_graph(&mut &buf[..]),
            Err(RepoError::Corrupt { .. })
        ));
    }

    #[test]
    fn old_version_is_rejected_not_misread() {
        let g = sample();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        buf[8] = 1; // pretend to be the unchecksummed v1 layout
        match load_graph(&mut &buf[..]) {
            Err(RepoError::Corrupt { message, .. }) => {
                assert!(message.contains("version"), "message: {message}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let g = sample();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_graph(&mut &buf[..]).is_err());
    }

    #[test]
    fn any_corrupted_body_byte_is_rejected() {
        let g = sample();
        let mut clean = Vec::new();
        save_graph(&g, &mut clean).unwrap();
        // Every single-byte corruption of the body fails the checksum —
        // no silent misparse anywhere in the payload.
        for i in HEADER_LEN as usize..clean.len() {
            let mut buf = clean.clone();
            buf[i] ^= 0x55;
            match load_graph(&mut &buf[..]) {
                Err(RepoError::Corrupt { message, .. }) => {
                    assert!(message.contains("checksum"), "byte {i}: {message}");
                }
                other => panic!("byte {i}: expected checksum error, got {other:?}"),
            }
        }
    }

    #[test]
    fn structural_checks_backstop_a_validly_checksummed_body() {
        // Corruption that *recomputes* the checksum (or a writer bug) must
        // still be caught by the structural decode checks, or at least
        // never silently decode to the original graph.
        let g = sample();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] = 0xff;
        let crc = crc32(&buf[HEADER_LEN as usize..]).to_le_bytes();
        buf[17..21].copy_from_slice(&crc);
        assert!(load_graph(&mut &buf[..]).is_err() || {
            let g2 = load_graph(&mut &buf[..]).unwrap();
            g2.edge_count() != g.edge_count() || g2.collection_count() != g.collection_count()
        });
    }

    #[test]
    fn path_round_trip() {
        let dir = std::env::temp_dir().join(format!("strudel-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.snap");
        let g = sample();
        save_to_path_with(&RealVfs, &g, 9, &path).unwrap();
        let (g2, generation) = load_from_path_with(&RealVfs, &path).unwrap();
        assert_eq!(generation, 9);
        assert_eq!(g2.edge_count(), g.edge_count());
        assert!(
            !dir.join("g.tmp").exists(),
            "temp file renamed away, not left behind"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
