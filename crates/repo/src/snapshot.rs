//! Binary graph snapshots.
//!
//! A snapshot is the full serialized state of a graph: label table, nodes
//! (with optional symbolic names), per-node edge lists, and collections.
//! Snapshots are written atomically by [`Database::checkpoint`]
//! (write-to-temp + rename) and loaded by [`Database::open`].
//!
//! [`Database::checkpoint`]: crate::Database::checkpoint
//! [`Database::open`]: crate::Database::open

use crate::codec::{
    read_str, read_value, read_varint, write_str, write_value, write_varint,
};
use crate::RepoError;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use strudel_graph::{Graph, Label, Oid};

const MAGIC: &[u8; 8] = b"STRUSNAP";
const VERSION: u8 = 1;

/// Serializes `graph` to `w`.
pub fn save_graph(graph: &Graph, w: &mut impl Write) -> Result<(), RepoError> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;

    // Label table, in label order so indexes round-trip.
    write_varint(w, graph.labels().len() as u64)?;
    for (_, name) in graph.labels().iter() {
        write_str(w, name)?;
    }

    // Nodes with optional names.
    write_varint(w, graph.node_count() as u64)?;
    for oid in graph.node_oids() {
        match graph.node_name(oid) {
            Some(n) => {
                w.write_all(&[1])?;
                write_str(w, n)?;
            }
            None => w.write_all(&[0])?,
        }
    }

    // Edges, grouped by source node.
    for oid in graph.node_oids() {
        let edges = graph.edges(oid);
        write_varint(w, edges.len() as u64)?;
        for e in edges {
            write_varint(w, e.label.index() as u64)?;
            write_value(w, &e.to)?;
        }
    }

    // Collections.
    write_varint(w, graph.collection_count() as u64)?;
    for (cid, name) in graph.collections() {
        write_str(w, name)?;
        let members = graph.members(cid);
        write_varint(w, members.len() as u64)?;
        for m in members {
            write_value(w, m)?;
        }
    }
    Ok(())
}

/// Deserializes a graph from `r`.
pub fn load_graph(r: &mut impl Read) -> Result<Graph, RepoError> {
    let mut offset = 0u64;
    let mut magic = [0u8; 9];
    r.read_exact(&mut magic)?;
    offset += 9;
    if &magic[..8] != MAGIC {
        return Err(corrupt(offset, "bad snapshot magic"));
    }
    if magic[8] != VERSION {
        return Err(corrupt(offset, format!("unsupported version {}", magic[8])));
    }

    let mut g = Graph::new();

    let label_count = read_varint(r, &mut offset)? as usize;
    let mut labels: Vec<Label> = Vec::with_capacity(label_count);
    for _ in 0..label_count {
        let name = read_str(r, &mut offset)?;
        labels.push(g.intern_label(&name));
    }

    let node_count = read_varint(r, &mut offset)? as usize;
    for _ in 0..node_count {
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        offset += 1;
        match flag[0] {
            0 => {
                g.add_node();
            }
            1 => {
                let name = read_str(r, &mut offset)?;
                let before = g.node_count();
                g.add_named_node(&name);
                if g.node_count() == before {
                    return Err(corrupt(offset, format!("duplicate node name '{name}'")));
                }
            }
            other => return Err(corrupt(offset, format!("bad node flag {other}"))),
        }
    }

    for i in 0..node_count {
        let from = Oid::from_index(i);
        let edge_count = read_varint(r, &mut offset)? as usize;
        for _ in 0..edge_count {
            let label_idx = read_varint(r, &mut offset)? as usize;
            let label = *labels
                .get(label_idx)
                .ok_or_else(|| corrupt(offset, "edge label out of range"))?;
            let to = read_value(r, &mut offset)?;
            if let Some(o) = to.as_node() {
                if o.index() >= node_count {
                    return Err(corrupt(offset, "edge target out of range"));
                }
            }
            g.add_edge(from, label, to);
        }
    }

    let coll_count = read_varint(r, &mut offset)? as usize;
    for _ in 0..coll_count {
        let name = read_str(r, &mut offset)?;
        let cid = g.intern_collection(&name);
        let member_count = read_varint(r, &mut offset)? as usize;
        for _ in 0..member_count {
            let m = read_value(r, &mut offset)?;
            if let Some(o) = m.as_node() {
                if o.index() >= node_count {
                    return Err(corrupt(offset, "collection member out of range"));
                }
            }
            g.collect(cid, m);
        }
    }
    Ok(g)
}

/// Saves a graph to `path` atomically (temp file + rename).
pub fn save_to_path(graph: &Graph, path: &Path) -> Result<(), RepoError> {
    let tmp = path.with_extension("tmp");
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        save_graph(graph, &mut w)?;
        w.flush()?;
        w.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads a graph from `path`.
pub fn load_from_path(path: &Path) -> Result<Graph, RepoError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    load_graph(&mut r)
}

fn corrupt(offset: u64, message: impl Into<String>) -> RepoError {
    RepoError::Corrupt {
        what: "snapshot",
        offset,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::{FileKind, Value};

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_named_node("a");
        let b = g.add_node();
        g.add_edge_str(a, "title", Value::string("Strudel"));
        g.add_edge_str(a, "year", Value::Int(1998));
        g.add_edge_str(a, "next", Value::Node(b));
        g.add_edge_str(b, "pic", Value::file(FileKind::Image, "x.gif"));
        g.collect_str("Pubs", a);
        g.collect_str("Years", Value::Int(1998));
        g
    }

    fn round_trip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        save_graph(g, &mut buf).unwrap();
        load_graph(&mut &buf[..]).unwrap()
    }

    #[test]
    fn snapshot_round_trips() {
        let g = sample();
        let g2 = round_trip(&g);
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.collection_count(), g.collection_count());
        let a = g2.node_by_name("a").unwrap();
        assert_eq!(g2.first_attr_str(a, "year"), Some(&Value::Int(1998)));
        let b = g2.first_attr_str(a, "next").unwrap().as_node().unwrap();
        assert!(g2
            .first_attr_str(b, "pic")
            .unwrap()
            .is_file_kind(FileKind::Image));
        assert_eq!(g2.members_str("Years"), &[Value::Int(1998)]);
    }

    #[test]
    fn oids_are_preserved_exactly() {
        let g = sample();
        let g2 = round_trip(&g);
        for oid in g.node_oids() {
            assert_eq!(g.node_name(oid), g2.node_name(oid));
            assert_eq!(g.edges(oid).len(), g2.edges(oid).len());
        }
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new();
        let g2 = round_trip(&g);
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.edge_count(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOTSNAPX\x01".to_vec();
        assert!(matches!(
            load_graph(&mut &buf[..]),
            Err(RepoError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let g = sample();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_graph(&mut &buf[..]).is_err());
    }

    #[test]
    fn out_of_range_edge_target_is_rejected() {
        let mut g = Graph::new();
        let a = g.add_node();
        g.add_edge_str(a, "x", Value::Int(1));
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        // Corrupt: value tag for Node with index 7 — find the Int value and
        // swap it. Rebuild by hand: easier to just corrupt a byte near the
        // end and require *some* error.
        let last = buf.len() - 1;
        buf[last] = 0xff;
        assert!(load_graph(&mut &buf[..]).is_err() || {
            // Collections section may absorb the flip; accept either, but
            // the file must not decode to the original graph silently.
            let g2 = load_graph(&mut &buf[..]).unwrap();
            g2.edge_count() != g.edge_count()
        });
    }

    #[test]
    fn path_round_trip() {
        let dir = std::env::temp_dir().join(format!("strudel-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.snap");
        let g = sample();
        save_to_path(&g, &path).unwrap();
        let g2 = load_from_path(&path).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
