//! Repository errors.

use std::fmt;
use std::io;

/// Errors raised by the repository: I/O failures, corrupt persistent
/// state, or a delta that does not apply.
#[derive(Debug)]
pub enum RepoError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A snapshot or WAL file failed to decode.
    Corrupt {
        /// Which file was corrupt.
        what: &'static str,
        /// Byte offset (approximate) where decoding failed.
        offset: u64,
        /// What went wrong.
        message: String,
    },
    /// A delta failed to apply to the graph.
    Delta(strudel_graph::DeltaError),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::Io(e) => write!(f, "repository i/o error: {e}"),
            RepoError::Corrupt {
                what,
                offset,
                message,
            } => write!(f, "corrupt {what} near byte {offset}: {message}"),
            RepoError::Delta(e) => write!(f, "delta failed to apply: {e}"),
        }
    }
}

impl std::error::Error for RepoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RepoError::Io(e) => Some(e),
            RepoError::Delta(e) => Some(e),
            RepoError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for RepoError {
    fn from(e: io::Error) -> Self {
        RepoError::Io(e)
    }
}

impl From<strudel_graph::DeltaError> for RepoError {
    fn from(e: strudel_graph::DeltaError) -> Self {
        RepoError::Delta(e)
    }
}
