//! DataGuide summaries: discovered schemas for schemaless graphs.
//!
//! The paper's §7: *"Traditional database systems rely heavily on schema
//! information … An important problem is developing analogous techniques
//! for semistructured data in which schema information is missing or
//! changes frequently."* The classic answer from the Lore project
//! (Goldman & Widom, VLDB 1997) is the **strong DataGuide**: a concise
//! summary graph in which every distinct label path of the source graph
//! appears exactly once. It is built by the powerset construction over
//! target sets — the same determinization idea as NFA→DFA.
//!
//! The guide answers the questions iterative site design keeps asking
//! (§6.3's "we discovered similarities between pages that were not
//! explicit"): what attributes exist under a collection, which are
//! optional, what types they carry — without any declared schema.

use std::collections::{BTreeSet, HashMap};
use strudel_graph::{Graph, Label, Oid, Value};

/// One node of the DataGuide: a distinct label path's target set summary.
#[derive(Clone, Debug)]
pub struct GuideNode {
    /// Out-edges: label → guide node index.
    pub children: Vec<(Label, usize)>,
    /// How many source objects this path reaches.
    pub cardinality: usize,
    /// Names of atomic value types observed at this path, with counts.
    pub value_types: Vec<(&'static str, usize)>,
}

/// A strong DataGuide over a graph, rooted at a set of source objects.
#[derive(Clone, Debug)]
pub struct DataGuide {
    /// Guide nodes; index 0 is the root (the source set itself).
    pub nodes: Vec<GuideNode>,
}

impl DataGuide {
    /// Builds the strong DataGuide of the subgraph reachable from `roots`.
    ///
    /// Runs the powerset construction: each guide node corresponds to the
    /// *set* of source nodes reachable by one label path, and equal sets
    /// are shared — so every distinct label path appears exactly once.
    /// Worst-case exponential in pathological graphs (a known property of
    /// strong DataGuides); linear-ish on the tree-like data graphs web
    /// sites have.
    pub fn build(graph: &Graph, roots: &[Oid]) -> DataGuide {
        let root_set: BTreeSet<Oid> = roots.iter().copied().collect();
        let mut nodes: Vec<GuideNode> = Vec::new();
        let mut index: HashMap<BTreeSet<Oid>, usize> = HashMap::new();
        let mut queue: Vec<BTreeSet<Oid>> = Vec::new();

        let intern = |set: BTreeSet<Oid>,
                          nodes: &mut Vec<GuideNode>,
                          queue: &mut Vec<BTreeSet<Oid>>,
                          index: &mut HashMap<BTreeSet<Oid>, usize>|
         -> usize {
            if let Some(&i) = index.get(&set) {
                return i;
            }
            let i = nodes.len();
            nodes.push(GuideNode {
                children: Vec::new(),
                cardinality: set.len(),
                value_types: Vec::new(),
            });
            index.insert(set.clone(), i);
            queue.push(set);
            i
        };

        intern(root_set, &mut nodes, &mut queue, &mut index);
        let mut cursor = 0usize;
        while cursor < queue.len() {
            let set = queue[cursor].clone();
            let node_idx = index[&set];
            cursor += 1;

            // Group targets by label across the whole set.
            let mut by_label: HashMap<Label, (BTreeSet<Oid>, HashMap<&'static str, usize>)> =
                HashMap::new();
            for &o in &set {
                for e in graph.edges(o) {
                    let entry = by_label.entry(e.label).or_default();
                    match &e.to {
                        Value::Node(m) => {
                            entry.0.insert(*m);
                        }
                        atomic => {
                            *entry.1.entry(atomic.type_name()).or_insert(0) += 1;
                        }
                    }
                }
            }
            let mut labels: Vec<Label> = by_label.keys().copied().collect();
            labels.sort();
            for label in labels {
                let (targets, types) = by_label.remove(&label).expect("present");
                if !targets.is_empty() {
                    let child = intern(targets, &mut nodes, &mut queue, &mut index);
                    nodes[node_idx].children.push((label, child));
                }
                if !types.is_empty() {
                    // Atomic values at this path: record on the child if it
                    // exists, else on a leaf child.
                    let child = match nodes[node_idx]
                        .children
                        .iter()
                        .find(|(l, _)| *l == label)
                    {
                        Some(&(_, c)) => c,
                        None => {
                            let c = nodes.len();
                            nodes.push(GuideNode {
                                children: Vec::new(),
                                cardinality: 0,
                                value_types: Vec::new(),
                            });
                            nodes[node_idx].children.push((label, c));
                            c
                        }
                    };
                    let mut tv: Vec<(&'static str, usize)> = types.into_iter().collect();
                    tv.sort();
                    merge_types(&mut nodes[child].value_types, &tv);
                }
            }
        }
        DataGuide { nodes }
    }

    /// The guide node reached by a label path from the root, if that path
    /// exists in the data.
    pub fn lookup(&self, graph: &Graph, path: &[&str]) -> Option<&GuideNode> {
        let mut current = 0usize;
        for name in path {
            let label = graph.label(name)?;
            let &(_, next) = self.nodes[current]
                .children
                .iter()
                .find(|(l, _)| *l == label)?;
            current = next;
        }
        Some(&self.nodes[current])
    }

    /// Every distinct label path (up to `max_depth`), with the number of
    /// objects it reaches — the "discovered schema" listing.
    pub fn paths(&self, graph: &Graph, max_depth: usize) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        let mut stack: Vec<(usize, String, usize)> = vec![(0, String::new(), 0)];
        while let Some((node, path, depth)) = stack.pop() {
            if depth >= max_depth {
                continue;
            }
            for &(label, child) in &self.nodes[node].children {
                let name = graph.label_name(label);
                let p = if path.is_empty() {
                    name.to_owned()
                } else {
                    format!("{path}.{name}")
                };
                let reach = self.nodes[child].cardinality.max(
                    self.nodes[child]
                        .value_types
                        .iter()
                        .map(|(_, c)| *c)
                        .sum(),
                );
                out.push((p.clone(), reach));
                stack.push((child, p, depth + 1));
            }
        }
        out.sort();
        out
    }

    /// Attribute report for the root set: label name, how many of the root
    /// objects carry it, and the value types observed — the §6.3 question
    /// "which attributes are optional?".
    pub fn attribute_report<'g>(
        &self,
        graph: &'g Graph,
        roots: &[Oid],
    ) -> Vec<AttributeFact<'g>> {
        let mut out = Vec::new();
        for &(label, child) in &self.nodes[0].children {
            let name = graph.label_name(label);
            let l = label;
            let carriers = roots
                .iter()
                .filter(|&&o| graph.attr(o, l).next().is_some())
                .count();
            out.push(AttributeFact {
                name,
                carriers,
                total: roots.len(),
                value_types: self.nodes[child].value_types.clone(),
            });
        }
        out.sort_by_key(|f| f.name);
        out
    }
}

fn merge_types(into: &mut Vec<(&'static str, usize)>, add: &[(&'static str, usize)]) {
    for &(t, c) in add {
        match into.iter_mut().find(|(x, _)| *x == t) {
            Some((_, n)) => *n += c,
            None => into.push((t, c)),
        }
    }
    into.sort();
}

/// One row of [`DataGuide::attribute_report`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributeFact<'g> {
    /// Attribute name.
    pub name: &'g str,
    /// How many root objects carry it.
    pub carriers: usize,
    /// Number of root objects.
    pub total: usize,
    /// Atomic value types observed at the attribute, with counts.
    pub value_types: Vec<(&'static str, usize)>,
}

impl AttributeFact<'_> {
    /// Whether every root object carries this attribute.
    pub fn required(&self) -> bool {
        self.carriers == self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::FileKind;

    fn irregular_pubs() -> (Graph, Vec<Oid>) {
        let mut g = Graph::new();
        let p1 = g.add_named_node("p1");
        g.add_edge_str(p1, "title", Value::string("A"));
        g.add_edge_str(p1, "year", Value::Int(1997));
        g.add_edge_str(p1, "month", Value::string("June"));
        let p2 = g.add_named_node("p2");
        g.add_edge_str(p2, "title", Value::string("B"));
        g.add_edge_str(p2, "year", Value::Int(1998));
        g.add_edge_str(p2, "abstract", Value::file(FileKind::Text, "b.txt"));
        // Nested structure on p2 only.
        let addr = g.add_node();
        g.add_edge_str(addr, "city", Value::string("NYC"));
        g.add_edge_str(p2, "address", Value::Node(addr));
        (g, vec![p1, p2])
    }

    #[test]
    fn every_distinct_path_appears_once() {
        let (g, roots) = irregular_pubs();
        let guide = DataGuide::build(&g, &roots);
        let paths = guide.paths(&g, 3);
        let names: Vec<&str> = paths.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            names,
            [
                "abstract",
                "address",
                "address.city",
                "month",
                "title",
                "year"
            ]
        );
        // No duplicates by construction.
        let mut sorted = names.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn cardinalities_reflect_reach() {
        let (g, roots) = irregular_pubs();
        let guide = DataGuide::build(&g, &roots);
        let paths = guide.paths(&g, 2);
        let by_name: std::collections::HashMap<&str, usize> =
            paths.iter().map(|(p, c)| (p.as_str(), *c)).collect();
        assert_eq!(by_name["title"], 2, "both publications have titles");
        assert_eq!(by_name["month"], 1, "only p1 has a month");
        assert_eq!(by_name["address"], 1);
    }

    #[test]
    fn lookup_navigates_paths() {
        let (g, roots) = irregular_pubs();
        let guide = DataGuide::build(&g, &roots);
        assert!(guide.lookup(&g, &["address", "city"]).is_some());
        assert!(guide.lookup(&g, &["address", "zip"]).is_none());
        assert!(guide.lookup(&g, &["no-such"]).is_none());
    }

    #[test]
    fn attribute_report_flags_optional_attributes() {
        let (g, roots) = irregular_pubs();
        let guide = DataGuide::build(&g, &roots);
        let report = guide.attribute_report(&g, &roots);
        let title = report.iter().find(|f| f.name == "title").unwrap();
        assert!(title.required());
        assert_eq!(title.value_types, vec![("string", 2)]);
        let month = report.iter().find(|f| f.name == "month").unwrap();
        assert!(!month.required());
        assert_eq!(month.carriers, 1);
        let abs = report.iter().find(|f| f.name == "abstract").unwrap();
        assert_eq!(abs.value_types, vec![("text", 1)]);
    }

    #[test]
    fn shared_target_sets_are_merged() {
        // Two roots pointing at the same child via the same label: the
        // guide has one child node.
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let shared = g.add_node();
        g.add_edge_str(shared, "v", Value::Int(1));
        g.add_edge_str(a, "child", Value::Node(shared));
        g.add_edge_str(b, "child", Value::Node(shared));
        let guide = DataGuide::build(&g, &[a, b]);
        // Root + {shared} + the leaf for v's value types.
        assert_eq!(guide.nodes.len(), 3);
    }

    #[test]
    fn cycles_terminate() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge_str(a, "next", Value::Node(b));
        g.add_edge_str(b, "next", Value::Node(a));
        let guide = DataGuide::build(&g, &[a]);
        assert!(guide.nodes.len() <= 4);
        // Paths at depth 3 exist but reuse guide nodes.
        assert!(guide.lookup(&g, &["next", "next", "next"]).is_some());
    }

    #[test]
    fn mixed_value_types_are_reported() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge_str(a, "year", Value::Int(1998));
        g.add_edge_str(b, "year", Value::string("1997"));
        let guide = DataGuide::build(&g, &[a, b]);
        let report = guide.attribute_report(&g, &[a, b]);
        let year = &report[0];
        assert_eq!(year.value_types, vec![("int", 1), ("string", 1)]);
    }
}
