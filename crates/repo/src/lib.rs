//! # strudel-repo
//!
//! The Strudel data repository: storage and indexing for semistructured
//! graphs.
//!
//! Unlike a relational or object-oriented store, the repository cannot rely
//! on schema information to organize data on disk — there is no schema. The
//! paper's answer (§2.1) is to **fully index both the schema and the
//! data**:
//!
//! * a *schema index* over the names of all collections and attributes in
//!   the graph (STRUQL can query the schema through arc variables);
//! * *extension indexes* for each collection and each attribute;
//! * *value indexes* that are **global** to the graph, not per collection
//!   or attribute.
//!
//! "Obviously, maintaining these indexes is expensive, but they provide
//! many benefits to our query language." The [`Database`] type maintains
//! all of them incrementally under mutation; [`IndexLevel`] lets the
//! indexing ablation experiment (E-index) dial them down.
//!
//! Persistence is a binary [`snapshot`] plus a write-ahead log ([`wal`]) of
//! [`GraphDelta`](strudel_graph::GraphDelta)s; [`Database::open`] replays
//! the log over the latest snapshot and [`Database::checkpoint`] compacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod codec;
pub(crate) mod crc;
pub mod dataguide;
mod database;
mod error;
mod index;
pub mod pager;
pub mod snapshot;
mod stats;
pub mod vfs;
pub mod wal;

pub use database::{Database, IndexLevel};
pub use dataguide::{AttributeFact, DataGuide, GuideNode};
pub use error::RepoError;
pub use index::{ExtensionIndex, IndexSet, SchemaIndex, ValueIndex};
pub use pager::{
    committed_wal_deltas, committed_wal_deltas_with, replay_committed, replay_committed_with,
    PagedRepo, PagedSnapshot, PagerConfig, PagerStats, ReplayedStore,
};
pub use stats::{LabelStats, Stats};
