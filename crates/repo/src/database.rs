//! The repository façade: an indexed, optionally persistent graph store.

use crate::index::{ExtensionIndex, IndexSet, SchemaIndex, ValueIndex};
use crate::stats::Stats;
use crate::wal::{self, Wal};
use crate::{snapshot, RepoError};
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use strudel_graph::{DeltaOp, Graph, GraphDelta, Label, Oid, Value};

/// How much indexing the repository maintains.
///
/// The paper's prototype always indexes fully; this knob exists for the
/// E-index ablation (what do the indexes buy in a schemaless store?).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IndexLevel {
    /// No indexes: every lookup is a graph scan.
    None,
    /// Schema + per-attribute extension indexes, no global value index.
    ExtensionOnly,
    /// Everything, the paper's configuration.
    #[default]
    Full,
}

/// An indexed graph database with optional snapshot + WAL persistence.
///
/// All mutation goes through `Database` methods so the indexes stay
/// consistent with the graph; reads hand out `&Graph` freely.
#[derive(Debug)]
pub struct Database {
    graph: Graph,
    level: IndexLevel,
    indexes: IndexSet,
    // Mutex (not RefCell) so a read-only Database shares across threads:
    // the click-time server hands `Arc<Database>` to its whole pool.
    stats: Mutex<Option<Arc<Stats>>>,
    wal: Option<Wal>,
    dir: Option<PathBuf>,
    wal_discarded_bytes: u64,
}

impl Default for Database {
    fn default() -> Self {
        Self::new(IndexLevel::Full)
    }
}

impl Database {
    /// An empty in-memory database at the given index level.
    pub fn new(level: IndexLevel) -> Self {
        Self::from_graph(Graph::new(), level)
    }

    /// Wraps an existing graph, building indexes for it.
    pub fn from_graph(graph: Graph, level: IndexLevel) -> Self {
        let indexes = build_indexes(&graph, level);
        Database {
            graph,
            level,
            indexes,
            stats: Mutex::new(None),
            wal: None,
            dir: None,
            wal_discarded_bytes: 0,
        }
    }

    /// Opens (or creates) a persistent database in directory `dir`: loads
    /// `snapshot.bin` if present, replays `wal.log`, and keeps the WAL open
    /// for appending.
    pub fn open(dir: &Path, level: IndexLevel) -> Result<Self, RepoError> {
        std::fs::create_dir_all(dir)?;
        let snap_path = dir.join("snapshot.bin");
        let wal_path = dir.join("wal.log");
        let mut graph = if snap_path.exists() {
            snapshot::load_from_path(&snap_path)?
        } else {
            Graph::new()
        };
        let replay_span = strudel_trace::span("repo.wal.replay");
        let report = wal::replay_report(&wal_path)?;
        let replayed = report.deltas.len();
        for delta in report.deltas {
            delta.apply(&mut graph)?;
        }
        drop(replay_span);
        strudel_trace::event_with("repo.wal.replay", || {
            format!(
                "deltas={replayed} discarded_bytes={}",
                report.discarded_bytes
            )
        });
        if report.discarded_bytes > 0 {
            // Chop the torn tail off before reopening for append, or the
            // next record would land after garbage and be unreplayable.
            let valid = std::fs::metadata(&wal_path)?.len() - report.discarded_bytes;
            OpenOptions::new().write(true).open(&wal_path)?.set_len(valid)?;
        }
        let mut db = Self::from_graph(graph, level);
        db.wal = Some(Wal::open_append(&wal_path)?);
        db.dir = Some(dir.to_owned());
        db.wal_discarded_bytes = report.discarded_bytes;
        Ok(db)
    }

    /// Writes a fresh snapshot and truncates the WAL.
    pub fn checkpoint(&mut self) -> Result<(), RepoError> {
        let Some(dir) = self.dir.clone() else {
            return Ok(()); // in-memory databases checkpoint trivially
        };
        if let Some(w) = &mut self.wal {
            w.sync()?;
        }
        snapshot::save_to_path(&self.graph, &dir.join("snapshot.bin"))?;
        self.wal = Some(Wal::create(&dir.join("wal.log"))?);
        Ok(())
    }

    // ----- reads ---------------------------------------------------------

    /// The underlying graph (read-only).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the database, returning its graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// The configured index level.
    pub fn level(&self) -> IndexLevel {
        self.level
    }

    /// Bytes of a torn trailing WAL record discarded (and truncated away)
    /// when this database was opened; 0 for clean opens and in-memory
    /// databases.
    pub fn wal_discarded_bytes(&self) -> u64 {
        self.wal_discarded_bytes
    }

    /// The extension of attribute `label` — all `(source, target)` pairs —
    /// when extension indexes are maintained.
    pub fn extension(&self, label: Label) -> Option<&[(Oid, Value)]> {
        strudel_trace::count("repo.probe.extension", 1);
        self.indexes.extension.as_ref().map(|x| x.extension(label))
    }

    /// The sources of edges `x --label--> to`, when extension indexes are
    /// maintained.
    pub fn sources(&self, label: Label, to: &Value) -> Option<&[Oid]> {
        strudel_trace::count("repo.probe.sources", 1);
        self.indexes.extension.as_ref().map(|x| x.sources(label, to))
    }

    /// Every `(node, label)` location of the atomic value `v`, when the
    /// global value index is maintained.
    pub fn value_locations(&self, v: &Value) -> Option<&[(Oid, Label)]> {
        strudel_trace::count("repo.probe.value_locations", 1);
        self.indexes.value.as_ref().map(|x| x.locations(v))
    }

    /// The schema index, when maintained.
    pub fn schema_index(&self) -> Option<&SchemaIndex> {
        self.indexes.schema.as_ref()
    }

    /// Builds a [`DataGuide`](crate::DataGuide) over the node members of
    /// a collection — the discovered schema of that collection's objects.
    /// `None` when the collection is missing or has no node members.
    pub fn dataguide(&self, collection: &str) -> Option<crate::DataGuide> {
        let cid = self.graph.collection_id(collection)?;
        let roots: Vec<Oid> = self
            .graph
            .members(cid)
            .iter()
            .filter_map(Value::as_node)
            .collect();
        if roots.is_empty() {
            return None;
        }
        Some(crate::DataGuide::build(&self.graph, &roots))
    }

    /// A statistics snapshot for the optimizer, computed lazily and cached
    /// until the next mutation.
    pub fn stats(&self) -> Arc<Stats> {
        let mut slot = self.stats.lock().unwrap();
        if let Some(s) = slot.as_ref() {
            return Arc::clone(s);
        }
        let s = Arc::new(Stats::compute(&self.graph));
        *slot = Some(Arc::clone(&s));
        s
    }

    // ----- mutations -----------------------------------------------------

    /// Creates an anonymous node.
    pub fn add_node(&mut self) -> Result<Oid, RepoError> {
        self.log_one(DeltaOp::AddNode { name: None })?;
        self.invalidate();
        Ok(self.graph.add_node())
    }

    /// Creates (or fetches) a named node.
    pub fn add_named_node(&mut self, name: &str) -> Result<Oid, RepoError> {
        if let Some(oid) = self.graph.node_by_name(name) {
            return Ok(oid); // no-op, nothing to log
        }
        self.log_one(DeltaOp::AddNode {
            name: Some(name.into()),
        })?;
        self.invalidate();
        Ok(self.graph.add_named_node(name))
    }

    /// Adds an edge, maintaining all indexes.
    pub fn add_edge(&mut self, from: Oid, label: &str, to: Value) -> Result<(), RepoError> {
        self.log_one(DeltaOp::AddEdge {
            from,
            label: label.into(),
            to: to.clone(),
        })?;
        self.apply_add_edge(from, label, to);
        Ok(())
    }

    /// Removes one occurrence of an edge. Returns whether it existed.
    pub fn remove_edge(&mut self, from: Oid, label: &str, to: &Value) -> Result<bool, RepoError> {
        let Some(l) = self.graph.label(label) else {
            return Ok(false);
        };
        if !self.graph.has_edge(from, l, to) {
            return Ok(false);
        }
        self.log_one(DeltaOp::RemoveEdge {
            from,
            label: label.into(),
            to: to.clone(),
        })?;
        self.apply_remove_edge(from, l, to);
        Ok(true)
    }

    /// Adds `member` to a named collection.
    pub fn collect(&mut self, collection: &str, member: Value) -> Result<bool, RepoError> {
        let cid = self.graph.intern_collection(collection);
        if self.graph.in_collection(cid, &member) {
            return Ok(false);
        }
        self.log_one(DeltaOp::Collect {
            collection: collection.into(),
            member: member.clone(),
        })?;
        self.invalidate();
        if let Some(s) = &mut self.indexes.schema {
            s.note_member(collection, 1);
        }
        Ok(self.graph.collect(cid, member))
    }

    /// Removes `member` from a named collection.
    pub fn uncollect(&mut self, collection: &str, member: &Value) -> Result<bool, RepoError> {
        let Some(cid) = self.graph.collection_id(collection) else {
            return Ok(false);
        };
        if !self.graph.in_collection(cid, member) {
            return Ok(false);
        }
        self.log_one(DeltaOp::Uncollect {
            collection: collection.into(),
            member: member.clone(),
        })?;
        self.invalidate();
        if let Some(s) = &mut self.indexes.schema {
            s.note_member(collection, -1);
        }
        Ok(self.graph.uncollect(cid, member))
    }

    /// Applies a whole delta atomically with respect to the WAL (one
    /// record) and keeps indexes in sync.
    ///
    /// Application is *not* atomic with respect to the in-memory graph:
    /// a failing op (dangling node, missing edge) errors out with the
    /// preceding ops already applied, mirroring
    /// [`GraphDelta::apply`]. Callers that must never expose a
    /// half-applied state — the live click-time engine — apply the delta
    /// to a clone and swap only on success (see
    /// `DynamicSite::apply_delta` in strudel-schema).
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<Vec<Oid>, RepoError> {
        if let Some(wal) = &mut self.wal {
            let _span = strudel_trace::span("repo.wal.append");
            strudel_trace::count("repo.wal.appends", 1);
            wal.append(delta)?;
        }
        let mut created = Vec::new();
        for op in delta.ops() {
            match op {
                DeltaOp::AddNode { name } => {
                    let oid = match name {
                        Some(n) => self.graph.add_named_node(n),
                        None => self.graph.add_node(),
                    };
                    created.push(oid);
                }
                DeltaOp::AddEdge { from, label, to } => {
                    if !self.graph.contains_node(*from) {
                        return Err(strudel_graph::DeltaError::UnknownNode(*from).into());
                    }
                    self.apply_add_edge(*from, label, to.clone());
                }
                DeltaOp::RemoveEdge { from, label, to } => {
                    let l = self.graph.label(label).ok_or_else(|| {
                        RepoError::Delta(strudel_graph::DeltaError::MissingEdge {
                            from: *from,
                            label: label.clone(),
                        })
                    })?;
                    if !self.graph.has_edge(*from, l, to) {
                        return Err(strudel_graph::DeltaError::MissingEdge {
                            from: *from,
                            label: label.clone(),
                        }
                        .into());
                    }
                    self.apply_remove_edge(*from, l, to);
                }
                DeltaOp::Collect { collection, member } => {
                    let cid = self.graph.intern_collection(collection);
                    if self.graph.collect(cid, member.clone()) {
                        if let Some(s) = &mut self.indexes.schema {
                            s.note_member(collection, 1);
                        }
                    }
                }
                DeltaOp::Uncollect { collection, member } => {
                    let cid = self.graph.collection_id(collection).ok_or_else(|| {
                        RepoError::Delta(strudel_graph::DeltaError::MissingMember {
                            collection: collection.clone(),
                        })
                    })?;
                    if self.graph.uncollect(cid, member) {
                        if let Some(s) = &mut self.indexes.schema {
                            s.note_member(collection, -1);
                        }
                    }
                }
            }
        }
        self.invalidate();
        Ok(created)
    }

    /// Rebuilds all indexes from scratch (used after bulk graph surgery
    /// and by tests to cross-check incremental maintenance).
    pub fn rebuild_indexes(&mut self) {
        self.indexes = build_indexes(&self.graph, self.level);
        self.invalidate();
    }

    // ----- internals ------------------------------------------------------

    fn apply_add_edge(&mut self, from: Oid, label: &str, to: Value) {
        let l = self.graph.intern_label(label);
        if let Some(s) = &mut self.indexes.schema {
            s.note_edge(l, &to);
        }
        if let Some(x) = &mut self.indexes.extension {
            x.note_edge(from, l, &to);
        }
        if let Some(v) = &mut self.indexes.value {
            v.note_edge(from, l, &to);
        }
        self.graph.add_edge(from, l, to);
        self.invalidate();
    }

    fn apply_remove_edge(&mut self, from: Oid, l: Label, to: &Value) {
        if let Some(s) = &mut self.indexes.schema {
            s.forget_edge(l, to);
        }
        if let Some(x) = &mut self.indexes.extension {
            x.forget_edge(from, l, to);
        }
        if let Some(v) = &mut self.indexes.value {
            v.forget_edge(from, l, to);
        }
        self.graph.remove_edge(from, l, to);
        self.invalidate();
    }

    fn log_one(&mut self, op: DeltaOp) -> Result<(), RepoError> {
        if let Some(wal) = &mut self.wal {
            let _span = strudel_trace::span("repo.wal.append");
            strudel_trace::count("repo.wal.appends", 1);
            let mut d = GraphDelta::new();
            d.push(op);
            wal.append(&d)?;
        }
        Ok(())
    }

    fn invalidate(&mut self) {
        *self.stats.lock().unwrap() = None;
    }
}

fn build_indexes(graph: &Graph, level: IndexLevel) -> IndexSet {
    match level {
        IndexLevel::None => IndexSet::default(),
        IndexLevel::ExtensionOnly => IndexSet {
            schema: Some(SchemaIndex::build(graph)),
            extension: Some(ExtensionIndex::build(graph)),
            value: None,
        },
        IndexLevel::Full => IndexSet {
            schema: Some(SchemaIndex::build(graph)),
            extension: Some(ExtensionIndex::build(graph)),
            value: Some(ValueIndex::build(graph)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("strudel-db-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn mutations_keep_indexes_in_sync() {
        let mut db = Database::new(IndexLevel::Full);
        let a = db.add_named_node("a").unwrap();
        db.add_edge(a, "year", Value::Int(1998)).unwrap();
        db.add_edge(a, "year", Value::Int(1997)).unwrap();
        let year = db.graph().label("year").unwrap();
        assert_eq!(db.extension(year).unwrap().len(), 2);
        assert_eq!(db.sources(year, &Value::Int(1998)).unwrap().len(), 1);
        assert_eq!(db.value_locations(&Value::Int(1998)).unwrap().len(), 1);

        db.remove_edge(a, "year", &Value::Int(1998)).unwrap();
        assert_eq!(db.extension(year).unwrap().len(), 1);
        assert_eq!(db.sources(year, &Value::Int(1998)).unwrap().len(), 0);
        assert_eq!(db.value_locations(&Value::Int(1998)).unwrap().len(), 0);
    }

    #[test]
    fn index_level_none_disables_indexes() {
        let mut db = Database::new(IndexLevel::None);
        let a = db.add_node().unwrap();
        db.add_edge(a, "x", Value::Int(1)).unwrap();
        let x = db.graph().label("x").unwrap();
        assert!(db.extension(x).is_none());
        assert!(db.value_locations(&Value::Int(1)).is_none());
        assert!(db.schema_index().is_none());
    }

    #[test]
    fn extension_only_omits_value_index() {
        let mut db = Database::new(IndexLevel::ExtensionOnly);
        let a = db.add_node().unwrap();
        db.add_edge(a, "x", Value::Int(1)).unwrap();
        let x = db.graph().label("x").unwrap();
        assert!(db.extension(x).is_some());
        assert!(db.value_locations(&Value::Int(1)).is_none());
    }

    #[test]
    fn stats_cache_invalidates_on_mutation() {
        let mut db = Database::new(IndexLevel::Full);
        let a = db.add_node().unwrap();
        let s1 = db.stats();
        assert_eq!(s1.edges, 0);
        db.add_edge(a, "x", Value::Int(1)).unwrap();
        let s2 = db.stats();
        assert_eq!(s2.edges, 1);
    }

    #[test]
    fn incremental_indexes_match_rebuilt_indexes() {
        let mut db = Database::new(IndexLevel::Full);
        let a = db.add_named_node("a").unwrap();
        let b = db.add_named_node("b").unwrap();
        db.add_edge(a, "p", Value::Node(b)).unwrap();
        db.add_edge(a, "q", Value::string("s")).unwrap();
        db.add_edge(b, "q", Value::string("s")).unwrap();
        db.remove_edge(a, "q", &Value::string("s")).unwrap();
        db.collect("C", Value::Node(a)).unwrap();

        let q = db.graph().label("q").unwrap();
        let incr_ext: Vec<_> = db.extension(q).unwrap().to_vec();
        let incr_locs = db.value_locations(&Value::string("s")).unwrap().len();
        let incr_coll = db.schema_index().unwrap().collection_size("C");

        db.rebuild_indexes();
        assert_eq!(db.extension(q).unwrap().to_vec(), incr_ext);
        assert_eq!(
            db.value_locations(&Value::string("s")).unwrap().len(),
            incr_locs
        );
        assert_eq!(db.schema_index().unwrap().collection_size("C"), incr_coll);
    }

    #[test]
    fn persistence_round_trip() {
        let dir = tmpdir("persist");
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.add_named_node("a").unwrap();
            db.add_edge(a, "title", Value::string("Strudel")).unwrap();
            db.collect("Pubs", Value::Node(a)).unwrap();
        } // drop without checkpoint: state lives in the WAL
        {
            let db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.graph().node_by_name("a").unwrap();
            assert_eq!(
                db.graph().first_attr_str(a, "title").unwrap().as_str(),
                Some("Strudel")
            );
            assert_eq!(db.graph().members_str("Pubs").len(), 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_recovers_from_torn_wal_tail_and_appends_cleanly() {
        let dir = tmpdir("torn-tail");
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.add_named_node("a").unwrap();
            db.add_edge(a, "v", Value::Int(1)).unwrap();
            db.add_edge(a, "v", Value::Int(2)).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the last record.
        let wal_path = dir.join("wal.log");
        let full = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &full[..full.len() - 3]).unwrap();
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            assert!(db.wal_discarded_bytes() > 0, "torn tail was reported");
            let a = db.graph().node_by_name("a").unwrap();
            // The torn record (v=2) is gone; the committed one survives.
            assert_eq!(db.graph().attr_str(a, "v").count(), 1);
            // Recovery truncated the garbage, so new appends replay.
            db.add_edge(a, "v", Value::Int(3)).unwrap();
        }
        {
            let db = Database::open(&dir, IndexLevel::Full).unwrap();
            assert_eq!(db.wal_discarded_bytes(), 0, "clean reopen");
            let a = db.graph().node_by_name("a").unwrap();
            assert_eq!(db.graph().attr_str(a, "v").count(), 2);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_wal() {
        let dir = tmpdir("ckpt");
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.add_named_node("a").unwrap();
            db.add_edge(a, "v", Value::Int(1)).unwrap();
            db.checkpoint().unwrap();
            // WAL should now be just the magic header.
            let wal_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
            assert_eq!(wal_len, 8);
            db.add_edge(a, "v", Value::Int(2)).unwrap();
        }
        {
            let db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.graph().node_by_name("a").unwrap();
            assert_eq!(db.graph().attr_str(a, "v").count(), 2);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn named_node_is_idempotent_without_duplicate_log() {
        let dir = tmpdir("idem");
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a1 = db.add_named_node("a").unwrap();
            let a2 = db.add_named_node("a").unwrap();
            assert_eq!(a1, a2);
        }
        {
            let db = Database::open(&dir, IndexLevel::Full).unwrap();
            assert_eq!(db.graph().node_count(), 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn apply_delta_is_one_wal_record() {
        let dir = tmpdir("delta");
        let mut d = GraphDelta::new();
        d.add_node(Some("x"));
        d.add_edge(Oid::from_index(0), "v", Value::Int(1));
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            db.apply_delta(&d).unwrap();
        }
        let records = wal::replay(&dir.join("wal.log")).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dataguide_over_a_collection() {
        let mut db = Database::new(IndexLevel::Full);
        let a = db.add_named_node("a").unwrap();
        db.add_edge(a, "title", Value::string("T")).unwrap();
        db.collect("Pubs", Value::Node(a)).unwrap();
        let guide = db.dataguide("Pubs").unwrap();
        assert_eq!(guide.nodes[0].cardinality, 1);
        assert!(db.dataguide("Ghost").is_none());
        db.collect("Atoms", Value::Int(1)).unwrap();
        assert!(db.dataguide("Atoms").is_none(), "no node members");
    }

    #[test]
    fn open_rejects_corrupt_snapshot() {
        let dir = tmpdir("corrupt-snap");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("snapshot.bin"), b"not a snapshot").unwrap();
        assert!(matches!(
            Database::open(&dir, IndexLevel::Full),
            Err(RepoError::Corrupt { .. }) | Err(RepoError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_discards_torn_wal_tail() {
        let dir = tmpdir("torn-tail");
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.add_named_node("a").unwrap();
            db.add_edge(a, "v", Value::Int(1)).unwrap();
            db.add_edge(a, "v", Value::Int(2)).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the log.
        let wal_path = dir.join("wal.log");
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();
        let db = Database::open(&dir, IndexLevel::Full).unwrap();
        let a = db.graph().node_by_name("a").unwrap();
        // The first committed edge survives; the torn one is discarded.
        assert_eq!(db.graph().attr_str(a, "v").count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn collect_uncollect_updates_schema_index() {
        let mut db = Database::new(IndexLevel::Full);
        let a = db.add_node().unwrap();
        db.collect("C", Value::Node(a)).unwrap();
        assert_eq!(db.schema_index().unwrap().collection_size("C"), 1);
        assert!(!db.collect("C", Value::Node(a)).unwrap(), "duplicate");
        assert_eq!(db.schema_index().unwrap().collection_size("C"), 1);
        db.uncollect("C", &Value::Node(a)).unwrap();
        assert_eq!(db.schema_index().unwrap().collection_size("C"), 0);
    }
}
