//! The repository façade: an indexed, optionally persistent graph store.

use crate::index::{ExtensionIndex, IndexSet, SchemaIndex, ValueIndex};
use crate::stats::Stats;
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{self, Wal};
use crate::{snapshot, RepoError};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use strudel_graph::{DeltaError, DeltaOp, Graph, GraphDelta, Label, Oid, Value};

/// How much indexing the repository maintains.
///
/// The paper's prototype always indexes fully; this knob exists for the
/// E-index ablation (what do the indexes buy in a schemaless store?).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IndexLevel {
    /// No indexes: every lookup is a graph scan.
    None,
    /// Schema + per-attribute extension indexes, no global value index.
    ExtensionOnly,
    /// Everything, the paper's configuration.
    #[default]
    Full,
}

/// An indexed graph database with optional snapshot + WAL persistence.
///
/// All mutation goes through `Database` methods so the indexes stay
/// consistent with the graph; reads hand out `&Graph` freely.
#[derive(Debug)]
pub struct Database {
    graph: Graph,
    level: IndexLevel,
    indexes: IndexSet,
    // Mutex (not RefCell) so a read-only Database shares across threads:
    // the click-time server hands `Arc<Database>` to its whole pool.
    stats: Mutex<Option<Arc<Stats>>>,
    wal: Option<Wal>,
    dir: Option<PathBuf>,
    vfs: Option<Arc<dyn Vfs>>,
    // When present, persistence is the paged store: deltas commit
    // through its WAL + buffer pool and `checkpoint` writes its
    // manifest; `wal`/`dir` snapshot persistence is unused. The graph
    // stays fully materialized in memory as the read fast path.
    pager: Option<crate::pager::PagedRepo>,
    generation: u64,
    wal_discarded_bytes: u64,
    recovered_stale_wal: bool,
}

impl Default for Database {
    fn default() -> Self {
        Self::new(IndexLevel::Full)
    }
}

impl Database {
    /// An empty in-memory database at the given index level.
    pub fn new(level: IndexLevel) -> Self {
        Self::from_graph(Graph::new(), level)
    }

    /// Wraps an existing graph, building indexes for it.
    pub fn from_graph(graph: Graph, level: IndexLevel) -> Self {
        let indexes = build_indexes(&graph, level);
        Database {
            graph,
            level,
            indexes,
            stats: Mutex::new(None),
            wal: None,
            dir: None,
            vfs: None,
            pager: None,
            generation: 0,
            wal_discarded_bytes: 0,
            recovered_stale_wal: false,
        }
    }

    /// Opens (or creates) a persistent database in directory `dir`: loads
    /// `snapshot.bin` if present, replays `wal.log`, and keeps the WAL open
    /// for appending.
    pub fn open(dir: &Path, level: IndexLevel) -> Result<Self, RepoError> {
        Self::open_with(dir, level, Arc::new(RealVfs))
    }

    /// [`Database::open`] through an explicit [`Vfs`] — the crash-torture
    /// harness passes a fault-injecting one.
    ///
    /// Recovery decides what the WAL means by comparing its header
    /// generation `W` against the snapshot's generation `G`:
    ///
    /// | state                     | meaning                            | action                    |
    /// |---------------------------|------------------------------------|---------------------------|
    /// | `W == G`                  | log extends this snapshot          | replay, repair torn tail  |
    /// | `W < G` or torn header    | crash between a checkpoint's       | discard log (its frames   |
    /// |                           | snapshot rename and WAL truncation | are already in `G`)       |
    /// | `W > G`                   | the snapshot that truncated this   | refuse: precise corrupt   |
    /// |                           | log is missing                     | error                     |
    pub fn open_with(dir: &Path, level: IndexLevel, vfs: Arc<dyn Vfs>) -> Result<Self, RepoError> {
        vfs.create_dir_all(dir)?;
        let snap_path = dir.join("snapshot.bin");
        let wal_path = dir.join("wal.log");
        let snap_tmp = snap_path.with_extension("tmp");
        if vfs.exists(&snap_tmp) {
            // A checkpoint died before its rename; the temp file is
            // unreferenced garbage.
            vfs.remove_file(&snap_tmp)?;
        }
        let (mut graph, snap_gen) = if vfs.exists(&snap_path) {
            snapshot::load_from_path_with(vfs.as_ref(), &snap_path)?
        } else {
            (Graph::new(), 0)
        };
        let wal_existed = vfs.exists(&wal_path);
        let replay_span = strudel_trace::span("repo.wal.replay");
        let report = wal::replay_report_with(vfs.as_ref(), &wal_path)?;
        let mut recovered_stale_wal = false;
        let mut discarded = report.discarded_bytes;
        let mut replayed = 0usize;
        let wal = if report.torn_header || report.generation < snap_gen {
            // Stale log: a crash landed after the checkpoint's snapshot
            // rename but before (or during) the WAL truncation. Every
            // frame it holds is already inside the generation-`snap_gen`
            // snapshot — replaying would double-apply, so discard.
            recovered_stale_wal = wal_existed && !report.torn_header;
            discarded = 0; // nothing user-visible is lost
            Wal::create_with(vfs.as_ref(), &wal_path, snap_gen)?
        } else if report.generation > snap_gen {
            return Err(RepoError::Corrupt {
                what: "wal",
                offset: 8,
                message: format!(
                    "wal generation {} is newer than snapshot generation {snap_gen}: \
                     the snapshot that truncated this log is missing",
                    report.generation
                ),
            });
        } else {
            replayed = report.deltas.len();
            for delta in report.deltas {
                delta.apply(&mut graph)?;
            }
            if report.discarded_bytes > 0 {
                // Chop the torn tail off before reopening for append, or
                // the next frame would land after garbage and be
                // unreplayable.
                let valid = vfs.len(&wal_path)? - report.discarded_bytes;
                vfs.set_len(&wal_path, valid)?;
            }
            Wal::open_append_with(vfs.as_ref(), &wal_path, snap_gen)?
        };
        drop(replay_span);
        strudel_trace::event_with("repo.wal.replay", || {
            format!("deltas={replayed} discarded_bytes={discarded} stale={recovered_stale_wal}")
        });
        let mut db = Self::from_graph(graph, level);
        db.wal = Some(wal);
        db.dir = Some(dir.to_owned());
        db.vfs = Some(vfs);
        db.generation = snap_gen;
        db.wal_discarded_bytes = discarded;
        db.recovered_stale_wal = recovered_stale_wal;
        Ok(db)
    }

    /// Opens (or creates) a database persisted by the paged store
    /// ([`crate::pager::PagedRepo`]) instead of the monolithic snapshot:
    /// deltas commit through the pager's WAL and buffer pool, and
    /// [`Database::checkpoint`] publishes a manifest generation. The
    /// graph is materialized fully in memory at open — the in-memory
    /// fast path for sites that fit — while the paged store remains the
    /// durable authority (and serves out-of-core MVCC snapshots via
    /// [`Database::pager`]).
    pub fn open_paged(
        dir: &Path,
        level: IndexLevel,
        cfg: crate::pager::PagerConfig,
    ) -> Result<Self, RepoError> {
        Self::open_paged_with(dir, level, Arc::new(RealVfs), cfg)
    }

    /// [`Database::open_paged`] through an explicit [`Vfs`].
    pub fn open_paged_with(
        dir: &Path,
        level: IndexLevel,
        vfs: Arc<dyn Vfs>,
        cfg: crate::pager::PagerConfig,
    ) -> Result<Self, RepoError> {
        let pager = crate::pager::PagedRepo::open_with(vfs.clone(), dir, cfg)?;
        let graph = pager.snapshot().materialize()?;
        let mut db = Self::from_graph(graph, level);
        db.dir = Some(dir.to_owned());
        db.vfs = Some(vfs);
        db.generation = pager.generation();
        db.pager = Some(pager);
        Ok(db)
    }

    /// The paged store backing this database, when it was opened with
    /// [`Database::open_paged`].
    pub fn pager(&self) -> Option<&crate::pager::PagedRepo> {
        self.pager.as_ref()
    }

    /// Writes a fresh snapshot and truncates the WAL.
    ///
    /// The checkpoint protocol makes the generation counter do the
    /// bookkeeping: sync the WAL, write the next-generation snapshot
    /// durably (temp + fsync + rename + dir fsync), and only then recreate
    /// the WAL with the new generation in its header. A crash anywhere in
    /// between leaves either the old `(snapshot, log)` pair or a
    /// new-generation snapshot with a stale log that
    /// [`Database::open`] discards — never a double apply.
    pub fn checkpoint(&mut self) -> Result<(), RepoError> {
        if let Some(pager) = &self.pager {
            pager.checkpoint()?;
            self.generation = pager.generation();
            return Ok(());
        }
        let (Some(dir), Some(vfs)) = (self.dir.clone(), self.vfs.clone()) else {
            return Ok(()); // in-memory databases checkpoint trivially
        };
        let result = (|| {
            if let Some(w) = &mut self.wal {
                w.sync()?;
            }
            let next = self.generation + 1;
            snapshot::save_to_path_with(vfs.as_ref(), &self.graph, next, &dir.join("snapshot.bin"))?;
            self.generation = next;
            self.wal = Some(Wal::create_with(vfs.as_ref(), &dir.join("wal.log"), next)?);
            Ok(())
        })();
        if result.is_err() {
            // The WAL handle may now disagree with what is on disk; drop
            // it so further mutations fail fast instead of logging into an
            // inconsistent file. Reopening recovers.
            self.wal = None;
        }
        result
    }

    // ----- reads ---------------------------------------------------------

    /// The underlying graph (read-only).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the database, returning its graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// The configured index level.
    pub fn level(&self) -> IndexLevel {
        self.level
    }

    /// Bytes of a torn trailing WAL record discarded (and truncated away)
    /// when this database was opened; 0 for clean opens and in-memory
    /// databases.
    pub fn wal_discarded_bytes(&self) -> u64 {
        self.wal_discarded_bytes
    }

    /// The checkpoint generation this database is at: 0 until the first
    /// checkpoint, bumped by each successful one. The WAL header always
    /// records the generation of the snapshot it extends.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether opening found (and discarded) a stale WAL from a crash that
    /// landed between a checkpoint's snapshot rename and its WAL
    /// truncation. The discarded frames were already in the snapshot.
    pub fn recovered_stale_wal(&self) -> bool {
        self.recovered_stale_wal
    }

    /// The extension of attribute `label` — all `(source, target)` pairs —
    /// when extension indexes are maintained.
    pub fn extension(&self, label: Label) -> Option<&[(Oid, Value)]> {
        strudel_trace::count("repo.probe.extension", 1);
        self.indexes.extension.as_ref().map(|x| x.extension(label))
    }

    /// The sources of edges `x --label--> to`, when extension indexes are
    /// maintained.
    pub fn sources(&self, label: Label, to: &Value) -> Option<&[Oid]> {
        strudel_trace::count("repo.probe.sources", 1);
        self.indexes.extension.as_ref().map(|x| x.sources(label, to))
    }

    /// Every `(node, label)` location of the atomic value `v`, when the
    /// global value index is maintained.
    pub fn value_locations(&self, v: &Value) -> Option<&[(Oid, Label)]> {
        strudel_trace::count("repo.probe.value_locations", 1);
        self.indexes.value.as_ref().map(|x| x.locations(v))
    }

    /// The schema index, when maintained.
    pub fn schema_index(&self) -> Option<&SchemaIndex> {
        self.indexes.schema.as_ref()
    }

    /// Builds a [`DataGuide`](crate::DataGuide) over the node members of
    /// a collection — the discovered schema of that collection's objects.
    /// `None` when the collection is missing or has no node members.
    pub fn dataguide(&self, collection: &str) -> Option<crate::DataGuide> {
        let cid = self.graph.collection_id(collection)?;
        let roots: Vec<Oid> = self
            .graph
            .members(cid)
            .iter()
            .filter_map(Value::as_node)
            .collect();
        if roots.is_empty() {
            return None;
        }
        Some(crate::DataGuide::build(&self.graph, &roots))
    }

    /// A statistics snapshot for the optimizer, computed lazily and cached
    /// until the next mutation.
    pub fn stats(&self) -> Arc<Stats> {
        let mut slot = self.stats.lock().unwrap();
        if let Some(s) = slot.as_ref() {
            return Arc::clone(s);
        }
        let s = Arc::new(Stats::compute(&self.graph));
        *slot = Some(Arc::clone(&s));
        s
    }

    /// The cached statistics snapshot, if one is live — `None` after any
    /// mutation. Unlike [`Database::stats`] this never computes.
    pub fn cached_stats(&self) -> Option<Arc<Stats>> {
        self.stats.lock().unwrap().clone()
    }

    /// Installs a statistics snapshot into the cache without scanning the
    /// graph. The incremental engine carries slightly-stale stats across
    /// small deltas this way: the planner only consumes relative
    /// cardinalities, so a bounded drift changes join orders at worst —
    /// never results. Callers own the staleness bound.
    pub fn seed_stats(&self, stats: Arc<Stats>) {
        *self.stats.lock().unwrap() = Some(stats);
    }

    // ----- mutations -----------------------------------------------------

    /// Creates an anonymous node.
    pub fn add_node(&mut self) -> Result<Oid, RepoError> {
        self.log_one(DeltaOp::AddNode { name: None })?;
        self.invalidate();
        Ok(self.graph.add_node())
    }

    /// Creates (or fetches) a named node.
    pub fn add_named_node(&mut self, name: &str) -> Result<Oid, RepoError> {
        if let Some(oid) = self.graph.node_by_name(name) {
            return Ok(oid); // no-op, nothing to log
        }
        self.log_one(DeltaOp::AddNode {
            name: Some(name.into()),
        })?;
        self.invalidate();
        Ok(self.graph.add_named_node(name))
    }

    /// Adds an edge, maintaining all indexes. Both endpoints must exist:
    /// a dangling edge would be logged but refused by replay (and by the
    /// snapshot loader), poisoning the database's own WAL.
    pub fn add_edge(&mut self, from: Oid, label: &str, to: Value) -> Result<(), RepoError> {
        if !self.graph.contains_node(from) {
            return Err(DeltaError::UnknownNode(from).into());
        }
        if let Some(o) = to.as_node() {
            if !self.graph.contains_node(o) {
                return Err(DeltaError::UnknownNode(o).into());
            }
        }
        self.log_one(DeltaOp::AddEdge {
            from,
            label: label.into(),
            to: to.clone(),
        })?;
        self.apply_add_edge(from, label, to);
        Ok(())
    }

    /// Removes one occurrence of an edge. Returns whether it existed.
    pub fn remove_edge(&mut self, from: Oid, label: &str, to: &Value) -> Result<bool, RepoError> {
        let Some(l) = self.graph.label(label) else {
            return Ok(false);
        };
        if !self.graph.has_edge(from, l, to) {
            return Ok(false);
        }
        self.log_one(DeltaOp::RemoveEdge {
            from,
            label: label.into(),
            to: to.clone(),
        })?;
        self.apply_remove_edge(from, l, to);
        Ok(true)
    }

    /// Adds `member` to a named collection. A node member must exist (see
    /// [`Database::add_edge`] on why a dangling reference cannot be
    /// allowed into the WAL).
    pub fn collect(&mut self, collection: &str, member: Value) -> Result<bool, RepoError> {
        if let Some(o) = member.as_node() {
            if !self.graph.contains_node(o) {
                return Err(DeltaError::UnknownNode(o).into());
            }
        }
        let cid = self.graph.intern_collection(collection);
        if self.graph.in_collection(cid, &member) {
            return Ok(false);
        }
        self.log_one(DeltaOp::Collect {
            collection: collection.into(),
            member: member.clone(),
        })?;
        self.invalidate();
        if let Some(s) = &mut self.indexes.schema {
            s.note_member(collection, 1);
        }
        Ok(self.graph.collect(cid, member))
    }

    /// Removes `member` from a named collection.
    pub fn uncollect(&mut self, collection: &str, member: &Value) -> Result<bool, RepoError> {
        let Some(cid) = self.graph.collection_id(collection) else {
            return Ok(false);
        };
        if !self.graph.in_collection(cid, member) {
            return Ok(false);
        }
        self.log_one(DeltaOp::Uncollect {
            collection: collection.into(),
            member: member.clone(),
        })?;
        self.invalidate();
        if let Some(s) = &mut self.indexes.schema {
            s.note_member(collection, -1);
        }
        Ok(self.graph.uncollect(cid, member))
    }

    /// Applies a whole delta as one WAL record, keeping indexes in sync.
    ///
    /// The delta is validated against the current graph *before* it
    /// reaches the WAL (mirroring [`GraphDelta::apply`]'s semantics,
    /// including intra-delta dependencies like add-node-then-edge-to-it).
    /// A rejected delta therefore leaves graph, indexes, *and log*
    /// untouched — logging first and validating later would durably
    /// record a delta that replay refuses, breaking the next open. A
    /// failed WAL append likewise leaves the in-memory state untouched.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<Vec<Oid>, RepoError> {
        validate_delta(&self.graph, delta)?;
        self.wal_append(delta)?;
        let mut created = Vec::new();
        for op in delta.ops() {
            match op {
                DeltaOp::AddNode { name } => {
                    let oid = match name {
                        Some(n) => self.graph.add_named_node(n),
                        None => self.graph.add_node(),
                    };
                    created.push(oid);
                }
                DeltaOp::AddEdge { from, label, to } => {
                    if !self.graph.contains_node(*from) {
                        return Err(strudel_graph::DeltaError::UnknownNode(*from).into());
                    }
                    self.apply_add_edge(*from, label, to.clone());
                }
                DeltaOp::RemoveEdge { from, label, to } => {
                    let l = self.graph.label(label).ok_or_else(|| {
                        RepoError::Delta(strudel_graph::DeltaError::MissingEdge {
                            from: *from,
                            label: label.clone(),
                        })
                    })?;
                    if !self.graph.has_edge(*from, l, to) {
                        return Err(strudel_graph::DeltaError::MissingEdge {
                            from: *from,
                            label: label.clone(),
                        }
                        .into());
                    }
                    self.apply_remove_edge(*from, l, to);
                }
                DeltaOp::Collect { collection, member } => {
                    let cid = self.graph.intern_collection(collection);
                    if self.graph.collect(cid, member.clone()) {
                        if let Some(s) = &mut self.indexes.schema {
                            s.note_member(collection, 1);
                        }
                    }
                }
                DeltaOp::Uncollect { collection, member } => {
                    let cid = self.graph.collection_id(collection).ok_or_else(|| {
                        RepoError::Delta(strudel_graph::DeltaError::MissingMember {
                            collection: collection.clone(),
                        })
                    })?;
                    if self.graph.uncollect(cid, member) {
                        if let Some(s) = &mut self.indexes.schema {
                            s.note_member(collection, -1);
                        }
                    }
                }
            }
        }
        self.invalidate();
        Ok(created)
    }

    /// Rebuilds all indexes from scratch (used after bulk graph surgery
    /// and by tests to cross-check incremental maintenance).
    pub fn rebuild_indexes(&mut self) {
        self.indexes = build_indexes(&self.graph, self.level);
        self.invalidate();
    }

    // ----- internals ------------------------------------------------------

    fn apply_add_edge(&mut self, from: Oid, label: &str, to: Value) {
        let l = self.graph.intern_label(label);
        if let Some(s) = &mut self.indexes.schema {
            s.note_edge(l, &to);
        }
        if let Some(x) = &mut self.indexes.extension {
            x.note_edge(from, l, &to);
        }
        if let Some(v) = &mut self.indexes.value {
            v.note_edge(from, l, &to);
        }
        self.graph.add_edge(from, l, to);
        self.invalidate();
    }

    fn apply_remove_edge(&mut self, from: Oid, l: Label, to: &Value) {
        if let Some(s) = &mut self.indexes.schema {
            s.forget_edge(l, to);
        }
        if let Some(x) = &mut self.indexes.extension {
            x.forget_edge(from, l, to);
        }
        if let Some(v) = &mut self.indexes.value {
            v.forget_edge(from, l, to);
        }
        self.graph.remove_edge(from, l, to);
        self.invalidate();
    }

    fn log_one(&mut self, op: DeltaOp) -> Result<(), RepoError> {
        let mut d = GraphDelta::new();
        d.push(op);
        self.wal_append(&d)
    }

    /// Appends `delta` to the WAL, if there is one. A failed append
    /// poisons the log: the frame may sit torn on disk, and appending
    /// after it would turn a recoverable torn *tail* into mid-log
    /// corruption. The database refuses further writes until reopened
    /// (reopen discards the torn frame and resumes cleanly).
    fn wal_append(&mut self, delta: &GraphDelta) -> Result<(), RepoError> {
        if let Some(pager) = &self.pager {
            let _span = strudel_trace::span("repo.wal.append");
            strudel_trace::count("repo.wal.appends", 1);
            // The paged store validates, WAL-appends, and commits the
            // delta to copy-on-write pages in one atomic step.
            return pager.apply_delta(delta);
        }
        let res = match self.wal_mut()? {
            Some(wal) => {
                let _span = strudel_trace::span("repo.wal.append");
                strudel_trace::count("repo.wal.appends", 1);
                wal.append(delta)
            }
            None => Ok(()),
        };
        if res.is_err() {
            self.wal = None;
        }
        res
    }

    /// The WAL to log into: `None` for in-memory databases, an error for
    /// a persistent database whose WAL was dropped by a failed checkpoint
    /// (silently skipping the log there would un-persist mutations).
    fn wal_mut(&mut self) -> Result<Option<&mut Wal>, RepoError> {
        if self.dir.is_some() && self.wal.is_none() && self.pager.is_none() {
            return Err(RepoError::Io(std::io::Error::other(
                "write-ahead log unavailable after a failed checkpoint; reopen the database",
            )));
        }
        Ok(self.wal.as_mut())
    }

    fn invalidate(&mut self) {
        *self.stats.lock().unwrap() = None;
    }
}

/// Dry-runs `delta` against `graph`, reporting the error
/// [`GraphDelta::apply`] would raise — without mutating anything.
///
/// The simulation tracks intra-delta effects with overlays: nodes created
/// earlier in the delta count for later ops, edge add/remove multiplicity
/// nets out, and collection membership follows the collect/uncollect
/// sequence. The invariant that matters: every delta this function
/// accepts must replay cleanly through [`GraphDelta::apply`] on the same
/// graph state, because that is exactly what [`Database::open`] does with
/// the WAL.
fn validate_delta(graph: &Graph, delta: &GraphDelta) -> Result<(), DeltaError> {
    // Virtual node count: graph nodes plus nodes this delta creates.
    // AddNode with an already-taken name fetches the existing node
    // instead of creating one, so names dedupe against both the graph
    // and earlier ops of the delta.
    let mut node_count = graph.node_count();
    let mut new_names: HashSet<&str> = HashSet::new();
    // Net intra-delta edge multiplicity, on top of the graph's count.
    let mut edge_overlay: HashMap<(Oid, &str, &Value), i64> = HashMap::new();
    // Collection membership decided by this delta (collections are sets).
    let mut member_overlay: HashMap<(&str, &Value), bool> = HashMap::new();
    let mut new_collections: HashSet<&str> = HashSet::new();
    let check_node = |count: usize, v: &Value| -> Result<(), DeltaError> {
        if let Some(o) = v.as_node() {
            if o.index() >= count {
                return Err(DeltaError::UnknownNode(o));
            }
        }
        Ok(())
    };
    for op in delta.ops() {
        match op {
            DeltaOp::AddNode { name } => match name {
                Some(n) => {
                    if graph.node_by_name(n).is_none() && new_names.insert(n.as_ref()) {
                        node_count += 1;
                    }
                }
                None => node_count += 1,
            },
            DeltaOp::AddEdge { from, label, to } => {
                if from.index() >= node_count {
                    return Err(DeltaError::UnknownNode(*from));
                }
                check_node(node_count, to)?;
                *edge_overlay.entry((*from, label.as_ref(), to)).or_insert(0) += 1;
            }
            DeltaOp::RemoveEdge { from, label, to } => {
                if from.index() >= node_count {
                    return Err(DeltaError::UnknownNode(*from));
                }
                let base = if from.index() < graph.node_count() {
                    graph
                        .label(label)
                        .map(|l| {
                            graph
                                .edges(*from)
                                .iter()
                                .filter(|e| e.label == l && e.to == *to)
                                .count() as i64
                        })
                        .unwrap_or(0)
                } else {
                    0
                };
                let overlay = edge_overlay.entry((*from, label.as_ref(), to)).or_insert(0);
                if base + *overlay <= 0 {
                    return Err(DeltaError::MissingEdge {
                        from: *from,
                        label: label.clone(),
                    });
                }
                *overlay -= 1;
            }
            DeltaOp::Collect { collection, member } => {
                check_node(node_count, member)?;
                new_collections.insert(collection.as_ref());
                member_overlay.insert((collection.as_ref(), member), true);
            }
            DeltaOp::Uncollect { collection, member } => {
                let exists = graph.collection_id(collection).is_some()
                    || new_collections.contains(collection.as_ref());
                if !exists {
                    return Err(DeltaError::MissingMember {
                        collection: collection.clone(),
                    });
                }
                let present = member_overlay
                    .get(&(collection.as_ref(), member))
                    .copied()
                    .unwrap_or_else(|| {
                        graph
                            .collection_id(collection)
                            .map(|cid| graph.in_collection(cid, member))
                            .unwrap_or(false)
                    });
                if !present {
                    return Err(DeltaError::MissingMember {
                        collection: collection.clone(),
                    });
                }
                member_overlay.insert((collection.as_ref(), member), false);
            }
        }
    }
    Ok(())
}

fn build_indexes(graph: &Graph, level: IndexLevel) -> IndexSet {
    match level {
        IndexLevel::None => IndexSet::default(),
        IndexLevel::ExtensionOnly => IndexSet {
            schema: Some(SchemaIndex::build(graph)),
            extension: Some(ExtensionIndex::build(graph)),
            value: None,
        },
        IndexLevel::Full => IndexSet {
            schema: Some(SchemaIndex::build(graph)),
            extension: Some(ExtensionIndex::build(graph)),
            value: Some(ValueIndex::build(graph)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("strudel-db-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn mutations_keep_indexes_in_sync() {
        let mut db = Database::new(IndexLevel::Full);
        let a = db.add_named_node("a").unwrap();
        db.add_edge(a, "year", Value::Int(1998)).unwrap();
        db.add_edge(a, "year", Value::Int(1997)).unwrap();
        let year = db.graph().label("year").unwrap();
        assert_eq!(db.extension(year).unwrap().len(), 2);
        assert_eq!(db.sources(year, &Value::Int(1998)).unwrap().len(), 1);
        assert_eq!(db.value_locations(&Value::Int(1998)).unwrap().len(), 1);

        db.remove_edge(a, "year", &Value::Int(1998)).unwrap();
        assert_eq!(db.extension(year).unwrap().len(), 1);
        assert_eq!(db.sources(year, &Value::Int(1998)).unwrap().len(), 0);
        assert_eq!(db.value_locations(&Value::Int(1998)).unwrap().len(), 0);
    }

    #[test]
    fn index_level_none_disables_indexes() {
        let mut db = Database::new(IndexLevel::None);
        let a = db.add_node().unwrap();
        db.add_edge(a, "x", Value::Int(1)).unwrap();
        let x = db.graph().label("x").unwrap();
        assert!(db.extension(x).is_none());
        assert!(db.value_locations(&Value::Int(1)).is_none());
        assert!(db.schema_index().is_none());
    }

    #[test]
    fn extension_only_omits_value_index() {
        let mut db = Database::new(IndexLevel::ExtensionOnly);
        let a = db.add_node().unwrap();
        db.add_edge(a, "x", Value::Int(1)).unwrap();
        let x = db.graph().label("x").unwrap();
        assert!(db.extension(x).is_some());
        assert!(db.value_locations(&Value::Int(1)).is_none());
    }

    #[test]
    fn stats_cache_invalidates_on_mutation() {
        let mut db = Database::new(IndexLevel::Full);
        let a = db.add_node().unwrap();
        let s1 = db.stats();
        assert_eq!(s1.edges, 0);
        db.add_edge(a, "x", Value::Int(1)).unwrap();
        let s2 = db.stats();
        assert_eq!(s2.edges, 1);
    }

    #[test]
    fn incremental_indexes_match_rebuilt_indexes() {
        let mut db = Database::new(IndexLevel::Full);
        let a = db.add_named_node("a").unwrap();
        let b = db.add_named_node("b").unwrap();
        db.add_edge(a, "p", Value::Node(b)).unwrap();
        db.add_edge(a, "q", Value::string("s")).unwrap();
        db.add_edge(b, "q", Value::string("s")).unwrap();
        db.remove_edge(a, "q", &Value::string("s")).unwrap();
        db.collect("C", Value::Node(a)).unwrap();

        let q = db.graph().label("q").unwrap();
        let incr_ext: Vec<_> = db.extension(q).unwrap().to_vec();
        let incr_locs = db.value_locations(&Value::string("s")).unwrap().len();
        let incr_coll = db.schema_index().unwrap().collection_size("C");

        db.rebuild_indexes();
        assert_eq!(db.extension(q).unwrap().to_vec(), incr_ext);
        assert_eq!(
            db.value_locations(&Value::string("s")).unwrap().len(),
            incr_locs
        );
        assert_eq!(db.schema_index().unwrap().collection_size("C"), incr_coll);
    }

    #[test]
    fn persistence_round_trip() {
        let dir = tmpdir("persist");
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.add_named_node("a").unwrap();
            db.add_edge(a, "title", Value::string("Strudel")).unwrap();
            db.collect("Pubs", Value::Node(a)).unwrap();
        } // drop without checkpoint: state lives in the WAL
        {
            let db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.graph().node_by_name("a").unwrap();
            assert_eq!(
                db.graph().first_attr_str(a, "title").unwrap().as_str(),
                Some("Strudel")
            );
            assert_eq!(db.graph().members_str("Pubs").len(), 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_recovers_from_torn_wal_tail_and_appends_cleanly() {
        let dir = tmpdir("torn-tail");
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.add_named_node("a").unwrap();
            db.add_edge(a, "v", Value::Int(1)).unwrap();
            db.add_edge(a, "v", Value::Int(2)).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the last record.
        let wal_path = dir.join("wal.log");
        let full = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &full[..full.len() - 3]).unwrap();
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            assert!(db.wal_discarded_bytes() > 0, "torn tail was reported");
            let a = db.graph().node_by_name("a").unwrap();
            // The torn record (v=2) is gone; the committed one survives.
            assert_eq!(db.graph().attr_str(a, "v").count(), 1);
            // Recovery truncated the garbage, so new appends replay.
            db.add_edge(a, "v", Value::Int(3)).unwrap();
        }
        {
            let db = Database::open(&dir, IndexLevel::Full).unwrap();
            assert_eq!(db.wal_discarded_bytes(), 0, "clean reopen");
            let a = db.graph().node_by_name("a").unwrap();
            assert_eq!(db.graph().attr_str(a, "v").count(), 2);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_wal() {
        let dir = tmpdir("ckpt");
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.add_named_node("a").unwrap();
            db.add_edge(a, "v", Value::Int(1)).unwrap();
            db.checkpoint().unwrap();
            // WAL should now be just the header (magic + generation).
            let wal_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
            assert_eq!(wal_len, wal::HEADER_LEN);
            assert_eq!(db.generation(), 1);
            db.add_edge(a, "v", Value::Int(2)).unwrap();
        }
        {
            let db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.graph().node_by_name("a").unwrap();
            assert_eq!(db.graph().attr_str(a, "v").count(), 2);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn named_node_is_idempotent_without_duplicate_log() {
        let dir = tmpdir("idem");
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a1 = db.add_named_node("a").unwrap();
            let a2 = db.add_named_node("a").unwrap();
            assert_eq!(a1, a2);
        }
        {
            let db = Database::open(&dir, IndexLevel::Full).unwrap();
            assert_eq!(db.graph().node_count(), 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn apply_delta_is_one_wal_record() {
        let dir = tmpdir("delta");
        let mut d = GraphDelta::new();
        d.add_node(Some("x"));
        d.add_edge(Oid::from_index(0), "v", Value::Int(1));
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            db.apply_delta(&d).unwrap();
        }
        let records = wal::replay(&dir.join("wal.log")).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dataguide_over_a_collection() {
        let mut db = Database::new(IndexLevel::Full);
        let a = db.add_named_node("a").unwrap();
        db.add_edge(a, "title", Value::string("T")).unwrap();
        db.collect("Pubs", Value::Node(a)).unwrap();
        let guide = db.dataguide("Pubs").unwrap();
        assert_eq!(guide.nodes[0].cardinality, 1);
        assert!(db.dataguide("Ghost").is_none());
        db.collect("Atoms", Value::Int(1)).unwrap();
        assert!(db.dataguide("Atoms").is_none(), "no node members");
    }

    #[test]
    fn open_rejects_corrupt_snapshot() {
        let dir = tmpdir("corrupt-snap");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("snapshot.bin"), b"not a snapshot").unwrap();
        assert!(matches!(
            Database::open(&dir, IndexLevel::Full),
            Err(RepoError::Corrupt { .. }) | Err(RepoError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_discards_torn_wal_tail() {
        let dir = tmpdir("torn-tail-discard");
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.add_named_node("a").unwrap();
            db.add_edge(a, "v", Value::Int(1)).unwrap();
            db.add_edge(a, "v", Value::Int(2)).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the log.
        let wal_path = dir.join("wal.log");
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();
        let db = Database::open(&dir, IndexLevel::Full).unwrap();
        let a = db.graph().node_by_name("a").unwrap();
        // The first committed edge survives; the torn one is discarded.
        assert_eq!(db.graph().attr_str(a, "v").count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_with_newer_wal_is_a_precise_error() {
        let dir = tmpdir("missing-snap");
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.add_named_node("a").unwrap();
            db.add_edge(a, "v", Value::Int(1)).unwrap();
            db.checkpoint().unwrap(); // WAL is now generation 1
        }
        std::fs::remove_file(dir.join("snapshot.bin")).unwrap();
        match Database::open(&dir, IndexLevel::Full) {
            Err(RepoError::Corrupt { what, message, .. }) => {
                assert_eq!(what, "wal");
                assert!(message.contains("snapshot"), "message: {message}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_after_interrupted_truncation_is_not_reapplied() {
        let dir = tmpdir("stale-wal");
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.add_named_node("a").unwrap();
            db.add_edge(a, "v", Value::Int(1)).unwrap();
            let old_wal = std::fs::read(dir.join("wal.log")).unwrap();
            db.checkpoint().unwrap();
            drop(db);
            // Crash window: the snapshot rename landed but the WAL reset
            // didn't — the old generation-0 log is still on disk.
            std::fs::write(dir.join("wal.log"), &old_wal).unwrap();
        }
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            assert!(db.recovered_stale_wal(), "stale log was detected");
            let a = db.graph().node_by_name("a").unwrap();
            assert_eq!(db.graph().attr_str(a, "v").count(), 1, "no double apply");
            db.add_edge(a, "v", Value::Int(2)).unwrap();
        }
        {
            let db = Database::open(&dir, IndexLevel::Full).unwrap();
            assert!(!db.recovered_stale_wal());
            let a = db.graph().node_by_name("a").unwrap();
            assert_eq!(db.graph().attr_str(a, "v").count(), 2);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_snapshot_tmp_is_cleaned_up_on_open() {
        let dir = tmpdir("stray-tmp");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("snapshot.tmp"), b"half-written junk").unwrap();
        let db = Database::open(&dir, IndexLevel::Full).unwrap();
        assert_eq!(db.graph().node_count(), 0);
        assert!(!dir.join("snapshot.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejected_delta_leaves_graph_and_wal_untouched() {
        let dir = tmpdir("reject-delta");
        {
            let mut db = Database::open(&dir, IndexLevel::Full).unwrap();
            let a = db.add_named_node("a").unwrap();
            db.add_edge(a, "v", Value::Int(1)).unwrap();

            let mut bad = GraphDelta::new();
            bad.add_edge(a, "w", Value::Int(9));
            bad.remove_edge(a, "ghost", Value::Int(0)); // will be rejected
            assert!(db.apply_delta(&bad).is_err());
            assert_eq!(db.graph().attr_str(a, "w").count(), 0, "no partial apply");
        }
        {
            // The rejected delta never reached the log, so replay is clean.
            let db = Database::open(&dir, IndexLevel::Full).unwrap();
            assert_eq!(db.wal_discarded_bytes(), 0);
            let a = db.graph().node_by_name("a").unwrap();
            assert_eq!(db.graph().attr_str(a, "v").count(), 1);
            assert_eq!(db.graph().attr_str(a, "w").count(), 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validate_delta_tracks_intra_delta_effects() {
        let mut db = Database::new(IndexLevel::Full);
        let a = db.add_named_node("a").unwrap();

        // Add-then-remove within one delta is fine.
        let mut d = GraphDelta::new();
        d.add_edge(a, "x", Value::Int(1));
        d.remove_edge(a, "x", Value::Int(1));
        db.apply_delta(&d).unwrap();

        // Removing twice what was added once is not.
        let mut d = GraphDelta::new();
        d.add_edge(a, "y", Value::Int(1));
        d.remove_edge(a, "y", Value::Int(1));
        d.remove_edge(a, "y", Value::Int(1));
        assert!(db.apply_delta(&d).is_err());

        // An edge from a node created earlier in the same delta is fine;
        // an edge to a node the delta never creates is not.
        let mut d = GraphDelta::new();
        d.add_node(Some("b")); // will become index 1
        d.add_edge(Oid::from_index(1), "p", Value::Int(2));
        db.apply_delta(&d).unwrap();
        let mut d = GraphDelta::new();
        d.add_edge(Oid::from_index(999), "p", Value::Int(3));
        assert!(db.apply_delta(&d).is_err());

        // Collect-then-uncollect in one delta; uncollect of a member that
        // was never collected fails.
        let mut d = GraphDelta::new();
        d.collect("C", Value::Node(a));
        d.uncollect("C", Value::Node(a));
        db.apply_delta(&d).unwrap();
        let mut d = GraphDelta::new();
        d.uncollect("C", Value::Int(77));
        assert!(db.apply_delta(&d).is_err());
    }

    #[test]
    fn failed_checkpoint_poisons_the_wal_until_reopen() {
        use crate::vfs::{FaultMode, FaultVfs};
        let dir = tmpdir("poison");
        let vfs = FaultVfs::new();
        let mut db =
            Database::open_with(&dir, IndexLevel::Full, Arc::new(vfs.clone())).unwrap();
        let a = db.add_named_node("a").unwrap();
        db.add_edge(a, "v", Value::Int(1)).unwrap();
        // Transient fault on the next operation (the checkpoint's WAL
        // sync): the checkpoint fails but the process lives on.
        vfs.arm_fault(vfs.op_count(), FaultMode::Fail);
        assert!(db.checkpoint().is_err());
        // Mutations must now refuse rather than go un-logged.
        let err = db.add_edge(a, "v", Value::Int(2)).unwrap_err();
        assert!(
            err.to_string().contains("reopen"),
            "got: {err}"
        );
        drop(db);
        // Reopen recovers everything that was committed.
        let db = Database::open(&dir, IndexLevel::Full).unwrap();
        let a = db.graph().node_by_name("a").unwrap();
        assert_eq!(db.graph().attr_str(a, "v").count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_mutations_reject_dangling_references() {
        let mut db = Database::new(IndexLevel::Full);
        let a = db.add_node().unwrap();
        let ghost = Oid::from_index(42);
        assert!(db.add_edge(ghost, "p", Value::Int(1)).is_err());
        assert!(db.add_edge(a, "p", Value::Node(ghost)).is_err());
        assert!(db.collect("C", Value::Node(ghost)).is_err());
        // Nothing leaked into the graph or schema index.
        assert_eq!(db.graph().edge_count(), 0);
        assert!(db.graph().collection_id("C").is_none());
    }

    #[test]
    fn collect_uncollect_updates_schema_index() {
        let mut db = Database::new(IndexLevel::Full);
        let a = db.add_node().unwrap();
        db.collect("C", Value::Node(a)).unwrap();
        assert_eq!(db.schema_index().unwrap().collection_size("C"), 1);
        assert!(!db.collect("C", Value::Node(a)).unwrap(), "duplicate");
        assert_eq!(db.schema_index().unwrap().collection_size("C"), 1);
        db.uncollect("C", &Value::Node(a)).unwrap();
        assert_eq!(db.schema_index().unwrap().collection_size("C"), 0);
    }
}
