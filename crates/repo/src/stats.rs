//! Cardinality statistics for the query optimizer.
//!
//! The traditional way to pick join orders is schema-derived statistics;
//! with no schema, Strudel derives them from the indexes. [`Stats`] is the
//! read-only summary the STRUQL planner consumes: per-attribute edge
//! counts, distinct source/target counts (for selectivity), collection
//! cardinalities, and graph totals.

use std::collections::{HashMap, HashSet};
use strudel_graph::{Graph, Label, Value};

/// Statistics for one attribute label.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LabelStats {
    /// Total edges with this label.
    pub edges: usize,
    /// Distinct source nodes.
    pub distinct_sources: usize,
    /// Distinct target values.
    pub distinct_targets: usize,
}

impl LabelStats {
    /// Expected number of targets per bound source (fan-out), at least 1.
    pub fn fanout(&self) -> f64 {
        if self.distinct_sources == 0 {
            0.0
        } else {
            self.edges as f64 / self.distinct_sources as f64
        }
    }

    /// Expected number of sources per bound target (fan-in), at least 1.
    pub fn fanin(&self) -> f64 {
        if self.distinct_targets == 0 {
            0.0
        } else {
            self.edges as f64 / self.distinct_targets as f64
        }
    }
}

/// Graph-wide statistics snapshot.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    labels: HashMap<Label, LabelStats>,
    collections: HashMap<String, usize>,
    /// Total node count.
    pub nodes: usize,
    /// Total edge count.
    pub edges: usize,
}

impl Stats {
    /// Computes statistics by scanning `graph`.
    pub fn compute(graph: &Graph) -> Self {
        let mut per_label: PerLabelAcc = HashMap::new();
        for oid in graph.node_oids() {
            for e in graph.edges(oid) {
                note_edge_stat(&mut per_label, e.label, oid.index(), &e.to);
            }
        }
        let labels = per_label
            .into_iter()
            .map(|(l, (edges, srcs, tgts))| {
                (
                    l,
                    LabelStats {
                        edges,
                        distinct_sources: srcs.len(),
                        distinct_targets: tgts.len(),
                    },
                )
            })
            .collect();
        let collections = graph
            .collections()
            .map(|(cid, name)| (name.to_owned(), graph.members(cid).len()))
            .collect();
        Stats {
            labels,
            collections,
            nodes: graph.node_count(),
            edges: graph.edge_count(),
        }
    }

    /// Statistics for one label; zeros when the label is unused.
    pub fn label(&self, label: Label) -> LabelStats {
        self.labels.get(&label).cloned().unwrap_or_default()
    }

    /// Cardinality of a collection by name.
    pub fn collection_size(&self, name: &str) -> usize {
        self.collections.get(name).copied().unwrap_or(0)
    }

    /// Average out-degree of nodes in the graph, at least a small epsilon.
    pub fn avg_degree(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.edges as f64 / self.nodes as f64
        }
    }
}

/// Per-label accumulator: edge count, distinct source indexes, distinct
/// target values. Source indexes are kept at full `usize` width — a
/// narrower set type silently collides oids past its range and skews the
/// planner's selectivity estimates.
type PerLabelAcc = HashMap<Label, (usize, HashSet<usize>, HashSet<Value>)>;

fn note_edge_stat(per_label: &mut PerLabelAcc, label: Label, src_index: usize, to: &Value) {
    let entry = per_label.entry(label).or_default();
    entry.0 += 1;
    entry.1.insert(src_index);
    entry.2.insert(to.clone());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_per_label_stats() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge_str(a, "year", Value::Int(1998));
        g.add_edge_str(b, "year", Value::Int(1998));
        g.add_edge_str(b, "year", Value::Int(1997));
        let s = Stats::compute(&g);
        let year = g.label("year").unwrap();
        let ls = s.label(year);
        assert_eq!(ls.edges, 3);
        assert_eq!(ls.distinct_sources, 2);
        assert_eq!(ls.distinct_targets, 2);
        assert!((ls.fanout() - 1.5).abs() < 1e-9);
        assert!((ls.fanin() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn collection_sizes_and_totals() {
        let mut g = Graph::new();
        let a = g.add_node();
        g.collect_str("C", a);
        let s = Stats::compute(&g);
        assert_eq!(s.collection_size("C"), 1);
        assert_eq!(s.collection_size("D"), 0);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.edges, 0);
        assert_eq!(s.avg_degree(), 0.0);
    }

    /// Regression: the accumulator used to narrow source indexes to `u32`,
    /// so oids 2^32 apart counted as one distinct source. `Oid`
    /// construction debug-asserts a u32-sized index, so the regression is
    /// pinned at the accumulator level with raw indexes.
    #[test]
    #[cfg(target_pointer_width = "64")]
    fn large_oid_indexes_stay_distinct() {
        let mut g = Graph::new();
        let label = g.intern_label("cites");
        let mut acc = PerLabelAcc::new();
        let low: usize = 1;
        let high: usize = (1usize << 32) + 1; // == low as u32
        note_edge_stat(&mut acc, label, low, &Value::Int(7));
        note_edge_stat(&mut acc, label, high, &Value::Int(7));
        let (edges, srcs, tgts) = &acc[&label];
        assert_eq!(*edges, 2);
        assert_eq!(srcs.len(), 2, "indexes colliding mod 2^32 must stay distinct");
        assert_eq!(tgts.len(), 1);
    }

    #[test]
    fn unused_label_reports_zeros() {
        let mut g = Graph::new();
        let l = g.intern_label("ghost");
        let s = Stats::compute(&g);
        assert_eq!(s.label(l), LabelStats::default());
        assert_eq!(s.label(l).fanout(), 0.0);
    }
}
