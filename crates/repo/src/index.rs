//! The repository's index structures.
//!
//! Three families, mirroring §2.1 of the paper:
//!
//! * [`SchemaIndex`] — "one index contains the names of all the collections
//!   and attributes in the graph": per-attribute and per-collection usage
//!   counts plus the set of value types each attribute has been observed
//!   with. STRUQL queries the schema through arc variables, and the
//!   optimizer reads cardinalities from here.
//! * [`ExtensionIndex`] — "other indexes contain the extensions for each
//!   collection and attribute": for every attribute label, the full list of
//!   `(source, target)` pairs, plus an inverted map from target value to
//!   sources for value-to-source joins.
//! * [`ValueIndex`] — "indexes on atomic values are global to the graph,
//!   not built per collection or attribute": atomic value → every
//!   `(node, label)` location where it appears.
//!
//! All indexes are maintained incrementally by [`Database`](crate::Database)
//! and can be rebuilt from the graph with `build`.

use std::collections::HashMap;
use strudel_graph::{Graph, Label, Oid, Value};

/// Per-attribute schema facts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AttributeInfo {
    /// Number of edges carrying this label.
    pub edge_count: usize,
    /// Names of value types observed as targets, with counts.
    pub value_types: HashMap<&'static str, usize>,
}

/// The schema index: what attribute names and collection names exist, and
/// how heavily each is used.
#[derive(Clone, Debug, Default)]
pub struct SchemaIndex {
    attributes: HashMap<Label, AttributeInfo>,
    collections: HashMap<String, usize>,
}

impl SchemaIndex {
    /// Builds the schema index by scanning `graph`.
    pub fn build(graph: &Graph) -> Self {
        let mut idx = SchemaIndex::default();
        for oid in graph.node_oids() {
            for e in graph.edges(oid) {
                idx.note_edge(e.label, &e.to);
            }
        }
        for (cid, name) in graph.collections() {
            idx.collections
                .insert(name.to_owned(), graph.members(cid).len());
        }
        idx
    }

    pub(crate) fn note_edge(&mut self, label: Label, to: &Value) {
        let info = self.attributes.entry(label).or_default();
        info.edge_count += 1;
        *info.value_types.entry(to.type_name()).or_insert(0) += 1;
    }

    pub(crate) fn forget_edge(&mut self, label: Label, to: &Value) {
        if let Some(info) = self.attributes.get_mut(&label) {
            info.edge_count = info.edge_count.saturating_sub(1);
            if let Some(c) = info.value_types.get_mut(to.type_name()) {
                *c = c.saturating_sub(1);
                if *c == 0 {
                    info.value_types.remove(to.type_name());
                }
            }
        }
    }

    pub(crate) fn note_member(&mut self, collection: &str, delta: isize) {
        let c = self.collections.entry(collection.to_owned()).or_insert(0);
        *c = c.saturating_add_signed(delta);
    }

    /// Facts about one attribute, if any edge carries it.
    pub fn attribute(&self, label: Label) -> Option<&AttributeInfo> {
        self.attributes.get(&label)
    }

    /// Number of edges carrying `label`.
    pub fn edge_count(&self, label: Label) -> usize {
        self.attributes.get(&label).map_or(0, |i| i.edge_count)
    }

    /// Cardinality of the named collection.
    pub fn collection_size(&self, name: &str) -> usize {
        self.collections.get(name).copied().unwrap_or(0)
    }

    /// All attributes present in the graph.
    pub fn attributes(&self) -> impl Iterator<Item = (Label, &AttributeInfo)> + '_ {
        self.attributes.iter().map(|(&l, i)| (l, i))
    }

    /// All collections with their sizes.
    pub fn collections(&self) -> impl Iterator<Item = (&str, usize)> + '_ {
        self.collections.iter().map(|(n, &s)| (n.as_str(), s))
    }
}

/// Extension indexes: per-attribute `(source, target)` pairs and the
/// inverted target → sources map.
#[derive(Clone, Debug, Default)]
pub struct ExtensionIndex {
    /// label → all (from, to) pairs, in insertion order.
    forward: HashMap<Label, Vec<(Oid, Value)>>,
    /// (label, to) → sources.
    inverted: HashMap<(Label, Value), Vec<Oid>>,
}

impl ExtensionIndex {
    /// Builds the extension indexes by scanning `graph`.
    pub fn build(graph: &Graph) -> Self {
        let mut idx = ExtensionIndex::default();
        for oid in graph.node_oids() {
            for e in graph.edges(oid) {
                idx.note_edge(oid, e.label, &e.to);
            }
        }
        idx
    }

    pub(crate) fn note_edge(&mut self, from: Oid, label: Label, to: &Value) {
        self.forward
            .entry(label)
            .or_default()
            .push((from, to.clone()));
        self.inverted
            .entry((label, to.clone()))
            .or_default()
            .push(from);
    }

    pub(crate) fn forget_edge(&mut self, from: Oid, label: Label, to: &Value) {
        if let Some(pairs) = self.forward.get_mut(&label) {
            if let Some(pos) = pairs.iter().position(|(f, t)| *f == from && t == to) {
                pairs.swap_remove(pos);
            }
        }
        if let Some(sources) = self.inverted.get_mut(&(label, to.clone())) {
            if let Some(pos) = sources.iter().position(|f| *f == from) {
                sources.swap_remove(pos);
            }
        }
    }

    /// The full extension of attribute `label`.
    pub fn extension(&self, label: Label) -> &[(Oid, Value)] {
        self.forward.get(&label).map_or(&[], Vec::as_slice)
    }

    /// The sources `x` of edges `x --label--> to`.
    pub fn sources(&self, label: Label, to: &Value) -> &[Oid] {
        self.inverted
            .get(&(label, to.clone()))
            .map_or(&[], Vec::as_slice)
    }
}

/// The global value index: atomic value → every `(node, label)` location.
#[derive(Clone, Debug, Default)]
pub struct ValueIndex {
    locations: HashMap<Value, Vec<(Oid, Label)>>,
}

impl ValueIndex {
    /// Builds the value index by scanning `graph`.
    pub fn build(graph: &Graph) -> Self {
        let mut idx = ValueIndex::default();
        for oid in graph.node_oids() {
            for e in graph.edges(oid) {
                idx.note_edge(oid, e.label, &e.to);
            }
        }
        idx
    }

    pub(crate) fn note_edge(&mut self, from: Oid, label: Label, to: &Value) {
        if to.is_atomic() {
            self.locations
                .entry(to.clone())
                .or_default()
                .push((from, label));
        }
    }

    pub(crate) fn forget_edge(&mut self, from: Oid, label: Label, to: &Value) {
        if let Some(locs) = self.locations.get_mut(to) {
            if let Some(pos) = locs.iter().position(|(f, l)| *f == from && *l == label) {
                locs.swap_remove(pos);
            }
        }
    }

    /// Every `(node, label)` where the atomic value `v` appears as an edge
    /// target, regardless of attribute or collection.
    pub fn locations(&self, v: &Value) -> &[(Oid, Label)] {
        self.locations.get(v).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct atomic values indexed.
    pub fn distinct_values(&self) -> usize {
        self.locations.len()
    }
}

/// The bundle of indexes a [`Database`](crate::Database) maintains.
#[derive(Clone, Debug, Default)]
pub struct IndexSet {
    /// Schema index (present at every level above `None`).
    pub schema: Option<SchemaIndex>,
    /// Extension indexes.
    pub extension: Option<ExtensionIndex>,
    /// Global value index (only at `Full`).
    pub value: Option<ValueIndex>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_named_node("a");
        let b = g.add_named_node("b");
        g.add_edge_str(a, "year", Value::Int(1998));
        g.add_edge_str(b, "year", Value::Int(1998));
        g.add_edge_str(b, "year", Value::Int(1997));
        g.add_edge_str(a, "title", Value::string("x"));
        g.add_edge_str(a, "cites", Value::Node(b));
        g.collect_str("Pubs", a);
        g.collect_str("Pubs", b);
        g
    }

    #[test]
    fn schema_index_counts_edges_and_types() {
        let g = sample();
        let s = SchemaIndex::build(&g);
        let year = g.label("year").unwrap();
        assert_eq!(s.edge_count(year), 3);
        assert_eq!(s.attribute(year).unwrap().value_types["int"], 3);
        assert_eq!(s.collection_size("Pubs"), 2);
        assert_eq!(s.collection_size("NoSuch"), 0);
        assert_eq!(s.attributes().count(), 3);
    }

    #[test]
    fn schema_index_forgets_edges() {
        let g = sample();
        let mut s = SchemaIndex::build(&g);
        let year = g.label("year").unwrap();
        s.forget_edge(year, &Value::Int(1998));
        assert_eq!(s.edge_count(year), 2);
    }

    #[test]
    fn extension_index_forward_and_inverted() {
        let g = sample();
        let x = ExtensionIndex::build(&g);
        let year = g.label("year").unwrap();
        assert_eq!(x.extension(year).len(), 3);
        assert_eq!(x.sources(year, &Value::Int(1998)).len(), 2);
        assert_eq!(x.sources(year, &Value::Int(1996)).len(), 0);
    }

    #[test]
    fn extension_index_forget() {
        let g = sample();
        let mut x = ExtensionIndex::build(&g);
        let year = g.label("year").unwrap();
        let a = g.node_by_name("a").unwrap();
        x.forget_edge(a, year, &Value::Int(1998));
        assert_eq!(x.extension(year).len(), 2);
        assert_eq!(x.sources(year, &Value::Int(1998)).len(), 1);
    }

    #[test]
    fn value_index_is_global_and_atomic_only() {
        let g = sample();
        let v = ValueIndex::build(&g);
        // 1998 appears twice, under the same label but different nodes.
        assert_eq!(v.locations(&Value::Int(1998)).len(), 2);
        // Node-valued edges are not in the value index.
        let b = g.node_by_name("b").unwrap();
        assert_eq!(v.locations(&Value::Node(b)).len(), 0);
        assert_eq!(v.distinct_values(), 3); // 1998, 1997, "x"
    }

    #[test]
    fn value_index_forget() {
        let g = sample();
        let mut v = ValueIndex::build(&g);
        let a = g.node_by_name("a").unwrap();
        let year = g.label("year").unwrap();
        v.forget_edge(a, year, &Value::Int(1998));
        assert_eq!(v.locations(&Value::Int(1998)).len(), 1);
    }
}
