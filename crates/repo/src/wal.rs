//! Write-ahead log of graph deltas.
//!
//! Each committed [`GraphDelta`] is one length-prefixed record:
//!
//! ```text
//! file   := MAGIC record*
//! record := len:u32le payload[len]
//! payload := op_count:varint op*
//! ```
//!
//! Replay stops cleanly at a torn tail record (a crash mid-append), which
//! is the standard WAL recovery contract: committed records are whole,
//! the last record may be partial and is discarded.

use crate::codec::{read_str, read_value, read_varint, write_str, write_value, write_varint};
use crate::RepoError;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use strudel_graph::{DeltaOp, GraphDelta, Oid};

const MAGIC: &[u8; 8] = b"STRUWAL1";

const OP_ADD_NODE: u8 = 0;
const OP_ADD_NODE_NAMED: u8 = 1;
const OP_ADD_EDGE: u8 = 2;
const OP_REMOVE_EDGE: u8 = 3;
const OP_COLLECT: u8 = 4;
const OP_UNCOLLECT: u8 = 5;

/// An open, appendable write-ahead log.
#[derive(Debug)]
pub struct Wal {
    writer: BufWriter<File>,
}

impl Wal {
    /// Creates a new WAL file at `path`, truncating any existing one.
    pub fn create(path: &Path) -> Result<Self, RepoError> {
        let mut file = File::create(path)?;
        file.write_all(MAGIC)?;
        file.sync_all()?;
        Ok(Wal {
            writer: BufWriter::new(file),
        })
    }

    /// Opens an existing WAL for appending (creating it when missing).
    pub fn open_append(path: &Path) -> Result<Self, RepoError> {
        if !path.exists() {
            return Self::create(path);
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Wal {
            writer: BufWriter::new(file),
        })
    }

    /// Appends one delta as a single committed record and flushes it to the
    /// OS. Durability against power loss would additionally require
    /// `sync_data`; we flush per record and sync on checkpoint, a standard
    /// group-commit compromise.
    pub fn append(&mut self, delta: &GraphDelta) -> Result<(), RepoError> {
        let mut payload = Vec::with_capacity(16 * delta.len() + 4);
        write_varint(&mut payload, delta.len() as u64)?;
        for op in delta.ops() {
            encode_op(&mut payload, op)?;
        }
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Forces everything to stable storage.
    pub fn sync(&mut self) -> Result<(), RepoError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }
}

fn encode_op(w: &mut Vec<u8>, op: &DeltaOp) -> Result<(), RepoError> {
    match op {
        DeltaOp::AddNode { name: None } => w.push(OP_ADD_NODE),
        DeltaOp::AddNode { name: Some(n) } => {
            w.push(OP_ADD_NODE_NAMED);
            write_str(w, n)?;
        }
        DeltaOp::AddEdge { from, label, to } => {
            w.push(OP_ADD_EDGE);
            write_varint(w, from.index() as u64)?;
            write_str(w, label)?;
            write_value(w, to)?;
        }
        DeltaOp::RemoveEdge { from, label, to } => {
            w.push(OP_REMOVE_EDGE);
            write_varint(w, from.index() as u64)?;
            write_str(w, label)?;
            write_value(w, to)?;
        }
        DeltaOp::Collect { collection, member } => {
            w.push(OP_COLLECT);
            write_str(w, collection)?;
            write_value(w, member)?;
        }
        DeltaOp::Uncollect { collection, member } => {
            w.push(OP_UNCOLLECT);
            write_str(w, collection)?;
            write_value(w, member)?;
        }
    }
    Ok(())
}

fn decode_op(r: &mut impl Read, offset: &mut u64) -> Result<DeltaOp, RepoError> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    *offset += 1;
    Ok(match tag[0] {
        OP_ADD_NODE => DeltaOp::AddNode { name: None },
        OP_ADD_NODE_NAMED => DeltaOp::AddNode {
            name: Some(read_str(r, offset)?.into()),
        },
        OP_ADD_EDGE => DeltaOp::AddEdge {
            from: Oid::from_index(read_varint(r, offset)? as usize),
            label: read_str(r, offset)?.into(),
            to: read_value(r, offset)?,
        },
        OP_REMOVE_EDGE => DeltaOp::RemoveEdge {
            from: Oid::from_index(read_varint(r, offset)? as usize),
            label: read_str(r, offset)?.into(),
            to: read_value(r, offset)?,
        },
        OP_COLLECT => DeltaOp::Collect {
            collection: read_str(r, offset)?.into(),
            member: read_value(r, offset)?,
        },
        OP_UNCOLLECT => DeltaOp::Uncollect {
            collection: read_str(r, offset)?.into(),
            member: read_value(r, offset)?,
        },
        other => {
            return Err(RepoError::Corrupt {
                what: "wal",
                offset: *offset,
                message: format!("unknown op tag {other}"),
            })
        }
    })
}

/// What a WAL replay recovered: the committed deltas plus how much of a
/// torn tail record (if any) was discarded.
#[derive(Debug, Default)]
pub struct ReplayReport {
    /// Committed deltas, in append order.
    pub deltas: Vec<GraphDelta>,
    /// Bytes of a torn trailing record dropped during recovery (0 when
    /// the log ended on a record boundary).
    pub discarded_bytes: u64,
}

/// Replays all whole records of the WAL at `path`. A torn tail record is
/// discarded and reported via [`ReplayReport::discarded_bytes`]; a
/// structurally corrupt *whole* record is an error. A missing file
/// replays to nothing.
pub fn replay_report(path: &Path) -> Result<ReplayReport, RepoError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(ReplayReport::default())
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(RepoError::Corrupt {
            what: "wal",
            offset: 0,
            message: "bad wal magic".into(),
        });
    }
    let mut deltas = Vec::new();
    let mut pos = MAGIC.len();
    let mut discarded_bytes = 0u64;
    while pos < bytes.len() {
        if pos + 4 > bytes.len() {
            discarded_bytes = (bytes.len() - pos) as u64; // torn length prefix
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + 4 + len > bytes.len() {
            discarded_bytes = (bytes.len() - pos) as u64; // torn record body
            break;
        }
        let payload = &bytes[pos + 4..pos + 4 + len];
        let mut r = payload;
        let mut offset = pos as u64 + 4;
        let op_count = read_varint(&mut r, &mut offset)? as usize;
        let mut delta = GraphDelta::new();
        for _ in 0..op_count {
            delta.push(decode_op(&mut r, &mut offset)?);
        }
        deltas.push(delta);
        pos += 4 + len;
    }
    Ok(ReplayReport {
        deltas,
        discarded_bytes,
    })
}

/// [`replay_report`] without the torn-tail accounting: just the committed
/// deltas in order.
pub fn replay(path: &Path) -> Result<Vec<GraphDelta>, RepoError> {
    Ok(replay_report(path)?.deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::{Graph, Value};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("strudel-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_delta() -> GraphDelta {
        let mut d = GraphDelta::new();
        d.add_node(Some("a"));
        d.add_node(None);
        d.add_edge(Oid::from_index(0), "title", Value::string("Strudel"));
        d.add_edge(Oid::from_index(0), "next", Value::Node(Oid::from_index(1)));
        d.collect("Pubs", Value::Node(Oid::from_index(0)));
        d
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = tmpdir("rt");
        let path = dir.join("wal.log");
        let d1 = sample_delta();
        let mut d2 = GraphDelta::new();
        d2.remove_edge(Oid::from_index(0), "title", Value::string("Strudel"));
        d2.uncollect("Pubs", Value::Node(Oid::from_index(0)));
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append(&d1).unwrap();
            wal.append(&d2).unwrap();
            wal.sync().unwrap();
        }
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed, vec![d1.clone(), d2.clone()]);

        // The replayed log rebuilds the same graph.
        let mut g = Graph::new();
        for d in &replayed {
            d.apply(&mut g).unwrap();
        }
        assert_eq!(g.node_count(), 2);
        let a = g.node_by_name("a").unwrap();
        assert_eq!(g.attr_str(a, "title").count(), 0);
        assert_eq!(g.members_str("Pubs").len(), 0);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append(&sample_delta()).unwrap();
            wal.append(&sample_delta()).unwrap();
            wal.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Chop mid-way through the second record.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
    }

    #[test]
    fn truncation_mid_record_reports_exact_discarded_bytes() {
        let dir = tmpdir("report");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append(&sample_delta()).unwrap();
            wal.append(&sample_delta()).unwrap();
            wal.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let record_len = (full.len() - MAGIC.len()) / 2;
        let first_end = MAGIC.len() + record_len;

        // Truncate inside the second record's body: recovery keeps the
        // first delta and reports exactly the surviving tail bytes.
        let cut = first_end + 7;
        std::fs::write(&path, &full[..cut]).unwrap();
        let report = replay_report(&path).unwrap();
        assert_eq!(report.deltas, vec![sample_delta()]);
        assert_eq!(report.discarded_bytes, (cut - first_end) as u64);

        // Truncate inside the second record's length prefix.
        let cut = first_end + 2;
        std::fs::write(&path, &full[..cut]).unwrap();
        let report = replay_report(&path).unwrap();
        assert_eq!(report.deltas.len(), 1);
        assert_eq!(report.discarded_bytes, 2);

        // A log ending on a record boundary discards nothing.
        std::fs::write(&path, &full).unwrap();
        let report = replay_report(&path).unwrap();
        assert_eq!(report.deltas.len(), 2);
        assert_eq!(report.discarded_bytes, 0);
    }

    #[test]
    fn missing_file_replays_empty() {
        let dir = tmpdir("missing");
        assert!(replay(&dir.join("nope.log")).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_errors() {
        let dir = tmpdir("magic");
        let path = dir.join("wal.log");
        std::fs::write(&path, b"GARBAGE!").unwrap();
        assert!(matches!(replay(&path), Err(RepoError::Corrupt { .. })));
    }

    #[test]
    fn open_append_continues_log() {
        let dir = tmpdir("append");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append(&sample_delta()).unwrap();
        }
        {
            let mut wal = Wal::open_append(&path).unwrap();
            wal.append(&sample_delta()).unwrap();
        }
        assert_eq!(replay(&path).unwrap().len(), 2);
    }

    #[test]
    fn corrupt_whole_record_is_an_error() {
        let dir = tmpdir("corrupt");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append(&sample_delta()).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip the op tag of the first op (magic 8 + len 4 + varint 1).
        bytes[13] = 0xee;
        std::fs::write(&path, &bytes).unwrap();
        assert!(replay(&path).is_err());
    }
}
