//! Write-ahead log of graph deltas.
//!
//! Each committed [`GraphDelta`] is one checksummed, length-prefixed
//! frame, appended with a single write so a crash can only leave a
//! *prefix* of a frame behind:
//!
//! ```text
//! file    := MAGIC generation:u64le frame*
//! frame   := len:u32le crc:u32le payload[len]    crc = crc32(len ‖ payload)
//! payload := op_count:varint op*
//! ```
//!
//! The header's generation records which snapshot this log extends;
//! [`Database::open`](crate::Database::open) compares it against the
//! snapshot's generation to detect a crash that landed between a
//! checkpoint's snapshot rename and its WAL truncation (a *stale* log
//! whose frames are already in the snapshot and must not be replayed).
//!
//! Recovery distinguishes two failure shapes:
//!
//! * **torn tail** — the final frame is incomplete or fails its checksum:
//!   a crash mid-append. Committed frames before it are whole; the tail is
//!   discarded and reported via [`ReplayReport::discarded_bytes`].
//! * **mid-log corruption** — a frame fails its checksum (or decodes to
//!   garbage) with more log after it. Appends never rewrite earlier
//!   frames, so this is bit rot or external damage: replay refuses with a
//!   precise [`RepoError::Corrupt`] rather than silently truncating
//!   committed history.
//!
//! One ambiguity is inherent (SQLite's WAL shares it): if a frame's
//! *length field* is corrupted to a value that runs past end-of-file, the
//! log after it is unreachable and the damage is indistinguishable from a
//! torn tail. The checksum covers the length bytes, so any in-file length
//! corruption is still caught.

use crate::codec::{read_str, read_value, read_varint, write_str, write_value, write_varint};
use crate::crc::Crc32;
use crate::vfs::{RealVfs, Vfs, VfsFile};
use crate::RepoError;
use std::io::Read;
use std::path::Path;
use strudel_graph::{DeltaOp, GraphDelta, Oid};

const MAGIC: &[u8; 8] = b"STRUWAL2";
/// Magic plus the generation counter.
pub const HEADER_LEN: u64 = 16;

const OP_ADD_NODE: u8 = 0;
const OP_ADD_NODE_NAMED: u8 = 1;
const OP_ADD_EDGE: u8 = 2;
const OP_REMOVE_EDGE: u8 = 3;
const OP_COLLECT: u8 = 4;
const OP_UNCOLLECT: u8 = 5;

/// An open, appendable write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: Box<dyn VfsFile>,
}

impl Wal {
    /// Creates a new WAL file at `path` (truncating any existing one) with
    /// a synced header recording `generation`.
    pub fn create_with(vfs: &dyn Vfs, path: &Path, generation: u64) -> Result<Self, RepoError> {
        let mut file = vfs.create(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        header[..8].copy_from_slice(MAGIC);
        header[8..].copy_from_slice(&generation.to_le_bytes());
        file.write(&header)?;
        file.sync()?;
        Ok(Wal { file })
    }

    /// [`Wal::create_with`] on the real filesystem, generation 0.
    pub fn create(path: &Path) -> Result<Self, RepoError> {
        Self::create_with(&RealVfs, path, 0)
    }

    /// Opens an existing WAL for appending, creating it (with
    /// `generation`) when missing.
    pub fn open_append_with(
        vfs: &dyn Vfs,
        path: &Path,
        generation: u64,
    ) -> Result<Self, RepoError> {
        if !vfs.exists(path) {
            return Self::create_with(vfs, path, generation);
        }
        Ok(Wal {
            file: vfs.open_append(path)?,
        })
    }

    /// [`Wal::open_append_with`] on the real filesystem, generation 0.
    pub fn open_append(path: &Path) -> Result<Self, RepoError> {
        Self::open_append_with(&RealVfs, path, 0)
    }

    /// Appends one delta as a single checksummed frame, issued as one
    /// write so a crash tears it into a clean prefix. The frame reaches
    /// the OS; durability against power loss additionally needs
    /// [`Wal::sync`], which checkpointing performs — a standard
    /// group-commit compromise.
    pub fn append(&mut self, delta: &GraphDelta) -> Result<(), RepoError> {
        let mut payload = Vec::with_capacity(16 * delta.len() + 4);
        write_varint(&mut payload, delta.len() as u64)?;
        for op in delta.ops() {
            encode_op(&mut payload, op)?;
        }
        let len = (payload.len() as u32).to_le_bytes();
        let mut h = Crc32::new();
        h.update(&len);
        h.update(&payload);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&len);
        frame.extend_from_slice(&h.finish().to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write(&frame)?;
        Ok(())
    }

    /// Forces everything to stable storage.
    pub fn sync(&mut self) -> Result<(), RepoError> {
        self.file.sync()?;
        Ok(())
    }
}

fn encode_op(w: &mut Vec<u8>, op: &DeltaOp) -> Result<(), RepoError> {
    match op {
        DeltaOp::AddNode { name: None } => w.push(OP_ADD_NODE),
        DeltaOp::AddNode { name: Some(n) } => {
            w.push(OP_ADD_NODE_NAMED);
            write_str(w, n)?;
        }
        DeltaOp::AddEdge { from, label, to } => {
            w.push(OP_ADD_EDGE);
            write_varint(w, from.index() as u64)?;
            write_str(w, label)?;
            write_value(w, to)?;
        }
        DeltaOp::RemoveEdge { from, label, to } => {
            w.push(OP_REMOVE_EDGE);
            write_varint(w, from.index() as u64)?;
            write_str(w, label)?;
            write_value(w, to)?;
        }
        DeltaOp::Collect { collection, member } => {
            w.push(OP_COLLECT);
            write_str(w, collection)?;
            write_value(w, member)?;
        }
        DeltaOp::Uncollect { collection, member } => {
            w.push(OP_UNCOLLECT);
            write_str(w, collection)?;
            write_value(w, member)?;
        }
    }
    Ok(())
}

fn decode_op(r: &mut impl Read, offset: &mut u64) -> Result<DeltaOp, RepoError> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    *offset += 1;
    Ok(match tag[0] {
        OP_ADD_NODE => DeltaOp::AddNode { name: None },
        OP_ADD_NODE_NAMED => DeltaOp::AddNode {
            name: Some(read_str(r, offset)?.into()),
        },
        OP_ADD_EDGE => DeltaOp::AddEdge {
            from: Oid::from_index(read_varint(r, offset)? as usize),
            label: read_str(r, offset)?.into(),
            to: read_value(r, offset)?,
        },
        OP_REMOVE_EDGE => DeltaOp::RemoveEdge {
            from: Oid::from_index(read_varint(r, offset)? as usize),
            label: read_str(r, offset)?.into(),
            to: read_value(r, offset)?,
        },
        OP_COLLECT => DeltaOp::Collect {
            collection: read_str(r, offset)?.into(),
            member: read_value(r, offset)?,
        },
        OP_UNCOLLECT => DeltaOp::Uncollect {
            collection: read_str(r, offset)?.into(),
            member: read_value(r, offset)?,
        },
        other => {
            return Err(RepoError::Corrupt {
                what: "wal",
                offset: *offset,
                message: format!("unknown op tag {other}"),
            })
        }
    })
}

/// What a WAL replay recovered.
#[derive(Debug, Default)]
pub struct ReplayReport {
    /// Committed deltas, in append order.
    pub deltas: Vec<GraphDelta>,
    /// Bytes of a torn trailing frame dropped during recovery (0 when the
    /// log ended on a frame boundary).
    pub discarded_bytes: u64,
    /// The snapshot generation this log extends, from the header.
    pub generation: u64,
    /// The file is shorter than the header: a crash tore the header write
    /// of a freshly created (hence empty) log. The caller should recreate
    /// the log; `generation` is meaningless and `deltas` empty.
    pub torn_header: bool,
}

/// Replays all whole frames of the WAL at `path` through `vfs`.
///
/// A torn tail (incomplete final frame, or a final frame failing its
/// checksum) is discarded and reported via
/// [`ReplayReport::discarded_bytes`]; a checksum or decode failure with
/// more log after it is mid-log corruption and errors precisely. A
/// missing file replays to nothing.
pub fn replay_report_with(vfs: &dyn Vfs, path: &Path) -> Result<ReplayReport, RepoError> {
    if !vfs.exists(path) {
        return Ok(ReplayReport::default());
    }
    let bytes = vfs.read(path)?;
    // A short read would present committed frames as a torn tail and get
    // them truncated away; the (unfaultable) metadata length catches it.
    let disk_len = vfs.len(path)?;
    if bytes.len() as u64 != disk_len {
        return Err(RepoError::Io(std::io::Error::other(format!(
            "wal short read: got {} of {} bytes",
            bytes.len(),
            disk_len
        ))));
    }
    if (bytes.len() as u64) < HEADER_LEN {
        // The header is written in one write: a valid-but-short prefix is
        // a torn header (crash during log creation); anything else is not
        // a WAL.
        let n = bytes.len().min(MAGIC.len());
        if bytes[..n] != MAGIC[..n] {
            return Err(RepoError::Corrupt {
                what: "wal",
                offset: 0,
                message: "bad wal magic".into(),
            });
        }
        return Ok(ReplayReport {
            discarded_bytes: bytes.len() as u64,
            torn_header: true,
            ..ReplayReport::default()
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(RepoError::Corrupt {
            what: "wal",
            offset: 0,
            message: "bad wal magic".into(),
        });
    }
    let generation = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let mut deltas = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut discarded_bytes = 0u64;
    while pos < bytes.len() {
        if pos + 8 > bytes.len() {
            discarded_bytes = (bytes.len() - pos) as u64; // torn frame header
            break;
        }
        let len_bytes: [u8; 4] = bytes[pos..pos + 4].try_into().unwrap();
        let len = u32::from_le_bytes(len_bytes) as usize;
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if pos + 8 + len > bytes.len() {
            discarded_bytes = (bytes.len() - pos) as u64; // torn frame body
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        let mut h = Crc32::new();
        h.update(&len_bytes);
        h.update(payload);
        if h.finish() != stored_crc {
            if pos + 8 + len == bytes.len() {
                // Final frame: a crash can tear the tail into garbage the
                // length field happens to cover. Discard, like any tear.
                discarded_bytes = (bytes.len() - pos) as u64;
                break;
            }
            return Err(RepoError::Corrupt {
                what: "wal",
                offset: pos as u64,
                message: format!(
                    "frame checksum mismatch (stored {stored_crc:#010x}, computed {:#010x}) \
                     with {} bytes of log after it: mid-log corruption, refusing to replay",
                    crc32_of(&len_bytes, payload),
                    bytes.len() - (pos + 8 + len),
                ),
            });
        }
        let mut r = payload;
        let mut offset = pos as u64 + 8;
        let op_count = read_varint(&mut r, &mut offset)? as usize;
        let mut delta = GraphDelta::new();
        for _ in 0..op_count {
            delta.push(decode_op(&mut r, &mut offset)?);
        }
        deltas.push(delta);
        pos += 8 + len;
    }
    Ok(ReplayReport {
        deltas,
        discarded_bytes,
        generation,
        torn_header: false,
    })
}

fn crc32_of(len_bytes: &[u8], payload: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(len_bytes);
    h.update(payload);
    h.finish()
}

/// [`replay_report_with`] on the real filesystem.
pub fn replay_report(path: &Path) -> Result<ReplayReport, RepoError> {
    replay_report_with(&RealVfs, path)
}

/// [`replay_report`] without the recovery accounting: just the committed
/// deltas in order.
pub fn replay(path: &Path) -> Result<Vec<GraphDelta>, RepoError> {
    Ok(replay_report(path)?.deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::{Graph, Value};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("strudel-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_delta() -> GraphDelta {
        let mut d = GraphDelta::new();
        d.add_node(Some("a"));
        d.add_node(None);
        d.add_edge(Oid::from_index(0), "title", Value::string("Strudel"));
        d.add_edge(Oid::from_index(0), "next", Value::Node(Oid::from_index(1)));
        d.collect("Pubs", Value::Node(Oid::from_index(0)));
        d
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = tmpdir("rt");
        let path = dir.join("wal.log");
        let d1 = sample_delta();
        let mut d2 = GraphDelta::new();
        d2.remove_edge(Oid::from_index(0), "title", Value::string("Strudel"));
        d2.uncollect("Pubs", Value::Node(Oid::from_index(0)));
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append(&d1).unwrap();
            wal.append(&d2).unwrap();
            wal.sync().unwrap();
        }
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed, vec![d1.clone(), d2.clone()]);

        // The replayed log rebuilds the same graph.
        let mut g = Graph::new();
        for d in &replayed {
            d.apply(&mut g).unwrap();
        }
        assert_eq!(g.node_count(), 2);
        let a = g.node_by_name("a").unwrap();
        assert_eq!(g.attr_str(a, "title").count(), 0);
        assert_eq!(g.members_str("Pubs").len(), 0);
    }

    #[test]
    fn generation_round_trips_through_header() {
        let dir = tmpdir("gen");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::create_with(&RealVfs, &path, 7).unwrap();
            wal.append(&sample_delta()).unwrap();
        }
        let report = replay_report(&path).unwrap();
        assert_eq!(report.generation, 7);
        assert_eq!(report.deltas.len(), 1);
        assert!(!report.torn_header);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append(&sample_delta()).unwrap();
            wal.append(&sample_delta()).unwrap();
            wal.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Chop mid-way through the second frame.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
    }

    #[test]
    fn truncation_mid_record_reports_exact_discarded_bytes() {
        let dir = tmpdir("report");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append(&sample_delta()).unwrap();
            wal.append(&sample_delta()).unwrap();
            wal.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let header = HEADER_LEN as usize;
        let frame_len = (full.len() - header) / 2;
        let first_end = header + frame_len;

        // Truncate inside the second frame's body: recovery keeps the
        // first delta and reports exactly the surviving tail bytes.
        let cut = first_end + 11;
        std::fs::write(&path, &full[..cut]).unwrap();
        let report = replay_report(&path).unwrap();
        assert_eq!(report.deltas, vec![sample_delta()]);
        assert_eq!(report.discarded_bytes, (cut - first_end) as u64);

        // Truncate inside the second frame's length/crc prefix.
        let cut = first_end + 2;
        std::fs::write(&path, &full[..cut]).unwrap();
        let report = replay_report(&path).unwrap();
        assert_eq!(report.deltas.len(), 1);
        assert_eq!(report.discarded_bytes, 2);

        // A log ending on a frame boundary discards nothing.
        std::fs::write(&path, &full).unwrap();
        let report = replay_report(&path).unwrap();
        assert_eq!(report.deltas.len(), 2);
        assert_eq!(report.discarded_bytes, 0);
    }

    #[test]
    fn missing_file_replays_empty() {
        let dir = tmpdir("missing");
        assert!(replay(&dir.join("nope.log")).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_errors() {
        let dir = tmpdir("magic");
        let path = dir.join("wal.log");
        std::fs::write(&path, b"GARBAGE!GARBAGE!").unwrap();
        assert!(matches!(replay(&path), Err(RepoError::Corrupt { .. })));
        // Short garbage is bad magic too, not a torn header.
        std::fs::write(&path, b"junk").unwrap();
        assert!(matches!(replay(&path), Err(RepoError::Corrupt { .. })));
    }

    #[test]
    fn short_valid_prefix_is_a_torn_header() {
        let dir = tmpdir("torn-header");
        let path = dir.join("wal.log");
        for cut in [0usize, 3, 8, 12, 15] {
            let mut header = Vec::new();
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&5u64.to_le_bytes());
            std::fs::write(&path, &header[..cut]).unwrap();
            let report = replay_report(&path).unwrap();
            assert!(report.torn_header, "cut at {cut}");
            assert_eq!(report.discarded_bytes, cut as u64);
            assert!(report.deltas.is_empty());
        }
    }

    #[test]
    fn open_append_continues_log() {
        let dir = tmpdir("append");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append(&sample_delta()).unwrap();
        }
        {
            let mut wal = Wal::open_append(&path).unwrap();
            wal.append(&sample_delta()).unwrap();
        }
        assert_eq!(replay(&path).unwrap().len(), 2);
    }

    #[test]
    fn corrupt_mid_log_frame_is_a_precise_error() {
        let dir = tmpdir("corrupt-mid");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append(&sample_delta()).unwrap();
            wal.append(&sample_delta()).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the *first* frame: checksum fails with
        // more log after it, so this is mid-log corruption, not a tear.
        bytes[HEADER_LEN as usize + 9] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match replay(&path) {
            Err(RepoError::Corrupt { what, offset, message }) => {
                assert_eq!(what, "wal");
                assert_eq!(offset, HEADER_LEN);
                assert!(message.contains("checksum"), "message: {message}");
                assert!(message.contains("mid-log"), "message: {message}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_final_frame_is_treated_as_torn_tail() {
        let dir = tmpdir("corrupt-tail");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append(&sample_delta()).unwrap();
            wal.append(&sample_delta()).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let report = replay_report(&path).unwrap();
        assert_eq!(report.deltas.len(), 1);
        assert!(report.discarded_bytes > 0);
    }

    #[test]
    fn corrupt_length_field_within_file_is_caught() {
        let dir = tmpdir("corrupt-len");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append(&sample_delta()).unwrap();
            wal.append(&sample_delta()).unwrap();
            wal.append(&sample_delta()).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Shrink the first frame's length field: the checksum covers the
        // length bytes, so the reframed bytes cannot verify.
        let p = HEADER_LEN as usize;
        let len = u32::from_le_bytes(bytes[p..p + 4].try_into().unwrap());
        bytes[p..p + 4].copy_from_slice(&(len - 2).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay(&path), Err(RepoError::Corrupt { .. })));
    }
}
