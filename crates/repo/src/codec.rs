//! Binary encoding shared by snapshots and the WAL.
//!
//! Little-endian LEB128 varints for integers, length-prefixed UTF-8 for
//! strings, a one-byte tag for values. The format is deliberately simple
//! and versioned by the magic header in each file type.

use crate::RepoError;
use std::io::{Read, Write};
use strudel_graph::{FileKind, Oid, Value};

pub fn write_varint(w: &mut impl Write, mut v: u64) -> std::io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

pub fn read_varint(r: &mut impl Read, offset: &mut u64) -> Result<u64, RepoError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        *offset += 1;
        v |= u64::from(b[0] & 0x7f) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(corrupt(*offset, "varint overflow"));
        }
    }
}

/// ZigZag-encode an i64 so small negatives stay short.
pub fn write_varint_i64(w: &mut impl Write, v: i64) -> std::io::Result<()> {
    write_varint(w, ((v << 1) ^ (v >> 63)) as u64)
}

pub fn read_varint_i64(r: &mut impl Read, offset: &mut u64) -> Result<i64, RepoError> {
    let z = read_varint(r, offset)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

pub fn write_str(w: &mut impl Write, s: &str) -> std::io::Result<()> {
    write_varint(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

pub fn read_str(r: &mut impl Read, offset: &mut u64) -> Result<String, RepoError> {
    let len = read_varint(r, offset)? as usize;
    if len > 1 << 30 {
        return Err(corrupt(*offset, "string length too large"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    *offset += len as u64;
    String::from_utf8(buf).map_err(|_| corrupt(*offset, "invalid utf-8 in string"))
}

const TAG_NODE: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL_FALSE: u8 = 3;
const TAG_BOOL_TRUE: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_URL: u8 = 6;
const TAG_FILE_TEXT: u8 = 7;
const TAG_FILE_PS: u8 = 8;
const TAG_FILE_IMAGE: u8 = 9;
const TAG_FILE_HTML: u8 = 10;

pub fn write_value(w: &mut impl Write, v: &Value) -> std::io::Result<()> {
    match v {
        Value::Node(o) => {
            w.write_all(&[TAG_NODE])?;
            write_varint(w, o.index() as u64)
        }
        Value::Int(i) => {
            w.write_all(&[TAG_INT])?;
            write_varint_i64(w, *i)
        }
        Value::Float(x) => {
            w.write_all(&[TAG_FLOAT])?;
            w.write_all(&x.to_bits().to_le_bytes())
        }
        Value::Bool(false) => w.write_all(&[TAG_BOOL_FALSE]),
        Value::Bool(true) => w.write_all(&[TAG_BOOL_TRUE]),
        Value::Str(s) => {
            w.write_all(&[TAG_STR])?;
            write_str(w, s)
        }
        Value::Url(u) => {
            w.write_all(&[TAG_URL])?;
            write_str(w, u)
        }
        Value::File(f) => {
            let tag = match f.kind {
                FileKind::Text => TAG_FILE_TEXT,
                FileKind::PostScript => TAG_FILE_PS,
                FileKind::Image => TAG_FILE_IMAGE,
                FileKind::Html => TAG_FILE_HTML,
            };
            w.write_all(&[tag])?;
            write_str(w, &f.path)
        }
    }
}

pub fn read_value(r: &mut impl Read, offset: &mut u64) -> Result<Value, RepoError> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    *offset += 1;
    Ok(match tag[0] {
        TAG_NODE => Value::Node(Oid::from_index(read_varint(r, offset)? as usize)),
        TAG_INT => Value::Int(read_varint_i64(r, offset)?),
        TAG_FLOAT => {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            *offset += 8;
            Value::Float(f64::from_bits(u64::from_le_bytes(b)))
        }
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_STR => Value::string(read_str(r, offset)?),
        TAG_URL => Value::url(read_str(r, offset)?),
        TAG_FILE_TEXT => Value::file(FileKind::Text, read_str(r, offset)?),
        TAG_FILE_PS => Value::file(FileKind::PostScript, read_str(r, offset)?),
        TAG_FILE_IMAGE => Value::file(FileKind::Image, read_str(r, offset)?),
        TAG_FILE_HTML => Value::file(FileKind::Html, read_str(r, offset)?),
        other => return Err(corrupt(*offset, format!("unknown value tag {other}"))),
    })
}

pub fn corrupt(offset: u64, message: impl Into<String>) -> RepoError {
    RepoError::Corrupt {
        what: "encoded data",
        offset,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_value(v: &Value) -> Value {
        let mut buf = Vec::new();
        write_value(&mut buf, v).unwrap();
        let mut offset = 0;
        read_value(&mut &buf[..], &mut offset).unwrap()
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            let mut offset = 0;
            assert_eq!(read_varint(&mut &buf[..], &mut offset).unwrap(), v);
            assert_eq!(offset, buf.len() as u64);
        }
    }

    #[test]
    fn signed_varint_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_varint_i64(&mut buf, v).unwrap();
            let mut offset = 0;
            assert_eq!(read_varint_i64(&mut &buf[..], &mut offset).unwrap(), v);
        }
    }

    #[test]
    fn values_round_trip() {
        let vals = [
            Value::Node(Oid::from_index(9)),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Bool(true),
            Value::Bool(false),
            Value::string("héllo"),
            Value::url("http://x"),
            Value::file(FileKind::Image, "a/b.png"),
            Value::file(FileKind::PostScript, "p.ps"),
        ];
        for v in &vals {
            assert_eq!(&round_trip_value(v), v);
        }
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_value(&mut buf, &Value::string("hello world")).unwrap();
        buf.truncate(buf.len() - 3);
        let mut offset = 0;
        assert!(read_value(&mut &buf[..], &mut offset).is_err());
    }

    #[test]
    fn unknown_tag_errors() {
        let buf = [0xfeu8];
        let mut offset = 0;
        assert!(matches!(
            read_value(&mut &buf[..], &mut offset),
            Err(RepoError::Corrupt { .. })
        ));
    }
}
