//! # strudel-wrappers
//!
//! Source wrappers: translate external data representations into Strudel
//! data graphs (§2.1). The paper's sites drew on four kinds of sources,
//! each reproduced here:
//!
//! * [`bibtex`] — BibTeX bibliographies (the homepage sites of §2.3/§5.1).
//!   A real BibTeX parser: entries, `@string` macros, brace/quote values,
//!   `#` concatenation; authors split on `and` with integer order keys
//!   (the §6.3 answer to ordering in an order-free model).
//! * [`relational`] — relational tables as CSV (the personnel and
//!   organization databases of the AT&T site). Empty cells produce *no*
//!   edge: missing attributes are the semistructured way.
//! * [`structured`] — key/value record files (the project files the paper
//!   wrapped "with simple AWK programs").
//! * [`html`] — existing HTML pages (the CNN demonstration site was built
//!   by wrapping ~300 article pages).
//!
//! Every wrapper produces a [`Graph`](strudel_graph::Graph); the mediator
//! imports wrapped graphs into the warehouse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bibtex;
mod error;
pub mod html;
pub mod relational;
pub mod structured;

pub use error::WrapError;
