//! BibTeX wrapper: bibliography files → Publications data graph.
//!
//! Handles the practically relevant core of BibTeX:
//!
//! * `@type{key, field = value, …}` entries with `{…}` (nested), `"…"`,
//!   and bare-number values;
//! * `@string{name = "…"}` macros and `#` concatenation;
//! * anything outside an `@entry` is a comment (that *is* BibTeX's rule);
//! * authors and editors split on the word `and`, each emitted as a
//!   separate `author` edge plus an `authorkey`-indexed presentation node
//!   when order preservation is requested (§6.3: "associating an integer
//!   key with each author … allows us to preserve order in specific, but
//!   common, cases").
//!
//! Field typing follows the paper's data graph (Fig. 2): `year`, `month`
//! numbers become integers; `abstract` values that look like file paths
//! become text files; `postscript`/`ps` become PostScript files; `url`
//! and `homepage` become URLs.

use crate::WrapError;
use std::collections::HashMap;
use strudel_graph::{FileKind, Graph, Value};

/// Options controlling the wrapping.
#[derive(Clone, Debug)]
pub struct BibtexOptions {
    /// The collection wrapped entries join.
    pub collection: String,
    /// Emit `authorkey` edges (`author1key`, `author2key`, …) recording
    /// author order as integer keys.
    pub author_keys: bool,
}

impl Default for BibtexOptions {
    fn default() -> Self {
        BibtexOptions {
            collection: "Publications".to_owned(),
            author_keys: true,
        }
    }
}

/// Parses a BibTeX document into a fresh data graph.
pub fn wrap(src: &str) -> Result<Graph, WrapError> {
    wrap_with(src, &BibtexOptions::default())
}

/// Parses a BibTeX document with explicit options.
pub fn wrap_with(src: &str, opts: &BibtexOptions) -> Result<Graph, WrapError> {
    let mut g = Graph::new();
    wrap_into(src, opts, &mut g)?;
    Ok(g)
}

/// Parses a BibTeX document into an existing graph.
pub fn wrap_into(src: &str, opts: &BibtexOptions, g: &mut Graph) -> Result<(), WrapError> {
    let entries = parse(src)?;
    let cid = g.intern_collection(&opts.collection);
    for e in entries {
        let node = g.add_named_node(&e.key);
        g.collect(cid, Value::Node(node));
        g.add_edge_str(node, "type", Value::string(e.kind.clone()));
        for (field, value) in &e.fields {
            if field == "author" || field == "editor" {
                for (i, name) in split_authors(value).iter().enumerate() {
                    g.add_edge_str(node, field, Value::string(name.as_str()));
                    if opts.author_keys {
                        let keyed = g.add_node();
                        g.add_edge_str(keyed, "name", Value::string(name.as_str()));
                        g.add_edge_str(keyed, "key", Value::Int(i as i64 + 1));
                        g.add_edge_str(node, &format!("{field}-keyed"), Value::Node(keyed));
                    }
                }
            } else {
                g.add_edge_str(node, field, type_field(field, value));
            }
        }
    }
    Ok(())
}

/// One parsed entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Entry type (`article`, `inproceedings`, …), lower-cased.
    pub kind: String,
    /// Citation key.
    pub key: String,
    /// Fields in source order, names lower-cased, values macro-expanded.
    pub fields: Vec<(String, String)>,
}

/// Parses BibTeX source into entries (macros applied, `@string` and
/// `@comment`/`@preamble` blocks consumed).
pub fn parse(src: &str) -> Result<Vec<Entry>, WrapError> {
    let mut p = BibParser {
        bytes: src.as_bytes(),
        src,
        pos: 0,
        line: 1,
        macros: HashMap::new(),
    };
    let mut entries = Vec::new();
    while let Some(entry) = p.next_entry()? {
        entries.push(entry);
    }
    Ok(entries)
}

/// Splits an author field on the (unbraced) word `and`.
pub fn split_authors(field: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    let mut words: Vec<String> = Vec::new();
    // Tokenize into whitespace-separated words, tracking brace depth so a
    // braced "{Simon and Garfunkel}" stays one author.
    for c in field.chars() {
        match c {
            '{' => {
                depth += 1;
                current.push(c);
            }
            '}' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            c if c.is_whitespace() && depth == 0 => {
                if !current.is_empty() {
                    words.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        words.push(current);
    }
    let mut acc: Vec<String> = Vec::new();
    for w in words {
        if w == "and" {
            if !acc.is_empty() {
                out.push(acc.join(" "));
                acc.clear();
            }
        } else {
            acc.push(w);
        }
    }
    if !acc.is_empty() {
        out.push(acc.join(" "));
    }
    out.iter().map(|a| strip_braces(a)).collect()
}

fn strip_braces(s: &str) -> String {
    s.chars().filter(|&c| c != '{' && c != '}').collect()
}

/// Types a field value per the Fig. 2 conventions.
fn type_field(field: &str, value: &str) -> Value {
    match field {
        "year" | "volume" | "number" => {
            if let Ok(i) = value.trim().parse::<i64>() {
                return Value::Int(i);
            }
            Value::string(value)
        }
        "url" | "homepage" => Value::url(value),
        "postscript" | "ps" => Value::file(FileKind::PostScript, value),
        "abstract" if looks_like_path(value) => Value::file(FileKind::Text, value),
        "pdf" if looks_like_path(value) => Value::file(FileKind::Text, value),
        _ => Value::string(value),
    }
}

fn looks_like_path(v: &str) -> bool {
    !v.contains(' ') && (v.contains('/') || v.ends_with(".txt") || v.ends_with(".ps"))
}

struct BibParser<'s> {
    bytes: &'s [u8],
    src: &'s str,
    pos: usize,
    line: u32,
    macros: HashMap<String, String>,
}

impl<'s> BibParser<'s> {
    fn err(&self, msg: impl Into<String>) -> WrapError {
        WrapError::new("bibtex", self.line, msg)
    }

    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.bump();
        }
    }

    /// Advances to the next `@` (everything before it is comment text).
    fn seek_at(&mut self) -> bool {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'@' {
                return true;
            }
            self.bump();
        }
        false
    }

    fn ident(&mut self) -> Result<String, WrapError> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric()
                || matches!(self.bytes[self.pos], b'_' | b'-' | b':' | b'.' | b'+'))
        {
            self.bump();
        }
        if start == self.pos {
            return Err(self.err("expected an identifier"));
        }
        Ok(self.src[start..self.pos].to_owned())
    }

    fn expect(&mut self, c: u8) -> Result<(), WrapError> {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == c {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn next_entry(&mut self) -> Result<Option<Entry>, WrapError> {
        loop {
            if !self.seek_at() {
                return Ok(None);
            }
            self.bump(); // '@'
            let kind = self.ident()?.to_ascii_lowercase();
            match kind.as_str() {
                "comment" | "preamble" => {
                    self.balanced_block()?;
                    continue;
                }
                "string" => {
                    self.string_macro()?;
                    continue;
                }
                _ => {}
            }
            self.skip_ws();
            let open = if self.pos < self.bytes.len() {
                self.bytes[self.pos]
            } else {
                0
            };
            if open != b'{' && open != b'(' {
                return Err(self.err(format!("expected '{{' after @{kind}")));
            }
            let close = if open == b'{' { b'}' } else { b')' };
            self.bump();
            self.skip_ws();
            let key = self.ident()?;
            self.expect(b',')?;
            let mut fields = Vec::new();
            loop {
                self.skip_ws();
                if self.pos >= self.bytes.len() {
                    return Err(self.err("unterminated entry"));
                }
                if self.bytes[self.pos] == close {
                    self.bump();
                    break;
                }
                let name = self.ident()?.to_ascii_lowercase();
                self.expect(b'=')?;
                let value = self.value()?;
                fields.push((name, value));
                self.skip_ws();
                if self.pos < self.bytes.len() && self.bytes[self.pos] == b',' {
                    self.bump();
                }
            }
            return Ok(Some(Entry { kind, key, fields }));
        }
    }

    /// Consumes `{ … }` with balanced braces (for @comment/@preamble).
    fn balanced_block(&mut self) -> Result<(), WrapError> {
        self.skip_ws();
        if self.pos >= self.bytes.len() || self.bytes[self.pos] != b'{' {
            // Bare @comment without braces: skip the rest of the line.
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                self.bump();
            }
            return Ok(());
        }
        self.braced()?;
        Ok(())
    }

    fn string_macro(&mut self) -> Result<(), WrapError> {
        self.expect(b'{')?;
        self.skip_ws();
        let name = self.ident()?.to_ascii_lowercase();
        self.expect(b'=')?;
        let value = self.value()?;
        self.expect(b'}')?;
        self.macros.insert(name, value);
        Ok(())
    }

    /// A field value: concatenation of braced/quoted/bare parts with `#`.
    fn value(&mut self) -> Result<String, WrapError> {
        let mut out = String::new();
        loop {
            self.skip_ws();
            if self.pos >= self.bytes.len() {
                return Err(self.err("unterminated value"));
            }
            match self.bytes[self.pos] {
                b'{' => out.push_str(&self.braced()?),
                b'"' => out.push_str(&self.quoted()?),
                b'0'..=b'9' => {
                    let start = self.pos;
                    while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
                        self.bump();
                    }
                    out.push_str(&self.src[start..self.pos]);
                }
                _ => {
                    // Macro reference.
                    let name = self.ident()?.to_ascii_lowercase();
                    match self.macros.get(&name) {
                        Some(v) => out.push_str(v),
                        None => {
                            return Err(self.err(format!("undefined @string macro '{name}'")))
                        }
                    }
                }
            }
            self.skip_ws();
            if self.pos < self.bytes.len() && self.bytes[self.pos] == b'#' {
                self.bump();
            } else {
                return Ok(normalize_ws(&out));
            }
        }
    }

    /// `{ … }` with nesting; inner braces preserved (author grouping needs
    /// them), outer braces stripped.
    fn braced(&mut self) -> Result<String, WrapError> {
        debug_assert_eq!(self.bytes[self.pos], b'{');
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        let s = self.src[start..self.pos].to_owned();
                        self.bump();
                        return Ok(s);
                    }
                }
                _ => {}
            }
            self.bump();
        }
        Err(self.err("unterminated '{' value"))
    }

    fn quoted(&mut self) -> Result<String, WrapError> {
        debug_assert_eq!(self.bytes[self.pos], b'"');
        self.bump();
        let start = self.pos;
        let mut depth = 0usize;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'{' => depth += 1,
                b'}' => depth = depth.saturating_sub(1),
                b'"' if depth == 0 => {
                    let s = self.src[start..self.pos].to_owned();
                    self.bump();
                    return Ok(s);
                }
                _ => {}
            }
            self.bump();
        }
        Err(self.err("unterminated '\"' value"))
    }
}

fn normalize_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_ws = false;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_ws && !out.is_empty() {
                out.push(' ');
            }
            last_ws = true;
        } else {
            out.push(c);
            last_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        This line is a BibTeX comment.
        @string{sigmod = "SIGMOD Conference"}

        @inproceedings{fernandez98,
          title     = {Catching the {Boat} with Strudel},
          author    = {Mary Fernandez and Daniela Florescu and Alon Levy},
          booktitle = sigmod,
          year      = 1998,
          abstract  = {abs/fernandez98.txt},
          postscript= "papers/fernandez98.ps",
          url       = {http://www.research.att.com/~mff}
        }

        @article{suciu97,
          title   = "Management of " # "semistructured data",
          author  = {Dan Suciu},
          journal = {SIGMOD Record},
          year    = {1997},
          month   = {June}
        }
    "#;

    #[test]
    fn parses_entries_with_macros_and_concatenation() {
        let entries = parse(SAMPLE).unwrap();
        assert_eq!(entries.len(), 2);
        let e = &entries[0];
        assert_eq!(e.kind, "inproceedings");
        assert_eq!(e.key, "fernandez98");
        let get = |k: &str| &e.fields.iter().find(|(f, _)| f == k).unwrap().1;
        assert_eq!(get("booktitle"), "SIGMOD Conference");
        assert_eq!(get("title"), "Catching the {Boat} with Strudel");
        assert_eq!(
            &entries[1].fields.iter().find(|(f, _)| f == "title").unwrap().1,
            "Management of semistructured data"
        );
    }

    #[test]
    fn wrap_builds_publications_graph() {
        let g = wrap(SAMPLE).unwrap();
        assert_eq!(g.members_str("Publications").len(), 2);
        let f98 = g.node_by_name("fernandez98").unwrap();
        assert_eq!(g.first_attr_str(f98, "year"), Some(&Value::Int(1998)));
        assert_eq!(g.attr_str(f98, "author").count(), 3);
        assert!(g
            .first_attr_str(f98, "abstract")
            .unwrap()
            .is_file_kind(FileKind::Text));
        assert!(g
            .first_attr_str(f98, "postscript")
            .unwrap()
            .is_file_kind(FileKind::PostScript));
        assert!(matches!(
            g.first_attr_str(f98, "url"),
            Some(Value::Url(_))
        ));
        assert_eq!(
            g.first_attr_str(f98, "type").unwrap().as_str(),
            Some("inproceedings")
        );
    }

    #[test]
    fn schema_is_irregular_across_entries() {
        let g = wrap(SAMPLE).unwrap();
        let f98 = g.node_by_name("fernandez98").unwrap();
        let s97 = g.node_by_name("suciu97").unwrap();
        assert_eq!(g.attr_str(f98, "journal").count(), 0);
        assert_eq!(g.attr_str(s97, "booktitle").count(), 0);
        assert_eq!(g.attr_str(s97, "month").count(), 1);
        assert_eq!(g.attr_str(f98, "month").count(), 0);
    }

    #[test]
    fn author_order_is_preserved_with_keys() {
        let g = wrap(SAMPLE).unwrap();
        let f98 = g.node_by_name("fernandez98").unwrap();
        let authors: Vec<&str> = g
            .attr_str(f98, "author")
            .filter_map(Value::as_str)
            .collect();
        assert_eq!(
            authors,
            ["Mary Fernandez", "Daniela Florescu", "Alon Levy"]
        );
        // Keyed nodes carry explicit integer order (§6.3).
        let keyed: Vec<_> = g.attr_str(f98, "author-keyed").collect();
        assert_eq!(keyed.len(), 3);
        let first = keyed[0].as_node().unwrap();
        assert_eq!(g.first_attr_str(first, "key"), Some(&Value::Int(1)));
        assert_eq!(
            g.first_attr_str(first, "name").unwrap().as_str(),
            Some("Mary Fernandez")
        );
    }

    #[test]
    fn braced_author_groups_stay_together() {
        let authors = split_authors("Simon {and Garfunkel} and Someone Else");
        assert_eq!(authors, ["Simon and Garfunkel", "Someone Else"]);
    }

    #[test]
    fn author_keys_can_be_disabled() {
        let opts = BibtexOptions {
            author_keys: false,
            ..Default::default()
        };
        let g = wrap_with(SAMPLE, &opts).unwrap();
        let f98 = g.node_by_name("fernandez98").unwrap();
        assert_eq!(g.attr_str(f98, "author-keyed").count(), 0);
        assert_eq!(g.attr_str(f98, "author").count(), 3);
    }

    #[test]
    fn custom_collection_name() {
        let opts = BibtexOptions {
            collection: "Bib".to_owned(),
            ..Default::default()
        };
        let g = wrap_with(SAMPLE, &opts).unwrap();
        assert_eq!(g.members_str("Bib").len(), 2);
        assert_eq!(g.members_str("Publications").len(), 0);
    }

    #[test]
    fn comment_and_preamble_blocks_are_skipped() {
        let src = r#"
            @comment{anything {nested} here}
            @preamble{"\newcommand{\x}{y}"}
            @misc{only, title = {One}}
        "#;
        let entries = parse(src).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key, "only");
    }

    #[test]
    fn paren_delimited_entries() {
        let entries = parse("@article(k1, title = {T}, year = 2001)").unwrap();
        assert_eq!(entries[0].key, "k1");
        assert_eq!(entries[0].fields.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("@article{broken,\n  title = {unclosed").unwrap_err();
        assert!(err.line >= 2);
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn undefined_macro_is_an_error() {
        let err = parse("@article{k, title = ghost}").unwrap_err();
        assert!(err.message.contains("ghost"));
    }

    #[test]
    fn multiline_values_normalize_whitespace() {
        let entries = parse("@misc{k, note = {line one\n     line two}}").unwrap();
        assert_eq!(entries[0].fields[0].1, "line one line two");
    }

    #[test]
    fn wrap_into_merges_multiple_files() {
        let mut g = wrap("@misc{a, title={A}}").unwrap();
        wrap_into(
            "@misc{b, title={B}}",
            &BibtexOptions::default(),
            &mut g,
        )
        .unwrap();
        assert_eq!(g.members_str("Publications").len(), 2);
    }
}
