//! Structured-file wrapper: key/value record files → data graph.
//!
//! The AT&T site's project descriptions lived in "structured files"
//! wrapped by "simple AWK programs" (§5.1). The format:
//!
//! ```text
//! # projects.rec — '#' starts a comment line
//! id: strudel
//! name: Strudel
//! member: mff
//! member: suciu          # repeated fields are multi-valued
//! synopsis: Declarative web-site management.
//!
//! id: tukwila            # blank line separates records
//! name: Tukwila
//! ```
//!
//! Repeated fields become multiple edges; a missing field is simply
//! missing (the paper: "some projects omitted the synopsis attribute").
//! Values that parse as integers become `Int`; `http://…`/`https://…`
//! values become URLs; everything else is a string. Continuation lines
//! (indented) append to the previous field.

use crate::WrapError;
use strudel_graph::{Graph, Value};

/// Options for one record file.
#[derive(Clone, Debug)]
pub struct RecordOptions {
    /// The collection the records join.
    pub collection: String,
    /// The field naming each record's object (default `id`). The object's
    /// symbolic name is `<collection>_<key>`.
    pub key_field: String,
}

impl RecordOptions {
    /// Options for records in `collection`, keyed by the `id` field.
    pub fn new(collection: &str) -> Self {
        RecordOptions {
            collection: collection.to_owned(),
            key_field: "id".to_owned(),
        }
    }
}

/// Wraps a record file into a fresh graph.
pub fn wrap(src: &str, opts: &RecordOptions) -> Result<Graph, WrapError> {
    let mut g = Graph::new();
    wrap_into(src, opts, &mut g)?;
    Ok(g)
}

/// Wraps a record file into an existing graph.
pub fn wrap_into(src: &str, opts: &RecordOptions, g: &mut Graph) -> Result<(), WrapError> {
    let cid = g.intern_collection(&opts.collection);
    let mut record: Vec<(String, String)> = Vec::new();
    let mut record_start_line = 0u32;

    let flush = |record: &mut Vec<(String, String)>,
                     start: u32,
                     g: &mut Graph|
     -> Result<(), WrapError> {
        if record.is_empty() {
            return Ok(());
        }
        let key = record
            .iter()
            .find(|(f, _)| *f == opts.key_field)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| {
                WrapError::new(
                    "structured",
                    start,
                    format!("record has no '{}' field", opts.key_field),
                )
            })?;
        let node = g.add_named_node(&format!("{}_{}", opts.collection, key));
        g.collect(cid, Value::Node(node));
        for (field, value) in record.drain(..) {
            g.add_edge_str(node, &field, type_value(&value));
        }
        Ok(())
    };

    for (i, raw_line) in src.lines().enumerate() {
        let line_no = i as u32 + 1;
        let line = strip_comment(raw_line);
        if line.trim().is_empty() {
            flush(&mut record, record_start_line, g)?;
            continue;
        }
        // Continuation line: indented, no "field:" prefix required.
        if (raw_line.starts_with(' ') || raw_line.starts_with('\t')) && !line.contains(':') {
            match record.last_mut() {
                Some((_, v)) => {
                    v.push(' ');
                    v.push_str(line.trim());
                    continue;
                }
                None => {
                    return Err(WrapError::new(
                        "structured",
                        line_no,
                        "continuation line with no preceding field",
                    ))
                }
            }
        }
        let Some((field, value)) = line.split_once(':') else {
            return Err(WrapError::new(
                "structured",
                line_no,
                format!("expected 'field: value', found '{}'", line.trim()),
            ));
        };
        if record.is_empty() {
            record_start_line = line_no;
        }
        record.push((field.trim().to_owned(), value.trim().to_owned()));
    }
    flush(&mut record, record_start_line, g)?;
    Ok(())
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn type_value(v: &str) -> Value {
    if let Ok(i) = v.parse::<i64>() {
        Value::Int(i)
    } else if v.starts_with("http://") || v.starts_with("https://") {
        Value::url(v)
    } else {
        Value::string(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROJECTS: &str = "\
# research projects
id: strudel
name: Strudel
member: mff
member: suciu
started: 1996
synopsis: Declarative web-site management
homepage: http://example.org/strudel

id: tukwila
name: Tukwila
member: levy
";

    #[test]
    fn wraps_records() {
        let g = wrap(PROJECTS, &RecordOptions::new("Projects")).unwrap();
        assert_eq!(g.members_str("Projects").len(), 2);
        let s = g.node_by_name("Projects_strudel").unwrap();
        assert_eq!(g.attr_str(s, "member").count(), 2);
        assert_eq!(g.first_attr_str(s, "started"), Some(&Value::Int(1996)));
        assert!(matches!(
            g.first_attr_str(s, "homepage"),
            Some(Value::Url(_))
        ));
    }

    #[test]
    fn missing_fields_stay_missing() {
        let g = wrap(PROJECTS, &RecordOptions::new("Projects")).unwrap();
        let t = g.node_by_name("Projects_tukwila").unwrap();
        assert_eq!(g.attr_str(t, "synopsis").count(), 0, "no synopsis field");
        assert_eq!(g.attr_str(t, "homepage").count(), 0);
    }

    #[test]
    fn continuation_lines_append() {
        let src = "id: p\nsynopsis: first part\n   second part\n";
        let g = wrap(src, &RecordOptions::new("P")).unwrap();
        let p = g.node_by_name("P_p").unwrap();
        assert_eq!(
            g.first_attr_str(p, "synopsis").unwrap().as_str(),
            Some("first part second part")
        );
    }

    #[test]
    fn record_without_key_is_rejected() {
        let err = wrap("name: NoId\n", &RecordOptions::new("P")).unwrap_err();
        assert!(err.message.contains("'id'"));
    }

    #[test]
    fn custom_key_field() {
        let opts = RecordOptions {
            collection: "P".into(),
            key_field: "name".into(),
        };
        let g = wrap("name: thing\nvalue: 1\n", &opts).unwrap();
        assert!(g.node_by_name("P_thing").is_some());
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = wrap("id: x\nthis has no colon at all…\n", &RecordOptions::new("P"))
            .unwrap_err();
        // The '…' makes it a non-continuation unindented line.
        assert_eq!(err.line, 2);
    }

    #[test]
    fn comments_are_stripped() {
        let g = wrap("id: x # trailing comment\nv: 1\n", &RecordOptions::new("P")).unwrap();
        assert!(g.node_by_name("P_x").is_some());
    }

    #[test]
    fn multiple_blank_lines_between_records() {
        let g = wrap("id: a\n\n\n\nid: b\n", &RecordOptions::new("P")).unwrap();
        assert_eq!(g.members_str("P").len(), 2);
    }
}
