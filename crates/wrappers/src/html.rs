//! HTML wrapper: existing web pages → data graph.
//!
//! The CNN demonstration site (§5.1) was built by mapping ~300 existing
//! HTML article pages into a data graph. This wrapper extracts the
//! article-shaped structure of a page:
//!
//! * `<title>` → `title` attribute (falling back to the first `<h1>`);
//! * `<h1>` → `headline`;
//! * `<meta name="X" content="Y">` → attribute `X = Y` (CNN-style
//!   category/date metadata);
//! * `<p>` text → one `paragraph` edge per paragraph, in order;
//! * `<img src>` → `image` file attributes;
//! * `<a href>` → `link` edges: to the wrapped node of another document
//!   when the href names one, else to a URL value.
//!
//! [`wrap_documents`] wraps a batch of named documents into one graph and
//! resolves inter-document links in a second pass, which is exactly what a
//! crawl of a site section needs.

use crate::WrapError;
use std::collections::HashMap;
use strudel_graph::{FileKind, Graph, Oid, Value};

/// One input document: a file name (used to resolve `href`s) and its HTML.
#[derive(Clone, Debug)]
pub struct HtmlDoc {
    /// Document name, e.g. `world/article17.html`.
    pub name: String,
    /// The page's HTML text.
    pub html: String,
}

impl HtmlDoc {
    /// Converts `(name, html)` pairs — the shape corpus generators emit —
    /// into documents.
    pub fn from_pairs(pairs: &[(String, String)]) -> Vec<HtmlDoc> {
        pairs
            .iter()
            .map(|(name, html)| HtmlDoc {
                name: name.clone(),
                html: html.clone(),
            })
            .collect()
    }
}

/// Wraps a batch of HTML documents into a fresh graph. Each document
/// becomes one object in `collection`; links between wrapped documents
/// become node-valued `link` edges.
pub fn wrap_documents(docs: &[HtmlDoc], collection: &str) -> Result<Graph, WrapError> {
    let mut g = Graph::new();
    let cid = g.intern_collection(collection);

    // Pass 1: create a node per document so links can resolve.
    let mut by_name: HashMap<&str, Oid> = HashMap::new();
    for d in docs {
        let node = g.add_named_node(&d.name);
        g.collect(cid, Value::Node(node));
        by_name.insert(d.name.as_str(), node);
    }

    // Pass 2: extract content.
    for d in docs {
        let node = by_name[d.name.as_str()];
        let extracted = extract(&d.html);
        if let Some(t) = &extracted.title {
            g.add_edge_str(node, "title", Value::string(t.as_str()));
        }
        if let Some(h) = &extracted.headline {
            g.add_edge_str(node, "headline", Value::string(h.as_str()));
        }
        for (k, v) in &extracted.meta {
            g.add_edge_str(node, k, Value::string(v.as_str()));
        }
        for p in &extracted.paragraphs {
            g.add_edge_str(node, "paragraph", Value::string(p.as_str()));
        }
        for img in &extracted.images {
            g.add_edge_str(node, "image", Value::file(FileKind::Image, img.as_str()));
        }
        for href in &extracted.links {
            match by_name.get(href.as_str()) {
                Some(&target) => g.add_edge_str(node, "link", Value::Node(target)),
                None => g.add_edge_str(node, "link", Value::url(href.as_str())),
            }
        }
    }
    Ok(g)
}

/// What [`extract`] pulls out of one page.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Extracted {
    /// `<title>` text (or the first `<h1>` when absent).
    pub title: Option<String>,
    /// First `<h1>` text.
    pub headline: Option<String>,
    /// `<meta name content>` pairs in order.
    pub meta: Vec<(String, String)>,
    /// `<p>` texts in order.
    pub paragraphs: Vec<String>,
    /// `<img src>` values in order.
    pub images: Vec<String>,
    /// `<a href>` values in order.
    pub links: Vec<String>,
}

/// Extracts article structure from HTML text. This is a pragmatic
/// tokenizer, not a conforming HTML parser: tags and text are scanned
/// left-to-right, entities `&amp; &lt; &gt; &quot; &#39;` are decoded,
/// script/style contents are skipped.
pub fn extract(html: &str) -> Extracted {
    let mut out = Extracted::default();
    let mut tok = Tokenizer { src: html, pos: 0 };
    let mut text_sink: Option<Sink> = None;
    let mut buffer = String::new();

    while let Some(token) = tok.next_token() {
        match token {
            Token::Text(t) => {
                if text_sink.is_some() {
                    buffer.push_str(&decode_entities(&t));
                }
            }
            Token::Open(name, attrs) => match name.as_str() {
                "title" => text_sink = Some(Sink::Title),
                "h1" => text_sink = Some(Sink::Headline),
                "p" => text_sink = Some(Sink::Paragraph),
                "meta" => {
                    let mut n = None;
                    let mut c = None;
                    for (k, v) in &attrs {
                        if k == "name" {
                            n = Some(v.clone());
                        }
                        if k == "content" {
                            c = Some(v.clone());
                        }
                    }
                    if let (Some(n), Some(c)) = (n, c) {
                        out.meta.push((n, decode_entities(&c)));
                    }
                }
                "img" => {
                    if let Some((_, v)) = attrs.iter().find(|(k, _)| k == "src") {
                        out.images.push(v.clone());
                    }
                }
                "a" => {
                    if let Some((_, v)) = attrs.iter().find(|(k, _)| k == "href") {
                        out.links.push(v.clone());
                    }
                }
                "script" | "style" => tok.skip_until_close(&name),
                _ => {}
            },
            Token::Close(name) => {
                let matches_sink = matches!(
                    (&text_sink, name.as_str()),
                    (Some(Sink::Title), "title")
                        | (Some(Sink::Headline), "h1")
                        | (Some(Sink::Paragraph), "p")
                );
                if matches_sink {
                    let text = normalize(&buffer);
                    buffer.clear();
                    match text_sink.take().expect("sink set") {
                        Sink::Title => out.title = Some(text),
                        Sink::Headline => out.headline = Some(text),
                        Sink::Paragraph => {
                            if !text.is_empty() {
                                out.paragraphs.push(text);
                            }
                        }
                    }
                }
            }
        }
    }
    if out.title.is_none() {
        out.title = out.headline.clone();
    }
    out
}

enum Sink {
    Title,
    Headline,
    Paragraph,
}

enum Token {
    Text(String),
    Open(String, Vec<(String, String)>),
    Close(String),
}

struct Tokenizer<'s> {
    src: &'s str,
    pos: usize,
}

impl<'s> Tokenizer<'s> {
    fn next_token(&mut self) -> Option<Token> {
        if self.pos >= self.src.len() {
            return None;
        }
        let rest = &self.src[self.pos..];
        if let Some(after) = rest.strip_prefix("<!--") {
            match after.find("-->") {
                Some(end) => {
                    self.pos += 4 + end + 3;
                    return self.next_token();
                }
                None => {
                    self.pos = self.src.len();
                    return None;
                }
            }
        }
        if rest.starts_with('<') {
            let Some(end) = rest.find('>') else {
                self.pos = self.src.len();
                return None;
            };
            let inner = &rest[1..end];
            self.pos += end + 1;
            if let Some(name) = inner.strip_prefix('/') {
                return Some(Token::Close(name.trim().to_ascii_lowercase()));
            }
            if inner.starts_with('!') || inner.starts_with('?') {
                return self.next_token(); // doctype / processing instruction
            }
            let inner = inner.trim_end_matches('/');
            let mut parts = inner.splitn(2, char::is_whitespace);
            let name = parts.next().unwrap_or("").to_ascii_lowercase();
            let attrs = parts.next().map(parse_attrs).unwrap_or_default();
            Some(Token::Open(name, attrs))
        } else {
            let end = rest.find('<').unwrap_or(rest.len());
            let text = rest[..end].to_owned();
            self.pos += end;
            Some(Token::Text(text))
        }
    }

    /// Skips content up to and including `</name>` (for script/style).
    fn skip_until_close(&mut self, name: &str) {
        let closing = format!("</{name}");
        let rest = &self.src[self.pos..];
        let lower = rest.to_ascii_lowercase();
        match lower.find(&closing) {
            Some(i) => {
                let after = &rest[i..];
                match after.find('>') {
                    Some(j) => self.pos += i + j + 1,
                    None => self.pos = self.src.len(),
                }
            }
            None => self.pos = self.src.len(),
        }
    }
}

fn parse_attrs(s: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() && bytes[i] != b'=' {
            i += 1;
        }
        if name_start == i {
            break;
        }
        let name = s[name_start..i].to_ascii_lowercase();
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'=' {
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'\'') {
                let quote = bytes[i];
                i += 1;
                let val_start = i;
                while i < bytes.len() && bytes[i] != quote {
                    i += 1;
                }
                out.push((name, s[val_start..i].to_owned()));
                i += 1; // closing quote
            } else {
                let val_start = i;
                while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                out.push((name, s[val_start..i].to_owned()));
            }
        } else {
            out.push((name, String::new()));
        }
    }
    out
}

fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_owned();
    }
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&#39;", "'")
        .replace("&nbsp;", " ")
        .replace("&amp;", "&")
}

fn normalize(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARTICLE: &str = r#"<!DOCTYPE html>
<html>
<head>
  <title>Flood waters rise &amp; recede</title>
  <meta name="category" content="weather">
  <meta name="date" content="1998-02-17">
  <script>var x = "<p>not a paragraph</p>";</script>
</head>
<body>
  <h1>Flood waters rise</h1>
  <img src="images/flood.jpg" alt="flood">
  <p>First  paragraph
     spans lines.</p>
  <p>Second paragraph with a <a href="related2.html">related story</a>.</p>
  <!-- <p>commented out</p> -->
  <p></p>
  <a href="http://cnn.com/weather">section</a>
</body>
</html>"#;

    #[test]
    fn extracts_article_structure() {
        let e = extract(ARTICLE);
        assert_eq!(e.title.as_deref(), Some("Flood waters rise & recede"));
        assert_eq!(e.headline.as_deref(), Some("Flood waters rise"));
        assert_eq!(
            e.meta,
            vec![
                ("category".to_string(), "weather".to_string()),
                ("date".to_string(), "1998-02-17".to_string())
            ]
        );
        assert_eq!(e.paragraphs.len(), 2, "empty paragraph dropped");
        assert_eq!(e.paragraphs[0], "First paragraph spans lines.");
        assert_eq!(e.images, vec!["images/flood.jpg"]);
        assert_eq!(e.links, vec!["related2.html", "http://cnn.com/weather"]);
    }

    #[test]
    fn script_content_is_skipped() {
        let e = extract(ARTICLE);
        assert!(e.paragraphs.iter().all(|p| !p.contains("not a paragraph")));
    }

    #[test]
    fn title_falls_back_to_h1() {
        let e = extract("<h1>Only headline</h1>");
        assert_eq!(e.title.as_deref(), Some("Only headline"));
    }

    #[test]
    fn wrap_documents_resolves_internal_links() {
        let docs = vec![
            HtmlDoc {
                name: "a.html".into(),
                html: "<title>A</title><p>x</p><a href=\"b.html\">b</a>".into(),
            },
            HtmlDoc {
                name: "b.html".into(),
                html: "<title>B</title><a href=\"http://other.example\">ext</a>".into(),
            },
        ];
        let g = wrap_documents(&docs, "Articles").unwrap();
        assert_eq!(g.members_str("Articles").len(), 2);
        let a = g.node_by_name("a.html").unwrap();
        let b = g.node_by_name("b.html").unwrap();
        assert_eq!(g.first_attr_str(a, "link"), Some(&Value::Node(b)));
        assert!(matches!(
            g.first_attr_str(b, "link"),
            Some(Value::Url(_))
        ));
        assert_eq!(g.first_attr_str(a, "title").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn unquoted_and_single_quoted_attrs() {
        let e = extract("<img src=pic.gif><a href='x.html'>t</a>");
        assert_eq!(e.images, vec!["pic.gif"]);
        assert_eq!(e.links, vec!["x.html"]);
    }

    #[test]
    fn malformed_html_does_not_panic() {
        for bad in ["<", "<p", "<a href=\"unclosed", "</", "<!-- unclosed", "<p>text"] {
            let _ = extract(bad);
        }
    }

    #[test]
    fn meta_without_name_or_content_is_ignored() {
        let e = extract(r#"<meta charset="utf-8"><meta name="x"><meta content="y">"#);
        assert!(e.meta.is_empty());
    }
}
