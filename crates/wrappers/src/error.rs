//! Wrapper errors.

use std::fmt;

/// An error translating an external source into a data graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WrapError {
    /// Which wrapper failed.
    pub wrapper: &'static str,
    /// 1-based line in the source input (0 when not applicable).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl WrapError {
    pub(crate) fn new(wrapper: &'static str, line: u32, message: impl Into<String>) -> Self {
        WrapError {
            wrapper,
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for WrapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} wrapper error at line {}: {}",
                self.wrapper, self.line, self.message
            )
        } else {
            write!(f, "{} wrapper error: {}", self.wrapper, self.message)
        }
    }
}

impl std::error::Error for WrapError {}
