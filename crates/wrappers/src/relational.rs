//! Relational wrapper: CSV tables → data graph.
//!
//! The AT&T site's personnel and organization data lived in "small
//! relational databases" (§5.1); this wrapper plays the role of their AWK
//! scripts. One CSV document is one table: the header row names the
//! columns, each data row becomes one object in a collection named after
//! the table.
//!
//! Semistructured conventions:
//!
//! * an **empty cell produces no edge** — a missing attribute, not a NULL;
//! * cell values that parse as integers or floats become typed values;
//!   `column:type` header annotations (`:int`, `:float`, `:string`,
//!   `:url`, `:text`, `:image`, `:postscript`, `:html`) force a type;
//! * the key column (first column by default) names the object
//!   `<table>_<key>`, so other tables can reference rows by name —
//!   foreign keys become graph edges after mediation.

use crate::WrapError;
use strudel_graph::{FileKind, Graph, Value};

/// Options for one table.
#[derive(Clone, Debug)]
pub struct TableOptions {
    /// Table (and collection) name.
    pub table: String,
    /// Index of the key column.
    pub key_column: usize,
}

impl TableOptions {
    /// Options for a table named `table`, keyed by its first column.
    pub fn new(table: &str) -> Self {
        TableOptions {
            table: table.to_owned(),
            key_column: 0,
        }
    }
}

/// Column types forced by header annotations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ColType {
    Infer,
    Int,
    Float,
    Str,
    Url,
    File(FileKind),
}

/// Wraps one CSV table into a fresh graph.
pub fn wrap(csv: &str, opts: &TableOptions) -> Result<Graph, WrapError> {
    let mut g = Graph::new();
    wrap_into(csv, opts, &mut g)?;
    Ok(g)
}

/// Wraps one CSV table into an existing graph.
pub fn wrap_into(csv: &str, opts: &TableOptions, g: &mut Graph) -> Result<(), WrapError> {
    let mut rows = parse_csv(csv)?;
    if rows.is_empty() {
        return Err(WrapError::new("relational", 1, "missing header row"));
    }
    let header = rows.remove(0);
    if opts.key_column >= header.len() {
        return Err(WrapError::new(
            "relational",
            1,
            format!(
                "key column {} out of range ({} columns)",
                opts.key_column,
                header.len()
            ),
        ));
    }
    let columns: Vec<(String, ColType)> = header
        .iter()
        .map(|h| {
            let (name, ty) = match h.rsplit_once(':') {
                Some((n, t)) => (n.trim(), t.trim()),
                None => (h.trim(), ""),
            };
            let ty = match ty {
                "" => ColType::Infer,
                "int" => ColType::Int,
                "float" => ColType::Float,
                "string" | "str" => ColType::Str,
                "url" => ColType::Url,
                "text" => ColType::File(FileKind::Text),
                "image" => ColType::File(FileKind::Image),
                "postscript" | "ps" => ColType::File(FileKind::PostScript),
                "html" => ColType::File(FileKind::Html),
                _ => ColType::Infer, // unknown annotation: keep the colon name
            };
            if matches!(ty, ColType::Infer) {
                // Unknown or absent annotation: keep the full header text.
                (h.trim().to_owned(), ColType::Infer)
            } else {
                (name.to_owned(), ty)
            }
        })
        .collect();

    let cid = g.intern_collection(&opts.table);
    for (line_no, row) in rows.iter().enumerate() {
        if row.len() != columns.len() {
            return Err(WrapError::new(
                "relational",
                line_no as u32 + 2,
                format!(
                    "row has {} cells, header has {} columns",
                    row.len(),
                    columns.len()
                ),
            ));
        }
        let key = row[opts.key_column].trim();
        if key.is_empty() {
            return Err(WrapError::new(
                "relational",
                line_no as u32 + 2,
                "empty key cell",
            ));
        }
        let node = g.add_named_node(&format!("{}_{}", opts.table, key));
        g.collect(cid, Value::Node(node));
        for ((name, ty), cell) in columns.iter().zip(row) {
            let cell = cell.trim();
            if cell.is_empty() {
                continue; // missing attribute, the semistructured way
            }
            g.add_edge_str(node, name, type_cell(cell, *ty));
        }
    }
    Ok(())
}

fn type_cell(cell: &str, ty: ColType) -> Value {
    match ty {
        ColType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .unwrap_or_else(|_| Value::string(cell)),
        ColType::Float => cell
            .parse::<f64>()
            .map(Value::Float)
            .unwrap_or_else(|_| Value::string(cell)),
        ColType::Str => Value::string(cell),
        ColType::Url => Value::url(cell),
        ColType::File(k) => Value::file(k, cell),
        ColType::Infer => {
            if let Ok(i) = cell.parse::<i64>() {
                Value::Int(i)
            } else if let Ok(f) = cell.parse::<f64>() {
                Value::Float(f)
            } else {
                Value::string(cell)
            }
        }
    }
}

/// A small RFC-4180-ish CSV parser: quoted fields, embedded commas,
/// doubled quotes, CRLF or LF line endings. Blank lines are skipped.
pub fn parse_csv(src: &str) -> Result<Vec<Vec<String>>, WrapError> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1u32;
    let mut chars = src.chars().peekable();
    let mut any = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    field.push(c);
                    line += 1;
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if field.is_empty() {
                    in_quotes = true;
                    any = true;
                } else {
                    return Err(WrapError::new(
                        "relational",
                        line,
                        "quote in the middle of an unquoted field",
                    ));
                }
            }
            ',' => {
                row.push(std::mem::take(&mut field));
                any = true;
            }
            '\r' => {}
            '\n' => {
                line += 1;
                if any || !field.is_empty() {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                any = false;
            }
            other => {
                field.push(other);
                any = true;
            }
        }
    }
    if in_quotes {
        return Err(WrapError::new("relational", line, "unterminated quote"));
    }
    if any || !field.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PEOPLE: &str = "\
id,name,dept,phone,room:string,homepage:url
mff,Mary Fernandez,db,5551234,B-101,http://example.org/mff
suciu,Dan Suciu,db,,B-102,
kang,Jaewoo Kang,systems,5559999,,
";

    #[test]
    fn wraps_rows_as_objects() {
        let g = wrap(PEOPLE, &TableOptions::new("People")).unwrap();
        assert_eq!(g.members_str("People").len(), 3);
        let mff = g.node_by_name("People_mff").unwrap();
        assert_eq!(
            g.first_attr_str(mff, "name").unwrap().as_str(),
            Some("Mary Fernandez")
        );
        assert_eq!(g.first_attr_str(mff, "phone"), Some(&Value::Int(5551234)));
        assert!(matches!(
            g.first_attr_str(mff, "homepage"),
            Some(Value::Url(_))
        ));
        // room:string forces string even though B-101 is stringish anyway.
        assert_eq!(g.first_attr_str(mff, "room").unwrap().as_str(), Some("B-101"));
    }

    #[test]
    fn empty_cells_produce_no_edges() {
        let g = wrap(PEOPLE, &TableOptions::new("People")).unwrap();
        let suciu = g.node_by_name("People_suciu").unwrap();
        assert_eq!(g.attr_str(suciu, "phone").count(), 0);
        assert_eq!(g.attr_str(suciu, "homepage").count(), 0);
        let kang = g.node_by_name("People_kang").unwrap();
        assert_eq!(g.attr_str(kang, "room").count(), 0);
    }

    #[test]
    fn quoted_fields_with_commas() {
        let csv = "id,title\n1,\"Hello, world\"\n2,\"She said \"\"hi\"\"\"\n";
        let g = wrap(csv, &TableOptions::new("T")).unwrap();
        let one = g.node_by_name("T_1").unwrap();
        assert_eq!(
            g.first_attr_str(one, "title").unwrap().as_str(),
            Some("Hello, world")
        );
        let two = g.node_by_name("T_2").unwrap();
        assert_eq!(
            g.first_attr_str(two, "title").unwrap().as_str(),
            Some("She said \"hi\"")
        );
    }

    #[test]
    fn ragged_rows_are_rejected_with_line() {
        let err = wrap("a,b\n1\n", &TableOptions::new("T")).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn missing_header_is_rejected() {
        assert!(wrap("", &TableOptions::new("T")).is_err());
    }

    #[test]
    fn key_column_selectable() {
        let opts = TableOptions {
            table: "T".into(),
            key_column: 1,
        };
        let g = wrap("a,b\n1,x\n2,y\n", &opts).unwrap();
        assert!(g.node_by_name("T_x").is_some());
        assert!(g.node_by_name("T_y").is_some());
    }

    #[test]
    fn key_column_out_of_range() {
        let opts = TableOptions {
            table: "T".into(),
            key_column: 9,
        };
        assert!(wrap("a,b\n1,2\n", &opts).is_err());
    }

    #[test]
    fn multiple_tables_into_one_graph() {
        let mut g = wrap(PEOPLE, &TableOptions::new("People")).unwrap();
        wrap_into(
            "id,name,lead\nstrudel,Strudel,mff\n",
            &TableOptions::new("Projects"),
            &mut g,
        )
        .unwrap();
        assert_eq!(g.members_str("People").len(), 3);
        assert_eq!(g.members_str("Projects").len(), 1);
    }

    #[test]
    fn crlf_and_trailing_newline_tolerated() {
        let g = wrap("a,b\r\n1,2\r\n", &TableOptions::new("T")).unwrap();
        assert_eq!(g.members_str("T").len(), 1);
    }

    #[test]
    fn float_inference() {
        let g = wrap("id,score\nx,2.5\n", &TableOptions::new("T")).unwrap();
        let x = g.node_by_name("T_x").unwrap();
        assert_eq!(g.first_attr_str(x, "score"), Some(&Value::Float(2.5)));
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(parse_csv("a,\"b\nc").is_err());
    }
}
