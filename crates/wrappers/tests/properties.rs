//! Property tests for the HTML and BibTeX wrappers: seeded hostile
//! fragments, truncated at every char boundary, must never panic the
//! parsers. Wrappers sit at the trust boundary — they eat whatever the
//! filesystem or a crawler hands them — so "malformed input" has to mean
//! `Err` or a degraded parse, never a crash. Cases come from a
//! deterministic seeded PRNG, so every failure reproduces from its seed.

use strudel_prng::{choose, Rng, SeedableRng, SmallRng};
use strudel_wrappers::bibtex;
use strudel_wrappers::html::{self, HtmlDoc};

const SEEDS: [u64; 4] = [11, 23, 1998, 0xBADF00D];

/// HTML-shaped shrapnel: tag fragments, half-open comments and entities,
/// multibyte text, NULs — everything a truncated download or a hostile
/// page could contain.
const HTML_TOKENS: &[&str] = &[
    "<", ">", "</", "<a href=\"", "<a href='x'", "\"", "'", "<h1>", "</h1>", "<table", "<td>",
    "<!--", "--", "-->", "<script>", "&", "&amp;", "&#", "&#x41;", "&#999999999;", "&unknown;",
    "=", " ", "\n", "\t", "text", "<B", "aria-label", "<>", "<<>>", "\0", "é", "日本", "🦀",
    "<a\u{0}b>", "<!DOCTYPE", "<![CDATA[", "/>",
];

/// BibTeX-shaped shrapnel: entry/macro openers, unbalanced braces and
/// quotes, concatenation hashes, escapes, comments.
const BIB_TOKENS: &[&str] = &[
    "@", "@article", "@string", "@ARTICLE", "{", "}", "(", ")", "\"", "#", "=", ",", "key",
    "author", "title", " and ", "{nested{deep}", "\\", "\\\"", "%", " ", "\n", "\t", "1998",
    "é", "日本", "🦀", "\0", "@misc{k,", "a = \"v\"", "a = {v}", "a = 5", "@comment",
];

fn fragment(rng: &mut SmallRng, tokens: &[&str]) -> String {
    let n = rng.gen_range(1..40usize);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(choose::<&str>(rng, tokens));
    }
    s
}

/// Every truncation of `s` that lands on a char boundary, shortest first
/// (a torn download can end anywhere).
fn truncations(s: &str) -> impl Iterator<Item = &str> {
    s.char_indices().map(move |(i, _)| &s[..i]).chain([s])
}

#[test]
fn html_extract_never_panics_on_hostile_fragments() {
    for seed in SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        for case in 0..60 {
            let s = fragment(&mut rng, HTML_TOKENS);
            for cut in truncations(&s) {
                // Any outcome but a panic is acceptable.
                let extracted = html::extract(cut);
                drop(extracted);
            }
            let _ = case;
        }
    }
}

#[test]
fn html_wrapping_never_panics_and_links_stay_in_graph() {
    for seed in SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..25 {
            let a = fragment(&mut rng, HTML_TOKENS);
            let b = format!("<a href=\"a.html\">x</a>{}", fragment(&mut rng, HTML_TOKENS));
            for cut in truncations(&b) {
                let docs = HtmlDoc::from_pairs(&[
                    ("a.html".to_string(), a.clone()),
                    ("b.html".to_string(), cut.to_string()),
                ]);
                if let Ok(g) = html::wrap_documents(&docs, "Pages") {
                    // Whatever survived the mangling must be a coherent
                    // graph: every edge target in range.
                    for oid in g.node_oids() {
                        for e in g.edges(oid) {
                            if let Some(to) = e.to.as_node() {
                                assert!(g.contains_node(to), "dangling link in wrapped graph");
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn bibtex_parse_never_panics_on_hostile_fragments() {
    for seed in SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..60 {
            let s = fragment(&mut rng, BIB_TOKENS);
            for cut in truncations(&s) {
                let _ = bibtex::parse(cut);
                let _ = bibtex::wrap(cut);
            }
        }
    }
}

#[test]
fn bibtex_truncated_real_entries_error_cleanly() {
    let src = concat!(
        "@string{sig = \"SIGMOD\"}\n",
        "@article{fls98,\n",
        "  author = \"Fernandez and Florescu\",\n",
        "  title = {Catching the {Boat} with Strudel},\n",
        "  booktitle = sig # \" record\",\n",
        "  year = 1998,\n",
        "}\n",
    );
    for cut in truncations(src) {
        // Complete prefixes parse; torn ones must error, not panic.
        let _ = bibtex::parse(cut);
        let _ = bibtex::wrap(cut);
    }
    // The full source still parses to a real entry after all that.
    let entries = bibtex::parse(src).unwrap();
    assert_eq!(entries.len(), 1);
}

#[test]
fn split_authors_never_panics() {
    for seed in SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..60 {
            let s = fragment(&mut rng, BIB_TOKENS);
            for cut in truncations(&s) {
                let _ = bibtex::split_authors(cut);
            }
        }
    }
}
