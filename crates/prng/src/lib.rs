//! A small, deterministic, dependency-free PRNG for workload generation,
//! property tests, and benchmarks.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the standard
//! pairing recommended by the xoshiro authors so that low-entropy seeds
//! (0, 1, 2, ...) still produce well-mixed streams. The API mirrors the
//! small slice of `rand` the workspace used (`SmallRng::seed_from_u64`,
//! `gen_range` over integer ranges, `gen_bool`), so call sites only swap
//! their import line. Determinism per seed is a feature here: generated
//! corpora and property-test cases must be reproducible across runs and
//! machines.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use super::SmallRng;
}

/// Seedable generators. Mirror of the `rand` trait of the same name for
/// the one constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ state.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    /// Expands a 64-bit seed into the full 256-bit state via splitmix64.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl SmallRng {
    /// The raw 64-bit output of xoshiro256++.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)` via Lemire-style rejection (bound > 0).
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection zone keeps the distribution exactly uniform.
        let zone = bound.wrapping_neg() % bound; // = 2^64 mod bound
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= zone {
                return hi;
            }
        }
    }
}

/// The user-facing sampling methods, rand-style.
pub trait Rng {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>;
    fn gen_bool(&mut self, p: f64) -> bool;
    /// A uniform f64 in `[0, 1)`.
    fn gen_f64(&mut self) -> f64;
}

impl Rng for SmallRng {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    fn gen_f64(&mut self) -> f64 {
        // 53 random bits into the mantissa: uniform over [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: any u64 reinterpreted fits.
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.bounded(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i32, i64, u32, u64, usize, u8, u16, i8, i16);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

/// Convenience: a uniformly chosen element of a non-empty slice.
pub fn choose<'a, T>(rng: &mut SmallRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z: usize = rng.gen_range(0..3usize);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_range_hits_every_bucket() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..8_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 500, "bucket {i} starved: {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let x = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = SmallRng::seed_from_u64(9);
        let items = ["a", "b", "c"];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*choose(&mut rng, &items));
        }
        assert_eq!(seen.len(), 3);
    }
}
