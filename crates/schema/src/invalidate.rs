//! Delta-driven page invalidation for the click-time engine.
//!
//! Given a data-graph delta, compute exactly which dynamic pages
//! ([`PageKey`]s) could have changed content — the set a page cache must
//! evict. The technique mirrors the incremental-maintenance delta rules:
//! every changed fact is unified against each condition atom of each
//! schema edge's guard; matching atoms seed a re-evaluation of the guard
//! whose result rows name the affected source pages. Deleted facts are
//! evaluated against the *pre*-delta database (the bindings that used to
//! hold), inserted facts against the *post*-delta database.
//!
//! Out-of-fragment guards are handled conservatively rather than by
//! falling back to whole-cache flushes: a guard using `not(…)` or a
//! multi-step regular path expression dirties its source symbol
//! *wholesale* (every cached page of that symbol), leaving all other
//! symbols' pages untouched.

use crate::dynamic::{eval_args, PageKey};
use crate::incremental::{
    collect_delete_facts, collect_facts, fact_in_graph, fact_touches_regex_fallback, unify, Fact,
};
use crate::SiteSchema;
use std::collections::HashSet;
use strudel_graph::GraphDelta;
use strudel_repo::Database;
use strudel_struql::{Condition, Evaluator, StruqlResult, Term};

/// The pages a delta dirties: exact keys plus wholesale-dirty symbols.
#[derive(Clone, Debug, Default)]
pub struct DirtySet {
    /// Exactly identified dirty pages.
    pub pages: HashSet<PageKey>,
    /// Symbols whose *every* page must be considered dirty (non-monotone
    /// or non-localizable guards).
    pub symbols: HashSet<String>,
}

impl DirtySet {
    /// Whether a given page is dirtied by this set.
    pub fn contains(&self, key: &PageKey) -> bool {
        self.symbols.contains(&key.symbol) || self.pages.contains(key)
    }

    /// Whether nothing was dirtied.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty() && self.symbols.is_empty()
    }
}

/// Does `cond` (or any condition nested under a `not`) unify with `fact`
/// only through a negation or an un-seedable path? Returns:
/// `Some(true)` — matches monotonically, seeds in hand;
/// `Some(false)` — no relation to the fact at all.
fn fact_touches_negation(cond: &Condition, fact: &Fact) -> bool {
    match cond {
        Condition::Not(inner, _) => {
            // The inner existential relates to the fact either through
            // direct unification or — for multi-step regexes, which unify
            // with no single fact — through the label-relevance fallback.
            // Missing the latter under-invalidates: a retraction feeding a
            // Kleene closure under not(…) would leave stale pages cached.
            unify(inner, fact).is_some()
                || fact_touches_regex_fallback(inner, fact)
                || fact_touches_negation(inner, fact)
        }
        _ => false,
    }
}

/// Computes the set of dynamic pages whose content may differ after
/// `delta`. `old_db` is the database before the delta, `new_db` after.
pub fn dirty_pages(
    schema: &SiteSchema,
    old_db: &Database,
    new_db: &Database,
    delta: &GraphDelta,
) -> StruqlResult<DirtySet> {
    let mut dirty = DirtySet::default();
    let inserts = collect_facts(delta);
    // Delete facts are unified against the PRE-delta database, so a mixed
    // delta that removes an edge it inserted itself must be filtered: its
    // oids were never issued by the old graph, and seeding an evaluation
    // with them would index out of bounds. No old binding can depend on
    // such a fact, so skipping it loses nothing (the paired insert is
    // evaluated against the new database, where the edge is already gone).
    let deletes: Vec<Fact> = collect_delete_facts(delta)
        .into_iter()
        .filter(|f| fact_in_graph(f, old_db.graph()))
        .collect();

    for edge in &schema.edges {
        let src_symbol = match &schema.nodes[edge.from] {
            crate::SchemaNode::Skolem(sym) => sym.clone(),
            _ => continue,
        };
        // Nested-Skolem source args can't be reconstructed from bindings
        // rows; treat any matching fact as wholesale dirt.
        let args_invertible = edge
            .src_args
            .iter()
            .all(|t| matches!(t, Term::Var(_) | Term::Const(_)));

        for (facts, db) in [(&inserts, new_db), (&deletes, old_db)] {
            let ev = Evaluator::new(db);
            for fact in facts.iter() {
                for cond in &edge.guard {
                    if fact_touches_negation(cond, fact)
                        || fact_touches_regex_fallback(cond, fact)
                    {
                        dirty.symbols.insert(src_symbol.clone());
                        continue;
                    }
                    let Some(seeds) = unify(cond, fact) else {
                        continue;
                    };
                    if !args_invertible {
                        dirty.symbols.insert(src_symbol.clone());
                        continue;
                    }
                    let (vars, rows) = ev.eval_where_bindings(&edge.guard, &seeds)?;
                    for row in &rows {
                        let args = eval_args(&edge.src_args, &vars, row)?;
                        dirty.pages.insert(PageKey {
                            symbol: src_symbol.clone(),
                            args,
                        });
                    }
                }
            }
        }
    }
    Ok(dirty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::{ddl, Value};
    use strudel_repo::IndexLevel;
    use strudel_struql::parse;

    const QUERY: &str = r#"
        create RootPage()
        where Publications(x)
        create PaperPage(x)
        link RootPage() -> "paper" -> PaperPage(x)
        collect Roots(RootPage())
        { where x -> "title" -> t
          link PaperPage(x) -> "title" -> t }
        { where x -> "year" -> y
          create YearPage(y)
          link PaperPage(x) -> "year" -> YearPage(y),
               YearPage(y) -> "label" -> y }
    "#;

    fn db() -> Database {
        let g = ddl::parse(
            r#"
            object p1 in Publications { title : "Alpha"; year : 1997; }
            object p2 in Publications { title : "Beta"; year : 1998; }
        "#,
        )
        .unwrap();
        Database::from_graph(g, IndexLevel::Full)
    }

    fn after(db: &Database, delta: &GraphDelta) -> Database {
        let mut g = db.graph().clone();
        delta.apply(&mut g).unwrap();
        Database::from_graph(g, IndexLevel::Full)
    }

    #[test]
    fn title_edit_dirties_only_that_paper() {
        let db = db();
        let schema = SiteSchema::extract(&parse(QUERY).unwrap());
        let p1 = db.graph().node_by_name("p1").unwrap();
        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "title", Value::string("Alpha"));
        delta.add_edge(p1, "title", Value::string("Alpha v2"));
        let new_db = after(&db, &delta);
        let dirty = dirty_pages(&schema, &db, &new_db, &delta).unwrap();
        let p1_key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(p1)],
        };
        let p2_key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(db.graph().node_by_name("p2").unwrap())],
        };
        assert!(dirty.contains(&p1_key));
        assert!(!dirty.contains(&p2_key), "p2 untouched: {dirty:?}");
        assert!(dirty.symbols.is_empty());
    }

    #[test]
    fn new_publication_dirties_root() {
        let db = db();
        let schema = SiteSchema::extract(&parse(QUERY).unwrap());
        let mut delta = GraphDelta::new();
        delta.add_node(Some("p3"));
        let oid = strudel_graph::Oid::from_index(db.graph().node_count());
        delta.add_edge(oid, "title", Value::string("Gamma"));
        delta.collect("Publications", Value::Node(oid));
        let new_db = after(&db, &delta);
        let dirty = dirty_pages(&schema, &db, &new_db, &delta).unwrap();
        assert!(dirty.contains(&PageKey {
            symbol: "RootPage".into(),
            args: vec![],
        }));
        // The new paper's own page is dirty too (it now has content).
        assert!(dirty.contains(&PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(oid)],
        }));
    }

    #[test]
    fn year_retraction_dirties_paper_and_year_pages() {
        let db = db();
        let schema = SiteSchema::extract(&parse(QUERY).unwrap());
        let p1 = db.graph().node_by_name("p1").unwrap();
        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "year", Value::Int(1997));
        let new_db = after(&db, &delta);
        let dirty = dirty_pages(&schema, &db, &new_db, &delta).unwrap();
        assert!(dirty.contains(&PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(p1)],
        }));
        assert!(dirty.contains(&PageKey {
            symbol: "YearPage".into(),
            args: vec![Value::Int(1997)],
        }));
        assert!(!dirty.contains(&PageKey {
            symbol: "YearPage".into(),
            args: vec![Value::Int(1998)],
        }));
    }

    #[test]
    fn negated_guard_dirties_symbol_wholesale() {
        let query = r#"
            where Publications(x), not(x -> "hidden" -> h)
            create PubPage(x)
            link PubPage(x) -> "self" -> x
            collect Roots(PubPage(x))
        "#;
        let db = db();
        let schema = SiteSchema::extract(&parse(query).unwrap());
        let p1 = db.graph().node_by_name("p1").unwrap();
        let mut delta = GraphDelta::new();
        delta.add_edge(p1, "hidden", Value::Bool(true));
        let new_db = after(&db, &delta);
        let dirty = dirty_pages(&schema, &db, &new_db, &delta).unwrap();
        assert!(dirty.symbols.contains("PubPage"), "{dirty:?}");
    }

    #[test]
    fn self_cancelling_mixed_delta_does_not_panic() {
        // Regression: a delta that adds a node+edge and removes the edge
        // again produces a delete fact whose oid the old graph never
        // issued. Unifying it against the pre-delta database used to
        // index out of bounds; the `fact_in_graph` guard now skips it.
        let db = db();
        let schema = SiteSchema::extract(&parse(QUERY).unwrap());
        let base = db.graph().node_count();
        let mut delta = GraphDelta::new();
        delta.add_node(Some("p3"));
        let p3 = strudel_graph::Oid::from_index(base);
        delta.add_edge(p3, "year", Value::Int(1998));
        delta.collect("Publications", Value::Node(p3));
        delta.remove_edge(p3, "year", Value::Int(1998));
        delta.uncollect("Publications", Value::Node(p3));
        let new_db = after(&db, &delta);

        let dirty = dirty_pages(&schema, &db, &new_db, &delta).unwrap();
        // The inserts still dirty the pages they touch (evaluated against
        // the new database, where the node exists); existing pages of
        // other papers stay clean.
        let p1 = db.graph().node_by_name("p1").unwrap();
        assert!(!dirty.contains(&PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(p1)],
        }));
    }

    #[test]
    fn self_cancelling_delta_with_path_only_guard_does_not_panic() {
        // The sharpest form of the regression: when the guard is a bare
        // path condition (no collection atom to filter the phantom row
        // first), the seeded evaluation reaches `graph.edges(oid)` with
        // the never-issued oid directly — without the `fact_in_graph`
        // guard this indexes out of bounds.
        let query = r#"
            where x -> "title" -> t
            create TitlePage(x)
            link TitlePage(x) -> "title" -> t
            collect Titles(TitlePage(x))
        "#;
        let db = db();
        let schema = SiteSchema::extract(&parse(query).unwrap());
        let base = db.graph().node_count();
        let mut delta = GraphDelta::new();
        delta.add_node(Some("p3"));
        let p3 = strudel_graph::Oid::from_index(base);
        delta.add_edge(p3, "title", Value::string("Gamma"));
        delta.remove_edge(p3, "title", Value::string("Gamma"));
        let new_db = after(&db, &delta);

        let dirty = dirty_pages(&schema, &db, &new_db, &delta).unwrap();
        let p1 = db.graph().node_by_name("p1").unwrap();
        assert!(!dirty.contains(&PageKey {
            symbol: "TitlePage".into(),
            args: vec![Value::Node(p1)],
        }));
    }

    const KLEENE_QUERY: &str = r#"
        where Publications(x), x -> "rel"* -> y
        create RelPage(x)
        link RelPage(x) -> "reaches" -> y
        collect Roots(RelPage(x))
    "#;

    /// Regression: a multi-step regex used to dirty its symbol wholesale
    /// for *every* edge fact. A delta that only retracts facts whose label
    /// no guard can traverse must produce an empty dirty set — zero
    /// evictions.
    #[test]
    fn irrelevant_label_retraction_with_kleene_guard_dirties_nothing() {
        let g = ddl::parse(
            r#"
            object p1 in Publications { rel : &p2; note : "draft"; }
            object p2 in Publications { title : "Beta"; }
        "#,
        )
        .unwrap();
        let db = Database::from_graph(g, IndexLevel::Full);
        let schema = SiteSchema::extract(&parse(KLEENE_QUERY).unwrap());
        let p1 = db.graph().node_by_name("p1").unwrap();
        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "note", Value::string("draft"));
        let new_db = after(&db, &delta);
        let dirty = dirty_pages(&schema, &db, &new_db, &delta).unwrap();
        assert!(dirty.is_empty(), "no guard references 'note': {dirty:?}");
    }

    /// The flip side: a fact whose label the Kleene closure *can* traverse
    /// still dirties the symbol wholesale (the edge may extend paths
    /// anywhere).
    #[test]
    fn traversable_label_still_dirties_kleene_symbol_wholesale() {
        let g = ddl::parse(
            r#"
            object p1 in Publications { rel : &p2; }
            object p2 in Publications { title : "Beta"; }
        "#,
        )
        .unwrap();
        let db = Database::from_graph(g, IndexLevel::Full);
        let schema = SiteSchema::extract(&parse(KLEENE_QUERY).unwrap());
        let p1 = db.graph().node_by_name("p1").unwrap();
        let p2 = db.graph().node_by_name("p2").unwrap();
        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "rel", Value::Node(p2));
        let new_db = after(&db, &delta);
        let dirty = dirty_pages(&schema, &db, &new_db, &delta).unwrap();
        assert!(dirty.symbols.contains("RelPage"), "{dirty:?}");
    }

    /// Regression: `not(…)` over a multi-step regex used to relate to *no*
    /// edge fact (unify can't seed a multi-step regex), silently leaving
    /// stale pages cached when a retraction changed the closure under the
    /// negation.
    #[test]
    fn negation_over_kleene_dirties_on_traversable_label() {
        let query = r#"
            where Publications(x), not(x -> "rel"+ -> y)
            create LeafPage(x)
            link LeafPage(x) -> "self" -> x
            collect Roots(LeafPage(x))
        "#;
        let g = ddl::parse(
            r#"
            object p1 in Publications { rel : &p2; }
            object p2 in Publications { title : "Beta"; }
        "#,
        )
        .unwrap();
        let db = Database::from_graph(g, IndexLevel::Full);
        let schema = SiteSchema::extract(&parse(query).unwrap());
        let p1 = db.graph().node_by_name("p1").unwrap();
        let p2 = db.graph().node_by_name("p2").unwrap();
        // p1 loses its rel edge: it now satisfies the negation and its
        // page gains content — the delta must dirty LeafPage.
        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "rel", Value::Node(p2));
        let new_db = after(&db, &delta);
        let dirty = dirty_pages(&schema, &db, &new_db, &delta).unwrap();
        assert!(dirty.symbols.contains("LeafPage"), "{dirty:?}");
        // An irrelevant label under the same guard still dirties nothing.
        let mut irrelevant = GraphDelta::new();
        irrelevant.add_edge(p1, "note", Value::string("draft"));
        let new_db2 = after(&db, &irrelevant);
        let dirty2 = dirty_pages(&schema, &db, &new_db2, &irrelevant).unwrap();
        assert!(dirty2.is_empty(), "{dirty2:?}");
    }

    #[test]
    fn unrelated_edit_dirties_nothing() {
        let db = db();
        let schema = SiteSchema::extract(&parse(QUERY).unwrap());
        let p1 = db.graph().node_by_name("p1").unwrap();
        let mut delta = GraphDelta::new();
        delta.add_edge(p1, "internal-note", Value::string("draft"));
        let new_db = after(&db, &delta);
        let dirty = dirty_pages(&schema, &db, &new_db, &delta).unwrap();
        assert!(dirty.is_empty(), "{dirty:?}");
    }
}
