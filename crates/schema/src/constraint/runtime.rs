//! Runtime (materialized-graph) constraint checking — complete, used when
//! the static verifier cannot prove a constraint, and by tests to validate
//! the verifier's soundness.

use super::{Atom, CTerm, Constraint, Quant};
use std::collections::HashMap;
use strudel_graph::{coerce, Graph, Value};
use strudel_struql::rpe::Nfa;

/// The outcome of a runtime check.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckResult {
    /// Whether the constraint holds on this graph.
    pub holds: bool,
    /// On failure, the bindings of the universally quantified variables
    /// witnessing the violation.
    pub counterexample: Option<Vec<(String, Value)>>,
}

impl CheckResult {
    fn ok() -> Self {
        CheckResult {
            holds: true,
            counterexample: None,
        }
    }
}

/// Checks `constraint` against a materialized graph.
pub fn check(graph: &Graph, constraint: &Constraint) -> CheckResult {
    // Precompile the path regexes once.
    let nfas: Vec<Option<Nfa>> = constraint
        .atoms
        .iter()
        .map(|a| match a {
            Atom::Path { regex, .. } => Some(Nfa::compile(regex, graph)),
            Atom::InCollection { .. } => None,
        })
        .collect();
    let mut env: HashMap<String, Value> = HashMap::new();
    let mut foralls: Vec<(String, Value)> = Vec::new();
    quantify(graph, constraint, &nfas, 0, &mut env, &mut foralls)
}

fn quantify(
    graph: &Graph,
    constraint: &Constraint,
    nfas: &[Option<Nfa>],
    depth: usize,
    env: &mut HashMap<String, Value>,
    foralls: &mut Vec<(String, Value)>,
) -> CheckResult {
    let Some(q) = constraint.quantifiers.get(depth) else {
        return if body_holds(graph, constraint, nfas, env) {
            CheckResult::ok()
        } else {
            CheckResult {
                holds: false,
                counterexample: Some(foralls.clone()),
            }
        };
    };
    let members: Vec<Value> = graph.members_str(&q.collection).to_vec();
    match q.quant {
        Quant::Forall => {
            for m in members {
                env.insert(q.var.clone(), m.clone());
                foralls.push((q.var.clone(), m));
                let r = quantify(graph, constraint, nfas, depth + 1, env, foralls);
                if !r.holds {
                    return r;
                }
                foralls.pop();
            }
            env.remove(&q.var);
            CheckResult::ok()
        }
        Quant::Exists => {
            for m in members {
                env.insert(q.var.clone(), m);
                let r = quantify(graph, constraint, nfas, depth + 1, env, foralls);
                if r.holds {
                    env.remove(&q.var);
                    return CheckResult::ok();
                }
            }
            env.remove(&q.var);
            CheckResult {
                holds: false,
                counterexample: Some(foralls.clone()),
            }
        }
    }
}

/// Evaluates the body conjunction under `env`; free variables in target
/// positions are existential and must be consistent across atoms.
fn body_holds(
    graph: &Graph,
    constraint: &Constraint,
    nfas: &[Option<Nfa>],
    env: &HashMap<String, Value>,
) -> bool {
    // A tiny relation of candidate bindings for the free variables.
    let mut rows: Vec<HashMap<String, Value>> = vec![env.clone()];
    for (atom, nfa) in constraint.atoms.iter().zip(nfas) {
        let mut next = Vec::new();
        match atom {
            Atom::Path { src, dst, .. } => {
                let nfa = nfa.as_ref().expect("path atom has an nfa");
                for row in &rows {
                    let Some(start) = row.get(src) else {
                        continue; // unquantified source: rejected at parse
                    };
                    let reached = nfa.eval_from(graph, start);
                    match dst {
                        CTerm::Const(c) => {
                            if reached.iter().any(|v| coerce::eq(v, c)) {
                                next.push(row.clone());
                            }
                        }
                        CTerm::Var(v) => match row.get(v) {
                            Some(bound) => {
                                if reached.iter().any(|r| coerce::eq(r, bound)) {
                                    next.push(row.clone());
                                }
                            }
                            None => {
                                for r in reached {
                                    let mut extended = row.clone();
                                    extended.insert(v.clone(), r);
                                    next.push(extended);
                                }
                            }
                        },
                    }
                }
            }
            Atom::InCollection { var, collection } => {
                let cid = graph.collection_id(collection);
                for row in &rows {
                    let Some(v) = row.get(var) else { continue };
                    if let Some(cid) = cid {
                        if graph.in_collection(cid, v) {
                            next.push(row.clone());
                        }
                    }
                }
            }
        }
        rows = next;
        if rows.is_empty() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::super::parse_constraint;
    use super::*;

    /// root -> a -> b; c is an orphan page. Collections: Pages {a, b, c},
    /// Roots {root}.
    fn site() -> Graph {
        let mut g = Graph::new();
        let root = g.add_named_node("root");
        let a = g.add_named_node("a");
        let b = g.add_named_node("b");
        let c = g.add_named_node("c");
        g.add_edge_str(root, "child", Value::Node(a));
        g.add_edge_str(a, "child", Value::Node(b));
        g.add_edge_str(a, "title", Value::string("A"));
        g.add_edge_str(b, "title", Value::string("B"));
        g.add_edge_str(c, "title", Value::string("C"));
        g.collect_str("Roots", root);
        g.collect_str("Pages", a);
        g.collect_str("Pages", b);
        g.collect_str("Pages", c);
        g.collect_str("Linked", a);
        g.collect_str("Linked", b);
        g
    }

    #[test]
    fn reachability_violated_by_orphan() {
        let g = site();
        let c = parse_constraint("forall p in Pages : exists r in Roots : r -> * -> p").unwrap();
        let r = check(&g, &c);
        assert!(!r.holds);
        let witness = r.counterexample.unwrap();
        assert_eq!(witness[0].0, "p");
        assert_eq!(
            witness[0].1,
            Value::Node(g.node_by_name("c").unwrap()),
            "the orphan is the counterexample"
        );
    }

    #[test]
    fn reachability_holds_on_linked_subset() {
        let g = site();
        let c = parse_constraint("forall p in Linked : exists r in Roots : r -> * -> p").unwrap();
        assert!(check(&g, &c).holds);
    }

    #[test]
    fn attribute_existence() {
        let g = site();
        let c = parse_constraint(r#"forall p in Pages : p -> "title" -> t"#).unwrap();
        assert!(check(&g, &c).holds);
        let c2 = parse_constraint(r#"forall p in Pages : p -> "author" -> t"#).unwrap();
        assert!(!check(&g, &c2).holds);
    }

    #[test]
    fn constant_targets() {
        let g = site();
        let c = parse_constraint(r#"forall r in Roots : r -> "child" . "title" -> "A""#).unwrap();
        assert!(check(&g, &c).holds);
        let c2 = parse_constraint(r#"forall r in Roots : r -> "title" -> "Z""#).unwrap();
        assert!(!check(&g, &c2).holds);
    }

    #[test]
    fn conjunction_with_shared_free_variable() {
        let mut g = Graph::new();
        let p = g.add_named_node("p");
        let q = g.add_named_node("q");
        g.add_edge_str(p, "a", Value::Int(1));
        g.add_edge_str(p, "b", Value::Int(1));
        g.add_edge_str(q, "a", Value::Int(1));
        g.add_edge_str(q, "b", Value::Int(2));
        g.collect_str("Both", p);
        // p satisfies a->v and b->v with the same v; q does not.
        let c = parse_constraint(r#"forall x in Both : x -> "a" -> v and x -> "b" -> v"#).unwrap();
        assert!(check(&g, &c).holds);
        g.collect_str("Both", q);
        assert!(!check(&g, &c).holds);
    }

    #[test]
    fn membership_atom() {
        let g = site();
        let c = parse_constraint("forall p in Linked : p in Pages").unwrap();
        assert!(check(&g, &c).holds);
        let c2 = parse_constraint("forall p in Pages : p in Linked").unwrap();
        assert!(!check(&g, &c2).holds);
    }

    #[test]
    fn empty_collection_makes_forall_trivial_and_exists_false() {
        let g = site();
        let c = parse_constraint(r#"forall p in Ghost : p -> "title" -> t"#).unwrap();
        assert!(check(&g, &c).holds);
        let c2 =
            parse_constraint("forall p in Pages : exists r in Ghost : r -> * -> p").unwrap();
        assert!(!check(&g, &c2).holds);
    }
}
