//! Integrity constraints on Strudel-generated sites.
//!
//! The paper (§2.5): *"Integrity constraints are logical sentences built
//! from expressions of the form `C(X)` and `X -> R -> Y` using logical
//! connectives and quantifiers"*, e.g. "all paper presentation pages are
//! reachable from a category page":
//!
//! ```text
//! forall p in PaperPages : exists c in CategoryPages : c -> * -> p
//! ```
//!
//! The concrete syntax accepted by [`parse_constraint`]:
//!
//! ```text
//! constraint := quantifier* body
//! quantifier := ('forall' | 'exists') var 'in' Collection ':'
//! body       := atom ('and' atom)*
//! atom       := var '->' R '->' term        -- R: STRUQL path regex
//!             | var 'in' Collection
//! term       := var | "string" | integer
//! ```
//!
//! Free variables in path-atom target position are implicitly
//! existentially quantified ("the page has *a* title").
//!
//! Two checkers share this AST:
//!
//! * [`runtime::check`] — complete, over a materialized graph;
//! * [`verify::verify`] — sound static proof against the site schema,
//!   deciding `Proved` without materializing any site, or `Unknown`.

pub mod runtime;
pub mod verify;

use std::fmt;
use strudel_graph::Value;
use strudel_struql::{parse_path_regex, PathRegex};

/// Quantifier kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quant {
    /// Universal.
    Forall,
    /// Existential.
    Exists,
}

/// One quantifier: `forall v in Coll`.
#[derive(Clone, Debug, PartialEq)]
pub struct Quantifier {
    /// Kind.
    pub quant: Quant,
    /// Bound variable.
    pub var: String,
    /// The collection the variable ranges over.
    pub collection: String,
}

/// A term in atom target position.
#[derive(Clone, Debug, PartialEq)]
pub enum CTerm {
    /// A variable (quantified or free-existential).
    Var(String),
    /// A constant.
    Const(Value),
}

/// One atom of the body conjunction.
#[derive(Clone, Debug, PartialEq)]
pub enum Atom {
    /// `src -> R -> dst`.
    Path {
        /// Source variable.
        src: String,
        /// The path regex.
        regex: PathRegex,
        /// Target term.
        dst: CTerm,
    },
    /// `var in Collection`.
    InCollection {
        /// The variable.
        var: String,
        /// The collection.
        collection: String,
    },
}

/// A parsed constraint: a quantifier prefix over a conjunction of atoms.
#[derive(Clone, Debug, PartialEq)]
pub struct Constraint {
    /// Quantifier prefix, outermost first.
    pub quantifiers: Vec<Quantifier>,
    /// Body conjunction.
    pub atoms: Vec<Atom>,
    /// The original source text (for reports).
    pub source: String,
}

/// A constraint syntax error.
#[derive(Clone, Debug, PartialEq)]
pub struct ConstraintError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint error: {}", self.message)
    }
}

impl std::error::Error for ConstraintError {}

fn err(message: impl Into<String>) -> ConstraintError {
    ConstraintError {
        message: message.into(),
    }
}

/// Parses a constraint.
pub fn parse_constraint(src: &str) -> Result<Constraint, ConstraintError> {
    let mut quantifiers = Vec::new();
    let mut rest = src.trim();

    loop {
        let word = first_word(rest);
        let quant = match word {
            "forall" => Quant::Forall,
            "exists" => Quant::Exists,
            _ => break,
        };
        rest = rest[word.len()..].trim_start();
        let var = first_word(rest);
        if var.is_empty() {
            return Err(err("expected a variable after the quantifier"));
        }
        rest = rest[var.len()..].trim_start();
        let kw = first_word(rest);
        if kw != "in" {
            return Err(err(format!("expected 'in' after '{var}', found '{kw}'")));
        }
        rest = rest[2..].trim_start();
        let coll = first_word(rest);
        if coll.is_empty() {
            return Err(err("expected a collection name after 'in'"));
        }
        rest = rest[coll.len()..].trim_start();
        if !rest.starts_with(':') {
            return Err(err(format!("expected ':' after 'in {coll}'")));
        }
        rest = rest[1..].trim_start();
        quantifiers.push(Quantifier {
            quant,
            var: var.to_owned(),
            collection: coll.to_owned(),
        });
    }

    let mut atoms = Vec::new();
    for part in split_top_level_and(rest) {
        atoms.push(parse_atom(part.trim())?);
    }
    if atoms.is_empty() {
        return Err(err("constraint body is empty"));
    }

    // Scope sanity: path sources must be quantified variables.
    for a in &atoms {
        if let Atom::Path { src, .. } = a {
            if !quantifiers.iter().any(|q| &q.var == src) {
                return Err(err(format!(
                    "path source '{src}' is not a quantified variable"
                )));
            }
        }
        if let Atom::InCollection { var, .. } = a {
            if !quantifiers.iter().any(|q| &q.var == var) {
                return Err(err(format!(
                    "membership variable '{var}' is not a quantified variable"
                )));
            }
        }
    }

    Ok(Constraint {
        quantifiers,
        atoms,
        source: src.trim().to_owned(),
    })
}

fn first_word(s: &str) -> &str {
    let end = s
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '\''))
        .unwrap_or(s.len());
    &s[..end]
}

/// Splits on the keyword `and` at top level (outside quotes/parens).
fn split_top_level_and(s: &str) -> Vec<&str> {
    let bytes = s.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut in_quotes = false;
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_quotes = !in_quotes,
            b'(' if !in_quotes => depth += 1,
            b')' if !in_quotes => depth -= 1,
            b'a' if !in_quotes
                && depth == 0
                && s[i..].starts_with("and")
                && (i == 0 || bytes[i - 1].is_ascii_whitespace())
                && (i + 3 >= bytes.len() || bytes[i + 3].is_ascii_whitespace()) =>
            {
                parts.push(&s[start..i]);
                start = i + 3;
                i += 3;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&s[start..]);
    parts
}

fn parse_atom(src: &str) -> Result<Atom, ConstraintError> {
    if let Some(arrow) = src.find("->") {
        let var = src[..arrow].trim();
        if var.is_empty() || !var.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '\'') {
            return Err(err(format!("bad path source '{var}'")));
        }
        let rest = &src[arrow + 2..];
        let Some(arrow2) = rest.rfind("->") else {
            return Err(err(format!("path atom needs two '->': '{src}'")));
        };
        let regex_src = rest[..arrow2].trim();
        let regex = parse_path_regex(regex_src)
            .map_err(|e| err(format!("bad path expression '{regex_src}': {e}")))?;
        let dst_src = rest[arrow2 + 2..].trim();
        let dst = parse_cterm(dst_src)?;
        return Ok(Atom::Path {
            src: var.to_owned(),
            regex,
            dst,
        });
    }
    // Membership: `var in Coll`.
    let mut it = src.split_whitespace();
    let (Some(var), Some(kw), Some(coll), None) = (it.next(), it.next(), it.next(), it.next())
    else {
        return Err(err(format!("unrecognized atom '{src}'")));
    };
    if kw != "in" {
        return Err(err(format!("unrecognized atom '{src}'")));
    }
    Ok(Atom::InCollection {
        var: var.to_owned(),
        collection: coll.to_owned(),
    })
}

fn parse_cterm(src: &str) -> Result<CTerm, ConstraintError> {
    if src.is_empty() {
        return Err(err("empty path target"));
    }
    if src.starts_with('"') && src.ends_with('"') && src.len() >= 2 {
        return Ok(CTerm::Const(Value::string(&src[1..src.len() - 1])));
    }
    if let Ok(i) = src.parse::<i64>() {
        return Ok(CTerm::Const(Value::Int(i)));
    }
    if src.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '\'') {
        return Ok(CTerm::Var(src.to_owned()));
    }
    Err(err(format!("bad path target '{src}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_reachability_constraint() {
        let c = parse_constraint(
            "forall p in PaperPages : exists c in CategoryPages : c -> * -> p",
        )
        .unwrap();
        assert_eq!(c.quantifiers.len(), 2);
        assert_eq!(c.quantifiers[0].quant, Quant::Forall);
        assert_eq!(c.quantifiers[1].quant, Quant::Exists);
        assert_eq!(c.atoms.len(), 1);
        let Atom::Path { src, dst, .. } = &c.atoms[0] else {
            panic!()
        };
        assert_eq!(src, "c");
        assert_eq!(dst, &CTerm::Var("p".into()));
    }

    #[test]
    fn parses_attribute_existence() {
        let c = parse_constraint(r#"forall p in Pages : p -> "title" -> t"#).unwrap();
        assert_eq!(c.atoms.len(), 1);
    }

    #[test]
    fn parses_conjunction() {
        let c = parse_constraint(
            r#"forall p in Pages : p -> "title" -> t and p -> "year" -> y"#,
        )
        .unwrap();
        assert_eq!(c.atoms.len(), 2);
    }

    #[test]
    fn parses_membership_atom() {
        let c = parse_constraint("forall p in Pages : p in Reachable").unwrap();
        assert!(matches!(&c.atoms[0], Atom::InCollection { .. }));
    }

    #[test]
    fn parses_constant_target() {
        let c = parse_constraint(r#"forall p in Pages : p -> "lang" -> "en""#).unwrap();
        let Atom::Path { dst, .. } = &c.atoms[0] else {
            panic!()
        };
        assert_eq!(dst, &CTerm::Const(Value::string("en")));
    }

    #[test]
    fn parses_complex_regex() {
        let c = parse_constraint(
            r#"forall p in Pages : p -> ("next" | "prev")* . "home" -> h"#,
        )
        .unwrap();
        assert_eq!(c.atoms.len(), 1);
    }

    #[test]
    fn rejects_unquantified_source() {
        let e = parse_constraint("forall p in Pages : q -> * -> p").unwrap_err();
        assert!(e.message.contains("'q'"));
    }

    #[test]
    fn rejects_malformed_prefix() {
        assert!(parse_constraint("forall p Pages : p -> * -> q").is_err());
        assert!(parse_constraint("forall in Pages : x -> * -> y").is_err());
        assert!(parse_constraint("forall p in Pages p -> * -> q").is_err());
    }

    #[test]
    fn rejects_empty_body() {
        assert!(parse_constraint("forall p in Pages :").is_err());
    }

    #[test]
    fn and_inside_quotes_does_not_split() {
        let c = parse_constraint(r#"forall p in Pages : p -> "black and white" -> v"#).unwrap();
        assert_eq!(c.atoms.len(), 1);
    }
}
