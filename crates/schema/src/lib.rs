//! # strudel-schema
//!
//! Site schemas and the machinery built on them (§2.5 of the paper).
//!
//! A **site schema** is an equivalent reformulation of a STRUQL
//! site-definition query as a labeled graph: one node per Skolem function
//! symbol plus a special `NS` node for non-Skolem targets, and one edge per
//! `link` expression, labeled with the link's label and the conjunction of
//! where clauses governing it (for a link inside nested blocks, the
//! conjunction `Q1 ∧ Q2` of the enclosing clauses — exactly the edge
//! labels of Fig. 7).
//!
//! Site schemas serve three purposes here, as in the paper:
//!
//! * **Visualization** — [`SiteSchema::to_dot`] renders the site's
//!   abstract structure for inspection during iterative design.
//! * **Integrity-constraint verification** ([`constraint`]) — site-graph
//!   constraints like "every PaperPresentation is reachable from a
//!   CategoryPage" are checked *statically* against the schema (a sound
//!   proof procedure based on query-implication between edge guards), with
//!   a runtime checker over materialized graphs as the complete fallback.
//! * **Dynamic evaluation** ([`dynamic`]) — the schema decomposes one
//!   site-definition query into per-node incremental queries evaluated at
//!   "click time", with path-context seeding and look-ahead caching.
//!
//! [`incremental`] adds the paper's future-work item: incremental
//! maintenance of a materialized site graph under insert-only data-graph
//! deltas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraint;
pub mod dynamic;
pub mod incremental;
pub mod invalidate;
mod site_schema;

pub use site_schema::{SchemaEdge, SchemaNode, SiteSchema};
