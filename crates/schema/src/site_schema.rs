//! Site-schema extraction from STRUQL programs.

use std::collections::HashMap;
use strudel_struql::{Block, CollectExpr, Condition, LabelTerm, Program, Term};

/// A node of the site schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemaNode {
    /// One per Skolem function symbol in the query.
    Skolem(String),
    /// The special node standing for all non-Skolem link targets
    /// (variables and constants — data values copied into the site).
    Ns,
}

impl SchemaNode {
    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            SchemaNode::Skolem(s) => s,
            SchemaNode::Ns => "NS",
        }
    }
}

/// One edge of the site schema, corresponding to one `link` expression.
///
/// Per §2.5: an edge for `F(X̄) -> L -> G(Ȳ)` is labeled `(Q, L, X̄, Ȳ)`
/// where `Q` is the conjunction of the where clauses of the blocks
/// enclosing the link expression.
#[derive(Clone, Debug)]
pub struct SchemaEdge {
    /// Index of the source schema node.
    pub from: usize,
    /// Index of the target schema node.
    pub to: usize,
    /// The link's label (constant or arc variable).
    pub label: LabelTerm,
    /// The governing conjunction: all conditions of the enclosing where
    /// clauses, outermost first.
    pub guard: Vec<Condition>,
    /// The source Skolem term's argument tuple X̄.
    pub src_args: Vec<Term>,
    /// The target term: the Skolem argument tuple Ȳ, or for an NS edge,
    /// the single variable/constant `[V]`.
    pub dst_args: Vec<Term>,
}

/// A site schema: the abstract structure of every site the query can
/// generate.
#[derive(Clone, Debug, Default)]
pub struct SiteSchema {
    /// Schema nodes; the `NS` node, when present, is last.
    pub nodes: Vec<SchemaNode>,
    /// Schema edges in source order.
    pub edges: Vec<SchemaEdge>,
    /// Collect expressions with their governing conjunctions — needed by
    /// the verifier (collections are how constraints range over site
    /// objects) and to recover the query.
    pub collects: Vec<(CollectExpr, Vec<Condition>)>,
    /// Create terms with their governing conjunctions (for query
    /// recovery).
    pub creates: Vec<(Term, Vec<Condition>)>,
}

impl SiteSchema {
    /// Extracts the site schema of `program`.
    pub fn extract(program: &Program) -> SiteSchema {
        let mut schema = SiteSchema::default();
        let mut index: HashMap<String, usize> = HashMap::new();

        // One node per Skolem symbol, in first-appearance order.
        for symbol in program.skolem_symbols() {
            let idx = schema.nodes.len();
            schema.nodes.push(SchemaNode::Skolem(symbol.to_owned()));
            index.insert(symbol.to_owned(), idx);
        }

        let mut ns: Option<usize> = None;
        let mut guard: Vec<Condition> = Vec::new();
        for block in &program.blocks {
            walk(block, &mut guard, &mut schema, &index, &mut ns);
        }
        schema
    }

    /// The index of a Skolem symbol's node.
    pub fn node_index(&self, symbol: &str) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| matches!(n, SchemaNode::Skolem(s) if s == symbol))
    }

    /// The index of the `NS` node, if any link targets data values.
    pub fn ns_index(&self) -> Option<usize> {
        self.nodes.iter().position(|n| matches!(n, SchemaNode::Ns))
    }

    /// Out-edges of a schema node.
    pub fn out_edges(&self, node: usize) -> impl Iterator<Item = &SchemaEdge> + '_ {
        self.edges.iter().filter(move |e| e.from == node)
    }

    /// Renders the schema in Graphviz dot format — the paper's "visual
    /// summary of the site graph" used during iterative design.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph site_schema {\n  rankdir=LR;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = match n {
                SchemaNode::Skolem(_) => "box",
                SchemaNode::Ns => "ellipse",
            };
            writeln!(out, "  n{i} [label=\"{}\", shape={shape}];", n.name()).unwrap();
        }
        for e in &self.edges {
            let label = match &e.label {
                LabelTerm::Const(s) => s.clone(),
                LabelTerm::Var(v) => format!("<{v}>"),
            };
            let guard = if e.guard.is_empty() {
                String::new()
            } else {
                format!("\\nQ: {} cond(s)", e.guard.len())
            };
            writeln!(
                out,
                "  n{} -> n{} [label=\"{}{}\"];",
                e.from, e.to, escape_dot(&label), guard
            )
            .unwrap();
        }
        out.push_str("}\n");
        out
    }

    /// Recovers an equivalent STRUQL program from the schema ("the site
    /// schema is equivalent to the original query", §2.5): one block per
    /// edge/create/collect carrying its full guard.
    pub fn to_program(&self) -> Program {
        let mut blocks = Vec::new();
        for (term, guard) in &self.creates {
            blocks.push(Block {
                where_: guard.clone(),
                create: vec![term.clone()],
                ..Block::default()
            });
        }
        for e in &self.edges {
            let src = Term::Skolem {
                symbol: self.nodes[e.from].name().to_owned(),
                args: e.src_args.clone(),
            };
            let dst = match &self.nodes[e.to] {
                SchemaNode::Skolem(sym) => Term::Skolem {
                    symbol: sym.clone(),
                    args: e.dst_args.clone(),
                },
                SchemaNode::Ns => e.dst_args[0].clone(),
            };
            // `create` clauses for the endpoints keep the recovered
            // program safe under the "linked Skolems must be created"
            // rule.
            let mut create = vec![src.clone()];
            if let Term::Skolem { .. } = &dst {
                create.push(dst.clone());
            }
            blocks.push(Block {
                where_: e.guard.clone(),
                create,
                link: vec![strudel_struql::LinkExpr {
                    src,
                    label: e.label.clone(),
                    dst,
                    span: strudel_struql::Span::default(),
                }],
                ..Block::default()
            });
        }
        for (collect, guard) in &self.collects {
            let mut create = Vec::new();
            if let Term::Skolem { .. } = &collect.arg {
                create.push(collect.arg.clone());
            }
            blocks.push(Block {
                where_: guard.clone(),
                create,
                collect: vec![collect.clone()],
                ..Block::default()
            });
        }
        Program { blocks }
    }
}

fn walk(
    block: &Block,
    guard: &mut Vec<Condition>,
    schema: &mut SiteSchema,
    index: &HashMap<String, usize>,
    ns: &mut Option<usize>,
) {
    let before = guard.len();
    guard.extend(block.where_.iter().cloned());

    for t in &block.create {
        schema.creates.push((t.clone(), guard.clone()));
    }
    for l in &block.link {
        let Term::Skolem { symbol, args } = &l.src else {
            continue; // rejected by analysis; defensive
        };
        let from = index[symbol.as_str()];
        let (to, dst_args) = match &l.dst {
            Term::Skolem { symbol, args } => (index[symbol.as_str()], args.clone()),
            other => {
                let to = *ns.get_or_insert_with(|| {
                    schema.nodes.push(SchemaNode::Ns);
                    schema.nodes.len() - 1
                });
                (to, vec![other.clone()])
            }
        };
        schema.edges.push(SchemaEdge {
            from,
            to,
            label: l.label.clone(),
            guard: guard.clone(),
            src_args: args.clone(),
            dst_args,
        });
    }
    for c in &block.collect {
        schema.collects.push((c.clone(), guard.clone()));
    }
    for nested in &block.nested {
        walk(nested, guard, schema, index, ns);
    }
    guard.truncate(before);
}

fn escape_dot(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::ddl;
    use strudel_repo::{Database, IndexLevel};
    use strudel_struql::{parse, Evaluator};

    /// The Fig. 3 homepage query (abbreviated to years only).
    const QUERY: &str = r#"
        create RootPage(), AbstractsPage()
        link RootPage() -> "Abstracts" -> AbstractsPage()

        where Publications(x)
        create AbstractPage(x), PaperPresentation(x)
        link AbstractsPage() -> "Abstract" -> AbstractPage(x),
             AbstractPage(x) -> "Paper" -> PaperPresentation(x)
        { where x -> l -> v
          link PaperPresentation(x) -> l -> v }
        { where x -> "year" -> y
          create YearPage(y)
          link YearPage(y) -> "Year" -> y,
               YearPage(y) -> "Paper" -> PaperPresentation(x),
               RootPage() -> "YearPage" -> YearPage(y) }
        collect SitePages(PaperPresentation(x))
    "#;

    #[test]
    fn extracts_fig7_structure() {
        let program = parse(QUERY).unwrap();
        let schema = SiteSchema::extract(&program);

        // Nodes: RootPage, AbstractsPage, AbstractPage, PaperPresentation,
        // YearPage + NS.
        assert_eq!(schema.nodes.len(), 6);
        assert!(schema.ns_index().is_some());
        let root = schema.node_index("RootPage").unwrap();
        let year = schema.node_index("YearPage").unwrap();
        let pres = schema.node_index("PaperPresentation").unwrap();

        // The YearPage -"Paper"-> PaperPresentation edge is guarded by the
        // conjunction Q1 ∧ Q2 (Publications(x) ∧ x->year->y) — Fig. 7's
        // edge label.
        let e = schema
            .edges
            .iter()
            .find(|e| e.from == year && e.to == pres)
            .expect("YearPage -> PaperPresentation edge");
        assert_eq!(e.guard.len(), 2, "outer + nested where conjoined");
        assert!(matches!(&e.label, LabelTerm::Const(s) if s == "Paper"));

        // RootPage -"Abstracts"-> AbstractsPage has an empty guard (no
        // where clause in the first block).
        let abstracts = schema.node_index("AbstractsPage").unwrap();
        let e0 = schema
            .edges
            .iter()
            .find(|e| e.from == root && e.to == abstracts)
            .unwrap();
        assert!(e0.guard.is_empty());

        // The arc-variable copy edge goes to NS.
        let ns = schema.ns_index().unwrap();
        let copy = schema
            .edges
            .iter()
            .find(|e| e.from == pres && e.to == ns)
            .expect("PaperPresentation -> NS copy edge");
        assert!(matches!(&copy.label, LabelTerm::Var(v) if v == "l"));
        assert_eq!(copy.guard.len(), 2);

        // YearPage -"Year"-> NS (y is a variable).
        assert!(schema.edges.iter().any(|e| e.from == year && e.to == ns));

        // Collect recorded with its guard.
        assert_eq!(schema.collects.len(), 1);
        assert_eq!(schema.collects[0].1.len(), 1);
    }

    #[test]
    fn guards_do_not_leak_across_siblings() {
        let program = parse(
            r#"
            where C(x)
            create P(x)
            { where x -> "a" -> y create A(y) link A(y) -> "p" -> P(x) }
            { where x -> "b" -> z create B(z) link B(z) -> "p" -> P(x) }
        "#,
        )
        .unwrap();
        let schema = SiteSchema::extract(&program);
        for e in &schema.edges {
            assert_eq!(e.guard.len(), 2, "outer + own nested clause only");
        }
        // The two nested guards differ in their second condition.
        assert_ne!(schema.edges[0].guard[1], schema.edges[1].guard[1]);
    }

    #[test]
    fn to_dot_renders_every_node_and_edge() {
        let program = parse(QUERY).unwrap();
        let schema = SiteSchema::extract(&program);
        let dot = schema.to_dot();
        assert!(dot.contains("RootPage"));
        assert!(dot.contains("NS"));
        assert!(dot.contains("\"Paper"));
        assert_eq!(dot.matches(" -> ").count(), schema.edges.len());
    }

    #[test]
    fn recovered_program_is_equivalent_on_data() {
        let g = ddl::parse(
            r#"
            object p1 in Publications { title : "A"; year : 1997; }
            object p2 in Publications { title : "B"; year : 1998; }
        "#,
        )
        .unwrap();
        let db = Database::from_graph(g, IndexLevel::Full);
        let program = parse(QUERY).unwrap();
        let schema = SiteSchema::extract(&program);
        let recovered = schema.to_program();

        let r1 = Evaluator::new(&db).eval(&program).unwrap();
        let r2 = Evaluator::new(&db).eval(&recovered).unwrap();
        assert_eq!(r1.new_nodes.len(), r2.new_nodes.len());
        assert_eq!(r1.graph.edge_count(), r2.graph.edge_count());
        assert_eq!(
            r1.graph.members_str("SitePages").len(),
            r2.graph.members_str("SitePages").len()
        );
        // Same Skolem applications on both sides.
        let y97 = r1
            .skolem_node("YearPage", &[strudel_graph::Value::Int(1997)])
            .is_some();
        let y97b = r2
            .skolem_node("YearPage", &[strudel_graph::Value::Int(1997)])
            .is_some();
        assert_eq!(y97, y97b);
    }

    #[test]
    fn out_edges_iterates_per_node() {
        let program = parse(QUERY).unwrap();
        let schema = SiteSchema::extract(&program);
        let root = schema.node_index("RootPage").unwrap();
        // RootPage links: Abstracts + YearPage.
        assert_eq!(schema.out_edges(root).count(), 2);
    }
}
