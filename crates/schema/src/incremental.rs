//! Incremental maintenance of a materialized site graph.
//!
//! The paper lists "computing incremental updates of site graphs" as an
//! open problem with "broader implications in the field of semistructured
//! data" (§7/§8). This module implements the classic view-maintenance
//! algorithms for the negation-free fragment:
//!
//! * **Insertions** — delta rules: for each block of the site-definition
//!   query (with its enclosing where clauses conjoined — the same
//!   flattening that yields site-schema guards), every inserted fact is
//!   matched against each condition atom it could satisfy; the matching
//!   atom's variables are seeded with the fact and the full conjunction is
//!   re-evaluated from those seeds. Derived rows are pushed through the
//!   block's construction stage via a [`Constructor`] that *resumes* the
//!   original evaluation's Skolem table, so new links attach to existing
//!   site nodes and repeated derivations collapse (construction is
//!   idempotent: Skolem memoization + set semantics).
//! * **Deletions** — delete-and-rederive (DRed): each removed fact is
//!   matched against the chains *on the pre-delta database* to enumerate
//!   the link and collect instances it supported (over-deletion
//!   candidates); each candidate is then checked for re-derivability on
//!   the post-delta database by unifying it against every link/collect
//!   expression that could produce it (inverting Skolem terms through the
//!   memo table) and evaluating the guard with those seeds. Only
//!   candidates with no surviving derivation are removed. Site nodes are
//!   never deleted — an unreferenced page object may linger, exactly like
//!   an orphaned oid in the paper's repository.
//!
//! Out-of-fragment inputs fall back to full re-evaluation, reported in
//! [`IncrementalOutcome::full_reeval`]: queries using `not(…)`
//! (non-monotone), and — for deletions only — chains with multi-step
//! regular path expressions or nested Skolem arguments, where candidate
//! enumeration cannot be seeded from single facts.

use std::collections::HashMap;
use strudel_graph::{coerce, DeltaOp, Graph, GraphDelta, Oid, Value};
use strudel_repo::{Database, IndexLevel};
use strudel_struql::rpe::StepPred;
use strudel_struql::{
    Block, Condition, Constructor, EvalResult, Evaluator, PathSpec, Program, StruqlResult, Term,
};

/// The result of an incremental update.
#[derive(Debug)]
pub struct IncrementalOutcome {
    /// The updated evaluation result (site graph, Skolem table, …).
    pub result: EvalResult,
    /// Bindings rows recomputed by delta rules (0 when fully re-evaluated).
    pub rows_recomputed: usize,
    /// Whether the update fell back to full re-evaluation.
    pub full_reeval: bool,
}

/// One inserted or deleted fact.
#[derive(Clone, Debug)]
pub(crate) enum Fact {
    Edge {
        from: Oid,
        label: String,
        to: Value,
    },
    Member {
        collection: String,
        member: Value,
    },
}

/// Applies `delta` (in data-graph space) to a previously evaluated site.
///
/// `old_db` must be the database the original evaluation ran against and
/// `old_result` its result. Returns the updated result plus work counters.
pub fn incremental_update(
    program: &Program,
    old_db: &Database,
    delta: &GraphDelta,
    old_result: EvalResult,
) -> StruqlResult<IncrementalOutcome> {
    let has_deletes = delta
        .ops()
        .iter()
        .any(|op| matches!(op, DeltaOp::RemoveEdge { .. } | DeltaOp::Uncollect { .. }));
    let monotone_program = program
        .blocks_preorder()
        .iter()
        .all(|b| b.where_.iter().all(|c| !matches!(c, Condition::Not(..))));

    let chains = flatten(program);
    // DRed needs every chain seedable from single facts and every Skolem
    // argument invertible through the memo table. A multi-step regex
    // blocks seeding only when a *deleted edge's label* could actually be
    // traversed by it — deletions of labels the regex can never cross
    // cannot shrink any matched path, so such chains stay DRed-able.
    let delete_edge_labels: Vec<&str> = delta
        .ops()
        .iter()
        .filter_map(|op| match op {
            DeltaOp::RemoveEdge { label, .. } => Some(label.as_ref()),
            _ => None,
        })
        .collect();
    let deletions_supported = chains.iter().all(|c| {
        let regex_safe = !c.conds.iter().any(|cond| {
            matches!(
                cond,
                Condition::Path {
                    path: PathSpec::Regex(r),
                    ..
                } if r.as_single_step().is_none()
                    && delete_edge_labels.iter().any(|l| r.could_traverse(l))
            )
        });
        regex_safe
            && c.block.link.iter().all(|l| flat_term(&l.src) && flat_term(&l.dst))
            && c.block.collect.iter().all(|ce| flat_term(&ce.arg))
    });

    // Build the updated input database either way.
    let mut new_input = old_db.graph().clone();
    let created_db = delta
        .apply(&mut new_input)
        .map_err(|e| strudel_struql::StruqlError::Eval {
            message: format!("delta failed on data graph: {e}"),
        })?;
    let new_db = Database::from_graph(new_input, IndexLevel::Full);

    if !monotone_program || (has_deletes && !deletions_supported) {
        let result = Evaluator::new(&new_db).eval(program)?;
        return Ok(IncrementalOutcome {
            result,
            rows_recomputed: 0,
            full_reeval: true,
        });
    }

    let mut rows_recomputed = 0usize;

    // ----- DRed phase 1: over-deletion candidates, on the OLD database --
    let delete_facts = collect_delete_facts(delta);
    let mut link_candidates: std::collections::HashSet<(Oid, String, Value)> =
        std::collections::HashSet::new();
    let mut collect_candidates: std::collections::HashSet<(String, Value)> =
        std::collections::HashSet::new();
    if !delete_facts.is_empty() {
        let old_ev = Evaluator::new(old_db);
        // A mixed delta may remove an edge it added itself; such facts
        // reference nodes the pre-delta graph has never issued, and no old
        // derivation can depend on them — skip them (the paired insert is
        // evaluated against the fully-applied new database and finds the
        // edge already gone).
        for chain in &chains {
            for fact in delete_facts
                .iter()
                .filter(|f| fact_in_graph(f, old_db.graph()))
            {
                for cond in &chain.conds {
                    let Some(seeds) = unify(cond, fact) else {
                        continue;
                    };
                    let (vars, rows) = old_ev.eval_where_bindings(&chain.conds, &seeds)?;
                    rows_recomputed += rows.len();
                    for row in &rows {
                        for l in &chain.block.link {
                            if let Some(c) =
                                link_instance(l, &vars, row, &old_result.skolem)
                            {
                                link_candidates.insert(c);
                            }
                        }
                        for ce in &chain.block.collect {
                            if let Some(member) =
                                term_instance(&ce.arg, &vars, row, &old_result.skolem)
                            {
                                collect_candidates.insert((ce.collection.clone(), member));
                            }
                        }
                    }
                }
            }
        }
    }

    // Apply the same delta to the site graph (it contains the data graph).
    // Ops referencing nodes the delta itself creates carry *data-graph*
    // oids; the site graph has extra site nodes, so the same index denotes
    // a different node there. AddNode assigns oids in node-count order, so
    // the site-graph counterparts are predictable: build the
    // correspondence up front and rewrite every op through it before
    // applying (a verbatim apply would attach such edges to whatever site
    // node happens to own the data-graph index).
    let mut out_graph = old_result.graph;
    let base = out_graph.node_count();
    let oid_map: HashMap<Oid, Oid> = created_db
        .iter()
        .copied()
        .enumerate()
        .map(|(i, data_oid)| (data_oid, Oid::from_index(base + i)))
        .collect();
    let remap = |o: &Oid| *oid_map.get(o).unwrap_or(o);
    let remap_value = |v: &Value| match v {
        Value::Node(o) => Value::Node(remap(o)),
        other => other.clone(),
    };
    let mut site_delta = GraphDelta::new();
    for op in delta.ops() {
        site_delta.push(match op {
            DeltaOp::AddNode { .. } => op.clone(),
            DeltaOp::AddEdge { from, label, to } => DeltaOp::AddEdge {
                from: remap(from),
                label: label.clone(),
                to: remap_value(to),
            },
            DeltaOp::RemoveEdge { from, label, to } => DeltaOp::RemoveEdge {
                from: remap(from),
                label: label.clone(),
                to: remap_value(to),
            },
            DeltaOp::Collect { collection, member } => DeltaOp::Collect {
                collection: collection.clone(),
                member: remap_value(member),
            },
            DeltaOp::Uncollect { collection, member } => DeltaOp::Uncollect {
                collection: collection.clone(),
                member: remap_value(member),
            },
        });
    }
    let created_out = site_delta
        .apply(&mut out_graph)
        .map_err(|e| strudel_struql::StruqlError::Eval {
            message: format!("delta failed on site graph: {e}"),
        })?;
    debug_assert!(
        created_db
            .iter()
            .zip(created_out.iter())
            .all(|(d, s)| oid_map.get(d) == Some(s)),
        "predicted site oids diverged from the applied delta"
    );

    // ----- DRed phase 2: rederive on the NEW database, delete the rest --
    if !link_candidates.is_empty() || !collect_candidates.is_empty() {
        let reverse = skolem_reverse(&old_result.skolem);
        let new_ev = Evaluator::new(&new_db);
        for (src, label, dst) in link_candidates {
            let mut derivable = false;
            'chains: for chain in &chains {
                for l in &chain.block.link {
                    let Some(seeds) = unify_link(l, src, &label, &dst, &reverse) else {
                        continue;
                    };
                    let (_, rows) = new_ev.eval_where_bindings(&chain.conds, &seeds)?;
                    rows_recomputed += rows.len().min(1);
                    if !rows.is_empty() {
                        derivable = true;
                        break 'chains;
                    }
                }
            }
            if !derivable {
                if let Some(lab) = out_graph.label(&label) {
                    out_graph.remove_edge(src, lab, &dst);
                }
            }
        }
        for (collection, member) in collect_candidates {
            let mut derivable = false;
            'chains2: for chain in &chains {
                for ce in &chain.block.collect {
                    if ce.collection != collection {
                        continue;
                    }
                    let Some(seeds) = unify_term(&ce.arg, &member, &reverse) else {
                        continue;
                    };
                    let (_, rows) = new_ev.eval_where_bindings(&chain.conds, &seeds)?;
                    rows_recomputed += rows.len().min(1);
                    if !rows.is_empty() {
                        derivable = true;
                        break 'chains2;
                    }
                }
            }
            if !derivable {
                if let Some(cid) = out_graph.collection_id(&collection) {
                    out_graph.uncollect(cid, &member);
                }
            }
        }
    }

    let mut constructor = Constructor::resume(EvalResult {
        graph: out_graph,
        new_nodes: old_result.new_nodes,
        skolem: old_result.skolem,
        rows_evaluated: old_result.rows_evaluated,
    });

    let facts = collect_facts(delta);
    let ev = Evaluator::new(&new_db);

    for chain in &chains {
        // Chains containing a multi-step regex cannot be seeded soundly by
        // a single edge fact (the new edge may extend a path anywhere), so
        // re-derive the whole chain once — but only when some fact is
        // actually *relevant* to it: unifiable with one of its atoms, or an
        // edge whose label one of its regexes could traverse. Irrelevant
        // facts cannot change the chain's bindings.
        let has_regex = chain.conds.iter().any(|c| {
            matches!(
                c,
                Condition::Path {
                    path: PathSpec::Regex(r),
                    ..
                } if r.as_single_step().is_none()
            )
        });
        if has_regex {
            let relevant = facts.iter().any(|f| {
                chain
                    .conds
                    .iter()
                    .any(|c| unify(c, f).is_some() || fact_touches_regex_fallback(c, f))
            });
            if relevant {
                let (vars, rows) = ev.eval_where_bindings(&chain.conds, &[])?;
                rows_recomputed += rows.len();
                let translated = translate_rows(rows, &oid_map);
                constructor.apply_block(&chain.block, &vars, &translated)?;
            }
            continue;
        }
        for fact in &facts {
            for cond in &chain.conds {
                let Some(seeds) = unify(cond, fact) else {
                    continue;
                };
                let (vars, rows) = ev.eval_where_bindings(&chain.conds, &seeds)?;
                rows_recomputed += rows.len();
                let translated = translate_rows(rows, &oid_map);
                constructor.apply_block(&chain.block, &vars, &translated)?;
            }
        }
    }

    Ok(IncrementalOutcome {
        result: constructor.finish(),
        rows_recomputed,
        full_reeval: false,
    })
}

/// A block with its enclosing where clauses conjoined.
struct Chain {
    conds: Vec<Condition>,
    /// The block's construction stage (nested blocks cleared — each gets
    /// its own chain).
    block: Block,
}

fn flatten(program: &Program) -> Vec<Chain> {
    fn walk(block: &Block, prefix: &[Condition], out: &mut Vec<Chain>) {
        let mut conds = prefix.to_vec();
        conds.extend(block.where_.iter().cloned());
        let mut leaf = block.clone();
        leaf.nested.clear();
        leaf.where_.clear();
        out.push(Chain {
            conds: conds.clone(),
            block: leaf,
        });
        for nested in &block.nested {
            walk(nested, &conds, out);
        }
    }
    let mut out = Vec::new();
    for b in &program.blocks {
        walk(b, &[], &mut out);
    }
    out
}

/// Whether every node a fact references was issued by `g`. A mixed delta
/// may delete an edge it inserted itself; such delete facts reference
/// oids the pre-delta graph has never seen, and unifying them against it
/// would index out of bounds. Both DRed phase 1 and page invalidation
/// filter delete facts through this guard before touching the old
/// database.
pub(crate) fn fact_in_graph(f: &Fact, g: &Graph) -> bool {
    match f {
        Fact::Edge { from, to, .. } => {
            g.contains_node(*from) && to.as_node().map_or(true, |o| g.contains_node(o))
        }
        Fact::Member { member, .. } => {
            member.as_node().map_or(true, |o| g.contains_node(o))
        }
    }
}

pub(crate) fn collect_facts(delta: &GraphDelta) -> Vec<Fact> {
    delta
        .ops()
        .iter()
        .filter_map(|op| match op {
            DeltaOp::AddEdge { from, label, to } => Some(Fact::Edge {
                from: *from,
                label: label.to_string(),
                to: to.clone(),
            }),
            DeltaOp::Collect { collection, member } => Some(Fact::Member {
                collection: collection.to_string(),
                member: member.clone(),
            }),
            _ => None,
        })
        .collect()
}

pub(crate) fn collect_delete_facts(delta: &GraphDelta) -> Vec<Fact> {
    delta
        .ops()
        .iter()
        .filter_map(|op| match op {
            DeltaOp::RemoveEdge { from, label, to } => Some(Fact::Edge {
                from: *from,
                label: label.to_string(),
                to: to.clone(),
            }),
            DeltaOp::Uncollect { collection, member } => Some(Fact::Member {
                collection: collection.to_string(),
                member: member.clone(),
            }),
            _ => None,
        })
        .collect()
}

/// A path condition whose regex cannot be localized to a single edge
/// step, yet could involve the edge label of `fact`. A multi-step regex
/// that can never traverse the fact's label is *not* touched — inserting
/// or retracting such an edge cannot change any path the regex matches.
/// Shared by the wholesale-rederive gate here and by page invalidation.
pub(crate) fn fact_touches_regex_fallback(cond: &Condition, fact: &Fact) -> bool {
    let (Condition::Path { path, .. }, Fact::Edge { label, .. }) = (cond, fact) else {
        return false;
    };
    match path {
        PathSpec::ArcVar(_) => false,
        PathSpec::Regex(r) => match r.as_single_step() {
            Some(StepPred::Label(_)) | Some(StepPred::Any) => false,
            None => r.could_traverse(label),
        },
    }
}

/// Whether a construction term's Skolem arguments are all variables or
/// constants — the invertible shape DRed requires.
fn flat_term(t: &Term) -> bool {
    match t {
        Term::Var(_) | Term::Const(_) => true,
        Term::Skolem { args, .. } => args
            .iter()
            .all(|a| matches!(a, Term::Var(_) | Term::Const(_))),
    }
}

/// Instantiates a link expression against a bindings row using the *old*
/// Skolem table in lookup-only mode (never minting). `None` when a term
/// references a Skolem application that was never materialized or an
/// unbound variable — then the candidate edge cannot exist.
fn link_instance(
    l: &strudel_struql::LinkExpr,
    vars: &[String],
    row: &[Option<Value>],
    skolem: &strudel_graph::SkolemTable,
) -> Option<(Oid, String, Value)> {
    let src = term_instance(&l.src, vars, row, skolem)?.as_node()?;
    let label = match &l.label {
        strudel_struql::LabelTerm::Const(s) => s.clone(),
        strudel_struql::LabelTerm::Var(v) => {
            let idx = vars.iter().position(|x| x == v)?;
            match row.get(idx)?.as_ref()? {
                Value::Str(s) => s.to_string(),
                _ => return None,
            }
        }
    };
    let dst = term_instance(&l.dst, vars, row, skolem)?;
    Some((src, label, dst))
}

/// Instantiates a construction term in lookup-only mode.
fn term_instance(
    t: &Term,
    vars: &[String],
    row: &[Option<Value>],
    skolem: &strudel_graph::SkolemTable,
) -> Option<Value> {
    match t {
        Term::Var(v) => {
            let idx = vars.iter().position(|x| x == v)?;
            row.get(idx)?.clone()
        }
        Term::Const(c) => Some(c.clone()),
        Term::Skolem { symbol, args } => {
            let arg_vals: Option<Vec<Value>> = args
                .iter()
                .map(|a| term_instance(a, vars, row, skolem))
                .collect();
            skolem.lookup(symbol, &arg_vals?).map(Value::Node)
        }
    }
}

/// Inverts the Skolem table: created oid → (symbol, argument values).
fn skolem_reverse(
    skolem: &strudel_graph::SkolemTable,
) -> HashMap<Oid, (String, Vec<Value>)> {
    skolem
        .iter()
        .map(|(key, oid)| (oid, (key.symbol.to_string(), key.args.to_vec())))
        .collect()
}

/// Unifies a link expression with a concrete candidate edge, producing the
/// seed bindings under which the expression emits exactly that edge.
fn unify_link(
    l: &strudel_struql::LinkExpr,
    src: Oid,
    label: &str,
    dst: &Value,
    reverse: &HashMap<Oid, (String, Vec<Value>)>,
) -> Option<Vec<(String, Value)>> {
    let mut seeds: Vec<(String, Value)> = Vec::new();
    unify_term_into(&l.src, &Value::Node(src), reverse, &mut seeds)?;
    match &l.label {
        strudel_struql::LabelTerm::Const(s) => {
            if s != label {
                return None;
            }
        }
        strudel_struql::LabelTerm::Var(v) => {
            push_seed(&mut seeds, v, Value::string(label))?;
        }
    }
    unify_term_into(&l.dst, dst, reverse, &mut seeds)?;
    Some(seeds)
}

/// Unifies a collect term with a candidate member.
fn unify_term(
    t: &Term,
    member: &Value,
    reverse: &HashMap<Oid, (String, Vec<Value>)>,
) -> Option<Vec<(String, Value)>> {
    let mut seeds = Vec::new();
    unify_term_into(t, member, reverse, &mut seeds)?;
    Some(seeds)
}

fn unify_term_into(
    t: &Term,
    value: &Value,
    reverse: &HashMap<Oid, (String, Vec<Value>)>,
    seeds: &mut Vec<(String, Value)>,
) -> Option<()> {
    match t {
        Term::Var(v) => push_seed(seeds, v, value.clone()),
        Term::Const(c) => coerce::eq(c, value).then_some(()),
        Term::Skolem { symbol, args } => {
            let oid = value.as_node()?;
            let (sym, arg_vals) = reverse.get(&oid)?;
            if sym != symbol || arg_vals.len() != args.len() {
                return None;
            }
            for (term, val) in args.iter().zip(arg_vals) {
                unify_term_into(term, val, reverse, seeds)?;
            }
            Some(())
        }
    }
}

fn push_seed(seeds: &mut Vec<(String, Value)>, var: &str, value: Value) -> Option<()> {
    if let Some((_, prev)) = seeds.iter().find(|(n, _)| n == var) {
        (prev == &value).then_some(())
    } else {
        seeds.push((var.to_owned(), value));
        Some(())
    }
}

/// Tries to unify a condition atom with an inserted fact, producing seed
/// bindings. `None` = this atom cannot match this fact.
pub(crate) fn unify(cond: &Condition, fact: &Fact) -> Option<Vec<(String, Value)>> {
    let mut seeds: Vec<(String, Value)> = Vec::new();
    let bind = |term: &Term, value: &Value, seeds: &mut Vec<(String, Value)>| -> bool {
        match term {
            Term::Var(v) => {
                if let Some((_, prev)) = seeds.iter().find(|(n, _)| n == v) {
                    prev == value
                } else {
                    seeds.push((v.clone(), value.clone()));
                    true
                }
            }
            Term::Const(c) => coerce::eq(c, value),
            Term::Skolem { .. } => false,
        }
    };
    match (cond, fact) {
        (
            Condition::Collection { name, arg, .. },
            Fact::Member { collection, member },
        ) => {
            if name != collection {
                return None;
            }
            bind(arg, member, &mut seeds).then_some(seeds)
        }
        (Condition::Path { src, path, dst, .. }, Fact::Edge { from, label, to }) => {
            match path {
                PathSpec::ArcVar(l) => {
                    if !bind(&Term::Var(l.clone()), &Value::string(label.as_str()), &mut seeds) {
                        return None;
                    }
                }
                PathSpec::Regex(r) => match r.as_single_step() {
                    Some(StepPred::Label(want)) => {
                        if &want != label {
                            return None;
                        }
                    }
                    Some(StepPred::Any) => {}
                    None => return None, // handled by the regex fallback
                },
            }
            if !bind(src, &Value::Node(*from), &mut seeds) {
                return None;
            }
            bind(dst, to, &mut seeds).then_some(seeds)
        }
        _ => None,
    }
}

/// Rewrites node values minted by the delta from data-graph oids to their
/// site-graph counterparts.
fn translate_rows(
    rows: Vec<Vec<Option<Value>>>,
    oid_map: &HashMap<Oid, Oid>,
) -> Vec<Vec<Option<Value>>> {
    if oid_map.is_empty() {
        return rows;
    }
    rows.into_iter()
        .map(|row| {
            row.into_iter()
                .map(|slot| {
                    slot.map(|v| match v {
                        Value::Node(o) => Value::Node(*oid_map.get(&o).unwrap_or(&o)),
                        other => other,
                    })
                })
                .collect()
        })
        .collect()
}

/// Checks that two graphs agree on node/edge/collection counts, on the
/// multiset of canonicalized edges, and on every collection's
/// canonicalized membership multiset — the equivalence oracle of the
/// incremental-vs-full tests and experiments.
///
/// Canonicalization renders a node as `&name` when it has one and as an
/// anonymous placeholder otherwise: incrementally maintained site graphs
/// mint Skolem nodes in a different order than a fresh evaluation, so an
/// oid-sensitive comparison would reject equivalent results. Everything
/// else — per-label edge multisets over source/target shape and value,
/// and which members each collection holds — must match exactly. (The
/// previous oracle compared only counts, so genuinely different graphs
/// with the same totals passed.)
pub fn graphs_equivalent(a: &Graph, b: &Graph) -> bool {
    if a.node_count() != b.node_count()
        || a.edge_count() != b.edge_count()
        || a.collection_count() != b.collection_count()
    {
        return false;
    }
    fn canon_value(g: &Graph, v: &Value) -> String {
        match v {
            Value::Node(o) => match g.node_name(*o) {
                Some(n) => format!("&{n}"),
                None => "&<anon>".into(),
            },
            other => format!("{other:?}"),
        }
    }
    fn edge_multiset(g: &Graph) -> HashMap<(String, String, String), usize> {
        let mut m = HashMap::new();
        for idx in 0..g.node_count() {
            let oid = Oid::from_index(idx);
            let src = canon_value(g, &Value::Node(oid));
            for e in g.edges(oid) {
                let key = (
                    src.clone(),
                    g.label_name(e.label).to_string(),
                    canon_value(g, &e.to),
                );
                *m.entry(key).or_insert(0) += 1;
            }
        }
        m
    }
    fn membership(g: &Graph, name: &str) -> HashMap<String, usize> {
        let mut m = HashMap::new();
        for v in g.members_str(name) {
            *m.entry(canon_value(g, v)).or_insert(0) += 1;
        }
        m
    }
    if edge_multiset(a) != edge_multiset(b) {
        return false;
    }
    let names_a: std::collections::HashSet<&str> = a.collections().map(|(_, n)| n).collect();
    let names_b: std::collections::HashSet<&str> = b.collections().map(|(_, n)| n).collect();
    if names_a != names_b {
        return false;
    }
    names_a
        .iter()
        .all(|name| membership(a, name) == membership(b, name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::ddl;
    use strudel_struql::parse;

    const QUERY: &str = r#"
        create RootPage()
        where Publications(x)
        create PaperPage(x)
        link RootPage() -> "paper" -> PaperPage(x)
        collect Pages(PaperPage(x))
        { where x -> "title" -> t
          link PaperPage(x) -> "title" -> t }
        { where x -> "year" -> y
          create YearPage(y)
          link YearPage(y) -> "paper" -> PaperPage(x),
               RootPage() -> "year" -> YearPage(y) }
    "#;

    fn base_db() -> Database {
        let g = ddl::parse(
            r#"
            object p1 in Publications { title : "Alpha"; year : 1997; }
            object p2 in Publications { title : "Beta"; year : 1998; }
        "#,
        )
        .unwrap();
        Database::from_graph(g, IndexLevel::Full)
    }

    /// Evaluate fully on (base + delta) for comparison.
    fn full_reference(db: &Database, program: &Program, delta: &GraphDelta) -> EvalResult {
        let mut g = db.graph().clone();
        delta.apply(&mut g).unwrap();
        let db2 = Database::from_graph(g, IndexLevel::Full);
        Evaluator::new(&db2).eval(program).unwrap()
    }

    #[test]
    fn new_attribute_edge_updates_site() {
        let db = base_db();
        let program = parse(QUERY).unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();

        let p1 = db.graph().node_by_name("p1").unwrap();
        let mut delta = GraphDelta::new();
        delta.add_edge(p1, "title", Value::string("Alpha (revised)"));

        let reference = full_reference(&db, &program, &delta);
        let out = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(!out.full_reeval);
        assert!(out.rows_recomputed > 0);
        assert!(graphs_equivalent(&out.result.graph, &reference.graph));

        let page = out
            .result
            .skolem_node("PaperPage", &[Value::Node(p1)])
            .unwrap();
        assert_eq!(out.result.graph.attr_str(page, "title").count(), 2);
    }

    #[test]
    fn new_publication_creates_its_pages() {
        let db = base_db();
        let program = parse(QUERY).unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();

        let mut delta = GraphDelta::new();
        delta.add_node(Some("p3"));
        let p3 = Oid::from_index(db.graph().node_count());
        delta.add_edge(p3, "title", Value::string("Gamma"));
        delta.add_edge(p3, "year", Value::Int(1997));
        delta.collect("Publications", Value::Node(p3));

        let reference = full_reference(&db, &program, &delta);
        let out = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(!out.full_reeval);
        assert!(graphs_equivalent(&out.result.graph, &reference.graph));

        // The new paper's page exists, carries its title, and the existing
        // 1997 YearPage gained a link (no duplicate YearPage).
        assert_eq!(out.result.graph.members_str("Pages").len(), 3);
        let y97 = out
            .result
            .skolem_node("YearPage", &[Value::Int(1997)])
            .unwrap();
        assert_eq!(out.result.graph.attr_str(y97, "paper").count(), 2);
    }

    #[test]
    fn incremental_is_idempotent_on_replayed_facts() {
        let db = base_db();
        let program = parse(QUERY).unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();
        let edge_count = old.graph.edge_count();

        // A delta that adds an edge that already exists (multigraph add):
        // derivations collapse by set semantics, so only the data edge is
        // new.
        let p1 = db.graph().node_by_name("p1").unwrap();
        let mut delta = GraphDelta::new();
        delta.add_edge(p1, "title", Value::string("Alpha"));
        let out = incremental_update(&program, &db, &delta, old).unwrap();
        assert_eq!(
            out.result.graph.edge_count(),
            edge_count + 1,
            "one new data edge, no duplicate site links"
        );
    }

    #[test]
    fn edge_removal_deletes_dependent_links_via_dred() {
        let db = base_db();
        let program = parse(QUERY).unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();
        let y97 = old.skolem_node("YearPage", &[Value::Int(1997)]).unwrap();
        let p1 = db.graph().node_by_name("p1").unwrap();
        let page1 = old.skolem_node("PaperPage", &[Value::Node(p1)]).unwrap();
        assert!(old.graph.has_edge(
            y97,
            old.graph.label("paper").unwrap(),
            &Value::Node(page1)
        ));

        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "year", Value::Int(1997));

        let out = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(!out.full_reeval, "DRed handles single-step deletions");
        let g = &out.result.graph;
        // The 1997 year page lost its only paper link and the root lost
        // nothing else; p1's page keeps its title.
        assert!(!g.has_edge(y97, g.label("paper").unwrap(), &Value::Node(page1)));
        assert_eq!(g.attr_str(page1, "title").count(), 1);
        // Root -> year edge to YearPage(1997) must also be gone (it was
        // derived from the same deleted fact and is not re-derivable).
        let root = out.result.skolem_node("RootPage", &[]).unwrap();
        assert!(!g.has_edge(root, g.label("year").unwrap(), &Value::Node(y97)));
    }

    #[test]
    fn member_removal_unlinks_its_pages() {
        let db = base_db();
        let program = parse(QUERY).unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();
        let p1 = db.graph().node_by_name("p1").unwrap();
        let page1 = old.skolem_node("PaperPage", &[Value::Node(p1)]).unwrap();

        let mut delta = GraphDelta::new();
        delta.uncollect("Publications", Value::Node(p1));

        let out = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(!out.full_reeval);
        let g = &out.result.graph;
        let root = out.result.skolem_node("RootPage", &[]).unwrap();
        assert!(!g.has_edge(root, g.label("paper").unwrap(), &Value::Node(page1)));
        assert_eq!(g.attr_str(page1, "title").count(), 0, "copied attrs gone");
        assert!(
            !g.members_str("Pages").contains(&Value::Node(page1)),
            "collect retracted"
        );
        // p2 is untouched.
        let p2 = db.graph().node_by_name("p2").unwrap();
        let page2 = out.result.skolem_node("PaperPage", &[Value::Node(p2)]).unwrap();
        assert_eq!(g.attr_str(page2, "title").count(), 1);
    }

    #[test]
    fn dred_keeps_links_with_surviving_derivations() {
        // Two year edges with the same value: removing one must keep the
        // YearPage link, because the other edge still derives it.
        let g0 = ddl::parse(
            r#"object d in Publications { title : "Dup"; year : 1997; year : 1997; }"#,
        )
        .unwrap();
        // The DDL dedupe? Multigraph stores both edges.
        let db = Database::from_graph(g0, IndexLevel::Full);
        let program = parse(QUERY).unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();
        let d = db.graph().node_by_name("d").unwrap();
        let y97 = old.skolem_node("YearPage", &[Value::Int(1997)]).unwrap();
        let page = old.skolem_node("PaperPage", &[Value::Node(d)]).unwrap();

        let mut delta = GraphDelta::new();
        delta.remove_edge(d, "year", Value::Int(1997));
        let out = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(!out.full_reeval);
        let g = &out.result.graph;
        assert!(
            g.has_edge(y97, g.label("paper").unwrap(), &Value::Node(page)),
            "one year edge remains, so the link survives rederivation"
        );
        let reference = full_reference(&db, &program, &delta);
        assert!(graphs_equivalent(&g.clone(), &reference.graph) || {
            // Orphaned site nodes are permitted to differ; compare the
            // semantic content instead.
            g.members_str("Pages").len() == reference.graph.members_str("Pages").len()
        });
    }

    #[test]
    fn mixed_insert_and_delete_delta() {
        let db = base_db();
        let program = parse(QUERY).unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();
        let p1 = db.graph().node_by_name("p1").unwrap();

        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "title", Value::string("Alpha"));
        delta.add_edge(p1, "title", Value::string("Alpha (2nd ed.)"));

        let out = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(!out.full_reeval);
        let g = &out.result.graph;
        let page1 = out.result.skolem_node("PaperPage", &[Value::Node(p1)]).unwrap();
        let titles: Vec<&str> = g
            .attr_str(page1, "title")
            .filter_map(Value::as_str)
            .collect();
        assert_eq!(titles, ["Alpha (2nd ed.)"]);
    }

    #[test]
    fn kleene_deletions_fall_back_to_full_reeval() {
        let g0 = ddl::parse(
            r#"
            object root in Roots { child : &a; }
            object a { label : "a"; child : &b; }
            object b { label : "b"; }
        "#,
        )
        .unwrap();
        let db = Database::from_graph(g0, IndexLevel::Full);
        let program = parse(
            r#"
            where Roots(r), r -> * -> n
            create Copy(n)
            collect Reach(Copy(n))
        "#,
        )
        .unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();
        let a = db.graph().node_by_name("a").unwrap();
        let b = db.graph().node_by_name("b").unwrap();
        let mut delta = GraphDelta::new();
        delta.remove_edge(a, "child", Value::Node(b));
        let reference = full_reference(&db, &program, &delta);
        let out = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(out.full_reeval, "Kleene chains cannot DRed from single facts");
        assert!(graphs_equivalent(&out.result.graph, &reference.graph));
    }

    #[test]
    fn negation_falls_back_to_full_reeval() {
        let db = base_db();
        let program = parse(
            r#"
            where Publications(x), not(x -> "retracted" -> r)
            create P(x)
            collect Live(P(x))
        "#,
        )
        .unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();
        let p1 = db.graph().node_by_name("p1").unwrap();
        let mut delta = GraphDelta::new();
        delta.add_edge(p1, "retracted", Value::Bool(true));

        let reference = full_reference(&db, &program, &delta);
        let out = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(out.full_reeval);
        assert!(graphs_equivalent(&out.result.graph, &reference.graph));
        assert_eq!(out.result.graph.members_str("Live").len(), 1);
    }

    #[test]
    fn delta_removing_its_own_insert_does_not_panic() {
        // A mixed delta that adds an edge and removes it again: the delete
        // fact references a node the OLD graph never issued. Phase 1 must
        // skip it instead of indexing out of bounds.
        let g = ddl::parse(r#"object p1 { year : 1997; }"#).unwrap();
        let db = Database::from_graph(g, IndexLevel::Full);
        let program = parse(
            r#"
            where x -> "year" -> y
            create P(x)
            link P(x) -> "year" -> y
            collect Out(P(x))
        "#,
        )
        .unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();
        let base = db.graph().node_count();
        let mut delta = GraphDelta::new();
        delta.add_node(Some("p2"));
        let p2 = Oid::from_index(base);
        delta.add_edge(p2, "year", Value::Int(1998));
        delta.remove_edge(p2, "year", Value::Int(1998));

        let reference = full_reference(&db, &program, &delta);
        let out = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(!out.full_reeval);
        assert_eq!(
            out.result.graph.members_str("Out").len(),
            reference.graph.members_str("Out").len()
        );
    }

    #[test]
    fn kleene_star_chains_are_rederived_wholesale() {
        let db = {
            let g = ddl::parse(
                r#"
                object root in Roots { child : &a; }
                object a { label : "a"; }
                object b { label : "b"; }
            "#,
            )
            .unwrap();
            Database::from_graph(g, IndexLevel::Full)
        };
        let program = parse(
            r#"
            where Roots(r), r -> * -> n
            create Copy(n)
            collect Reach(Copy(n))
        "#,
        )
        .unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();
        assert_eq!(old.graph.members_str("Reach").len(), 3, "root, a, label");

        // Adding a->child->b extends reachability through the middle of
        // existing paths.
        let a = db.graph().node_by_name("a").unwrap();
        let b = db.graph().node_by_name("b").unwrap();
        let mut delta = GraphDelta::new();
        delta.add_edge(a, "child", Value::Node(b));

        let reference = full_reference(&db, &program, &delta);
        let out = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(!out.full_reeval);
        assert!(graphs_equivalent(&out.result.graph, &reference.graph));
    }

    /// Deleting an edge whose label the chain's Kleene closure can never
    /// traverse must stay on the incremental path: the regex is irrelevant
    /// to the deletion, so DRed remains sound.
    #[test]
    fn irrelevant_label_deletion_stays_incremental_despite_kleene() {
        let g0 = ddl::parse(
            r#"
            object root in Roots { child : &a; note : "draft"; }
            object a { label : "a"; }
        "#,
        )
        .unwrap();
        let db = Database::from_graph(g0, IndexLevel::Full);
        let program = parse(
            r#"
            where Roots(r), r -> "child"* -> n
            create Copy(n)
            collect Reach(Copy(n))
        "#,
        )
        .unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();
        let root = db.graph().node_by_name("root").unwrap();
        let mut delta = GraphDelta::new();
        delta.remove_edge(root, "note", Value::string("draft"));
        let reference = full_reference(&db, &program, &delta);
        let out = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(
            !out.full_reeval,
            "'note' cannot be traversed by \"child\"* — no fallback needed"
        );
        assert!(graphs_equivalent(&out.result.graph, &reference.graph));
    }

    /// Inserting an edge irrelevant to a Kleene chain must not trigger the
    /// wholesale rederivation of that chain.
    #[test]
    fn irrelevant_insert_skips_wholesale_kleene_rederivation() {
        let g0 = ddl::parse(
            r#"
            object root in Roots { child : &a; }
            object a { label : "a"; }
        "#,
        )
        .unwrap();
        let db = Database::from_graph(g0, IndexLevel::Full);
        let program = parse(
            r#"
            where Roots(r), r -> "child"* -> n
            create Copy(n)
            collect Reach(Copy(n))
        "#,
        )
        .unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();
        let root = db.graph().node_by_name("root").unwrap();
        let mut delta = GraphDelta::new();
        delta.add_edge(root, "note", Value::string("draft"));
        let reference = full_reference(&db, &program, &delta);
        let out = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(!out.full_reeval);
        assert_eq!(
            out.rows_recomputed, 0,
            "no chain atom relates to 'note'; nothing to rederive"
        );
        assert!(graphs_equivalent(&out.result.graph, &reference.graph));
    }

    #[test]
    fn empty_delta_changes_nothing() {
        let db = base_db();
        let program = parse(QUERY).unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();
        let nodes = old.graph.node_count();
        let edges = old.graph.edge_count();
        let out =
            incremental_update(&program, &db, &GraphDelta::new(), old).unwrap();
        assert!(!out.full_reeval);
        assert_eq!(out.rows_recomputed, 0);
        assert_eq!(out.result.graph.node_count(), nodes);
        assert_eq!(out.result.graph.edge_count(), edges);
    }

    #[test]
    fn incremental_matches_full_on_a_burst_of_inserts() {
        let db = base_db();
        let program = parse(QUERY).unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();

        let base = db.graph().node_count();
        let mut delta = GraphDelta::new();
        for i in 0..5 {
            delta.add_node(Some(&format!("np{i}")));
            let oid = Oid::from_index(base + i);
            delta.add_edge(oid, "title", Value::string(format!("New {i}")));
            delta.add_edge(oid, "year", Value::Int(1997 + (i as i64 % 3)));
            delta.collect("Publications", Value::Node(oid));
        }
        let reference = full_reference(&db, &program, &delta);
        let out = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(!out.full_reeval);
        assert!(graphs_equivalent(&out.result.graph, &reference.graph));
        assert_eq!(out.result.graph.members_str("Pages").len(), 7);
    }
}

