//! Dynamic ("click-time") site evaluation.
//!
//! The prototype of the paper materializes whole site graphs up front,
//! which "is infeasible for sites that are updated frequently" (§2.5).
//! Site schemas are the fix: they "specify, for each node in the site
//! graph, the queries that must be evaluated to compute the node's
//! contents, i.e. its outgoing edges". [`DynamicSite`] is that engine: it
//! materializes one page's out-edges when the page is first visited.
//!
//! Three evaluation modes reproduce the paper's optimization story:
//!
//! * [`Mode::Naive`] — each click evaluates every relevant edge guard from
//!   scratch and filters the result to the visited page. "Naive evaluation
//!   of these queries is costly, because they often recompute information
//!   derived for already browsed pages."
//! * [`Mode::Context`] — the visited page's Skolem arguments seed the
//!   guard evaluation ("we can optimize its incremental query using
//!   contexts derived from the paths that reach the node"), so the planner
//!   starts from bound variables and touches only the relevant slice of
//!   the data.
//! * [`Mode::ContextLookahead`] — additionally "precompute look-ahead
//!   results for queries of reachable nodes": visiting a page prefetches
//!   its children into the cache, so following a link is usually a cache
//!   hit.
//!
//! ## Concurrency
//!
//! The engine is shared: [`DynamicSite::visit`] takes `&self`, so one
//! engine serves a whole worker pool. The page cache lives in sharded
//! read/write locks keyed by [`PageKey`]; the database is a swappable
//! `Arc` snapshot so [`DynamicSite::apply_delta`] can install an updated
//! database and evict precisely the dirtied pages while readers keep
//! serving. An epoch counter fences the race between a visit computed
//! against the old snapshot and a concurrent delta: cache inserts carry
//! the epoch they were computed under and are dropped if a delta landed
//! in between.

use crate::invalidate::{self, DirtySet};
use crate::site_schema::SchemaEdge;
use crate::{SchemaNode, SiteSchema};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use strudel_graph::{GraphDelta, Value};
use strudel_repo::Database;
use strudel_struql::{
    Condition, EvalOptions, Evaluator, ExplainReport, LabelTerm, Parallelism, PreparedWhere,
    Program, StruqlError, StruqlResult, Term,
};

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Full guard evaluation per click, filtered to the visited page.
    Naive,
    /// Seed guard evaluation with the page's Skolem arguments.
    Context,
    /// Context seeding plus one level of child prefetch.
    ContextLookahead,
}

/// Identifies a dynamic page: a Skolem symbol applied to data values.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// Skolem symbol.
    pub symbol: String,
    /// Fully evaluated arguments (data-graph values).
    pub args: Vec<Value>,
}

/// A link target on a dynamic page.
#[derive(Clone, Debug, PartialEq)]
pub enum DynTarget {
    /// Another dynamic page.
    Page(PageKey),
    /// A data value (possibly a data-graph node).
    Data(Value),
}

/// One materialized page: its outgoing labeled edges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PageView {
    /// `(label, target)` pairs in derivation order, deduplicated.
    pub edges: Vec<(String, DynTarget)>,
}

/// Work counters across the browsing session (a consistent-enough
/// snapshot of the engine's atomic counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Pages served (including cache hits).
    pub clicks: usize,
    /// Guard evaluations run.
    pub queries_run: usize,
    /// Bindings rows produced by those evaluations.
    pub rows_produced: usize,
    /// Pages served straight from the cache.
    pub cache_hits: usize,
    /// Pages evicted by delta invalidation.
    pub evictions: usize,
    /// Guard evaluations that executed a cached prepared plan.
    pub plan_cache_hits: usize,
    /// Guard evaluations that had to analyze/plan/compile first.
    pub plan_cache_misses: usize,
}

/// The result of applying a data delta to a live engine.
#[derive(Clone, Debug, Default)]
pub struct InvalidationOutcome {
    /// What the delta dirtied (exact pages + wholesale symbols).
    pub dirty: DirtySet,
    /// How many cached page views were actually evicted.
    pub evicted: usize,
}

/// Number of cache shards; a small power of two is plenty — contention
/// is per-key and guard evaluation dominates hold times.
const SHARDS: usize = 16;

/// The compiled-query cache: per guard, the analyzed/planned/NFA-compiled
/// [`PreparedWhere`] valid for one database epoch. A prepared plan bakes
/// in interned label ids and cardinality statistics, so entries from
/// before a delta are unusable — the cache self-invalidates by comparing
/// its epoch stamp against the engine's.
struct PreparedCache {
    /// The epoch every entry in `map` was prepared under.
    epoch: u64,
    /// Keyed by schema-edge index; root collects use
    /// `schema.edges.len() + collect index`.
    map: HashMap<usize, Arc<PreparedWhere>>,
}

/// A dynamically evaluated site over a live database, shareable across
/// threads (`visit` takes `&self`).
pub struct DynamicSite {
    db: RwLock<Arc<Database>>,
    schema: SiteSchema,
    mode: Mode,
    parallelism: Parallelism,
    shards: Vec<RwLock<HashMap<PageKey, PageView>>>,
    /// Bumped by every applied delta; fences stale cache inserts.
    epoch: AtomicU64,
    /// Compiled guard plans for the current epoch.
    prepared: RwLock<PreparedCache>,
    /// Whether the compiled-query cache is consulted (ablation knob).
    query_cache: bool,
    clicks: AtomicUsize,
    queries_run: AtomicUsize,
    rows_produced: AtomicUsize,
    cache_hits: AtomicUsize,
    evictions: AtomicUsize,
    plan_cache_hits: AtomicUsize,
    plan_cache_misses: AtomicUsize,
}

impl DynamicSite {
    /// Builds the engine for `program` over `db`.
    pub fn new(db: Arc<Database>, program: &Program, mode: Mode) -> Self {
        DynamicSite {
            db: RwLock::new(db),
            schema: SiteSchema::extract(program),
            mode,
            parallelism: Parallelism::default(),
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            epoch: AtomicU64::new(0),
            prepared: RwLock::new(PreparedCache {
                epoch: 0,
                map: HashMap::new(),
            }),
            query_cache: true,
            clicks: AtomicUsize::new(0),
            queries_run: AtomicUsize::new(0),
            rows_produced: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            plan_cache_hits: AtomicUsize::new(0),
            plan_cache_misses: AtomicUsize::new(0),
        }
    }

    /// Enables or disables the compiled-query cache. On by default;
    /// disabling re-plans and recompiles every guard per request — the
    /// ablation baseline for the click-time cache experiment. Served
    /// content is identical either way.
    pub fn with_query_cache(mut self, enabled: bool) -> Self {
        self.query_cache = enabled;
        self
    }

    /// Sets the worker budget for guard evaluation. Served page views are
    /// identical at any setting (see `strudel_struql::par`); only latency
    /// on guard-heavy pages changes.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The configured worker budget.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    fn evaluator<'db>(&self, db: &'db Database) -> Evaluator<'db> {
        Evaluator::with_options(
            db,
            EvalOptions {
                parallelism: self.parallelism,
                ..Default::default()
            },
        )
    }

    /// Work counters so far.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            clicks: self.clicks.load(Ordering::Relaxed),
            queries_run: self.queries_run.load(Ordering::Relaxed),
            rows_produced: self.rows_produced.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Number of pages currently materialized in the cache.
    pub fn cached_pages(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// The current database snapshot.
    pub fn database(&self) -> Arc<Database> {
        self.db.read().unwrap().clone()
    }

    /// The current `(epoch, database)` pair, read consistently: the epoch
    /// is bumped under the database write lock, so holding the read lock
    /// across both reads guarantees the epoch stamps exactly this
    /// snapshot. Prepared plans and cache inserts are keyed by it.
    fn snapshot(&self) -> (u64, Arc<Database>) {
        let db = self.db.read().unwrap();
        (self.epoch.load(Ordering::Acquire), db.clone())
    }

    /// The prepared plan for guard `key` (a schema-edge index, or
    /// `edges.len() + i` for root collect `i`) at `epoch`, compiling and
    /// caching on miss. An entry prepared under an older epoch is never
    /// returned; an insert races a concurrent delta safely because the
    /// cache's epoch stamp only moves forward.
    fn prepared_for(
        &self,
        epoch: u64,
        ev: &Evaluator<'_>,
        key: usize,
        conds: &[Condition],
        seed_names: &[String],
    ) -> Arc<PreparedWhere> {
        if self.query_cache {
            let c = self.prepared.read().unwrap();
            if c.epoch == epoch {
                if let Some(p) = c.map.get(&key) {
                    self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
                    strudel_trace::count("engine.plan.cache.hits", 1);
                    return Arc::clone(p);
                }
            }
        }
        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
        strudel_trace::count("engine.plan.cache.misses", 1);
        let p = Arc::new(ev.prepare_where(conds, seed_names));
        if self.query_cache {
            let mut c = self.prepared.write().unwrap();
            if c.epoch < epoch {
                // First prepare after a delta: flush the stale entries.
                c.map.clear();
                c.epoch = epoch;
            }
            if c.epoch == epoch {
                c.map.entry(key).or_insert_with(|| Arc::clone(&p));
            }
            // c.epoch > epoch: a delta landed mid-compute; drop the insert.
        }
        p
    }

    /// The extracted site schema.
    pub fn schema(&self) -> &SiteSchema {
        &self.schema
    }

    /// The evaluation mode this engine was built with.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The delta epoch: how many deltas have been applied.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn shard_of(&self, key: &PageKey) -> &RwLock<HashMap<PageKey, PageView>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Inserts a computed view unless a delta landed since `epoch`.
    fn insert_if_current(&self, epoch: u64, key: PageKey, view: PageView) {
        let mut shard = self.shard_of(&key).write().unwrap();
        if self.epoch.load(Ordering::Acquire) == epoch {
            shard.insert(key, view);
        }
    }

    /// The site's entry points: every page collected by the query, by
    /// collection name.
    pub fn roots(&self, collection: &str) -> StruqlResult<Vec<PageKey>> {
        let (epoch, db) = self.snapshot();
        let ev = self.evaluator(&db);
        let mut out = Vec::new();
        for (ci, (collect, guard)) in self.schema.collects.iter().enumerate() {
            if collect.collection != collection {
                continue;
            }
            let Term::Skolem { symbol, args } = &collect.arg else {
                continue;
            };
            let prepared =
                self.prepared_for(epoch, &ev, self.schema.edges.len() + ci, guard, &[]);
            let rows = ev.eval_where_prepared(guard, &prepared, &[])?;
            self.queries_run.fetch_add(1, Ordering::Relaxed);
            self.rows_produced.fetch_add(rows.len(), Ordering::Relaxed);
            for row in &rows {
                let key = PageKey {
                    symbol: symbol.clone(),
                    args: eval_args(args, prepared.vars(), row)?,
                };
                if !out.contains(&key) {
                    out.push(key);
                }
            }
        }
        Ok(out)
    }

    /// Serves one click: the out-edges of `page`, computed on demand.
    /// Safe to call concurrently from any number of threads.
    pub fn visit(&self, page: &PageKey) -> StruqlResult<PageView> {
        let _span = strudel_trace::span("engine.visit");
        self.clicks.fetch_add(1, Ordering::Relaxed);
        if let Some(v) = self.shard_of(page).read().unwrap().get(page) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            strudel_trace::count("engine.cache.hits", 1);
            return Ok(v.clone());
        }
        strudel_trace::count("engine.cache.misses", 1);
        // Epoch and snapshot are read consistently; if a delta lands
        // between compute and insert, the epoch check drops the insert.
        let (epoch, db) = self.snapshot();
        let view = self.compute(&db, epoch, page)?;
        self.insert_if_current(epoch, page.clone(), view.clone());
        if self.mode == Mode::ContextLookahead {
            // One level of look-ahead: materialize children now, while
            // their guards' context is warm.
            let children: Vec<PageKey> = view
                .edges
                .iter()
                .filter_map(|(_, t)| match t {
                    DynTarget::Page(k) => Some(k.clone()),
                    _ => None,
                })
                .collect();
            for child in children {
                if self.shard_of(&child).read().unwrap().contains_key(&child) {
                    continue;
                }
                let v = self.compute(&db, epoch, &child)?;
                self.insert_if_current(epoch, child, v);
            }
        }
        Ok(view)
    }

    /// Applies a data-graph delta: rebuilds the database snapshot, swaps
    /// it in, and evicts exactly the pages the delta dirtied. Concurrent
    /// `visit`s keep serving throughout (from the old snapshot until the
    /// swap, from the new one after).
    pub fn apply_delta(&self, delta: &GraphDelta) -> StruqlResult<InvalidationOutcome> {
        let _span = strudel_trace::span("engine.apply_delta");
        // Atomicity: the delta is applied to a CLONE of the current graph,
        // and any error — a non-applicable op or a failed invalidation —
        // returns before the swap below. A rejected delta therefore leaves
        // the served snapshot, the epoch, and the page cache untouched.
        let old_db = self.database();
        let mut graph = old_db.graph().clone();
        delta.apply(&mut graph).map_err(|e| StruqlError::Eval {
            message: format!("delta does not apply: {e}"),
        })?;
        let new_db = Arc::new(Database::from_graph(graph, old_db.level()));
        let dirty = invalidate::dirty_pages(&self.schema, &old_db, &new_db, delta)?;

        // Install the new snapshot; the epoch bump (under the same write
        // lock) invalidates in-flight computations against the old one.
        let new_epoch = {
            let mut db = self.db.write().unwrap();
            let e = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
            *db = new_db;
            e
        };
        self.flush_prepared(new_epoch);

        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard.write().unwrap();
            let before = map.len();
            map.retain(|key, _| !dirty.contains(key));
            evicted += before - map.len();
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        strudel_trace::event_with("engine.invalidate", || {
            format!(
                "pages={} symbols={} evicted={evicted}",
                dirty.pages.len(),
                dirty.symbols.len()
            )
        });
        Ok(InvalidationOutcome { dirty, evicted })
    }

    /// Drops every cached page (e.g. after out-of-band database surgery).
    pub fn clear_cache(&self) {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard.write().unwrap();
            evicted += map.len();
            map.clear();
        }
        let new_epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.flush_prepared(new_epoch);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Drops prepared plans older than `new_epoch`. Entries stamped with
    /// `new_epoch` itself are kept: a concurrent visit that already saw
    /// the new snapshot may have repopulated the cache first, and those
    /// plans are valid.
    fn flush_prepared(&self, new_epoch: u64) {
        let mut c = self.prepared.write().unwrap();
        if c.epoch < new_epoch {
            c.map.clear();
            c.epoch = new_epoch;
        }
    }

    /// Builds the guard seeds for one schema edge when serving `page`.
    /// `None` means the edge provably cannot reach this page (a constant
    /// source argument disagrees, or one variable would need two values)
    /// and must be skipped; nested-Skolem arguments also return `None`
    /// since they cannot be reconstructed into seeds. In [`Mode::Naive`]
    /// the seed list is always empty: the guard runs unseeded and rows
    /// are filtered to the page afterwards.
    fn seed_for_edge(
        &self,
        edge: &SchemaEdge,
        page: &PageKey,
    ) -> Option<Vec<(String, Value)>> {
        let mut seeds: Vec<(String, Value)> = Vec::new();
        if self.mode == Mode::Naive {
            return Some(seeds);
        }
        for (term, value) in edge.src_args.iter().zip(&page.args) {
            match term {
                Term::Var(v) => {
                    if let Some((_, prev)) = seeds.iter().find(|(name, _)| name == v) {
                        if prev != value {
                            return None;
                        }
                    } else {
                        seeds.push((v.clone(), value.clone()));
                    }
                }
                Term::Const(c) => {
                    if c != value {
                        return None;
                    }
                }
                Term::Skolem { .. } => return None, // nested pages: unsupported seed
            }
        }
        Some(seeds)
    }

    /// Evaluates the incremental queries for one page against `db` (the
    /// snapshot stamped by `epoch`), executing cached prepared plans.
    fn compute(&self, db: &Database, epoch: u64, page: &PageKey) -> StruqlResult<PageView> {
        let _span = strudel_trace::span("engine.compute");
        let Some(node) = self.schema.node_index(&page.symbol) else {
            return Err(StruqlError::Eval {
                message: format!("unknown page symbol '{}'", page.symbol),
            });
        };
        let ev = self.evaluator(db);
        let mut view = PageView::default();
        for (ei, edge) in self.schema.edges.iter().enumerate() {
            if edge.from != node {
                continue;
            }
            // Seed the guard with the page's Skolem arguments (Context
            // modes); Naive evaluates unseeded and filters afterwards.
            // Seed *names* depend only on the edge (they come from the
            // symbol's argument terms), so the prepared plan is valid for
            // every page of this symbol.
            let Some(seeds) = self.seed_for_edge(edge, page) else {
                continue;
            };
            strudel_trace::count("engine.guard.evals", 1);
            let seed_names: Vec<String> = seeds.iter().map(|(n, _)| n.clone()).collect();
            let prepared = self.prepared_for(epoch, &ev, ei, &edge.guard, &seed_names);
            let rows = ev.eval_where_prepared(&edge.guard, &prepared, &seeds)?;
            let vars = prepared.vars();
            self.queries_run.fetch_add(1, Ordering::Relaxed);
            self.rows_produced.fetch_add(rows.len(), Ordering::Relaxed);
            for row in &rows {
                // In Naive mode (or with nested-Skolem args) filter rows to
                // the visited page.
                let src_vals = eval_args(&edge.src_args, vars, row)?;
                if src_vals != page.args {
                    continue;
                }
                let label = match &edge.label {
                    LabelTerm::Const(s) => s.clone(),
                    LabelTerm::Var(v) => {
                        let idx = vars.iter().position(|x| x == v).ok_or_else(|| {
                            StruqlError::Eval {
                                message: format!("arc variable '{v}' missing"),
                            }
                        })?;
                        match &row[idx] {
                            Some(Value::Str(s)) => s.to_string(),
                            other => {
                                return Err(StruqlError::Eval {
                                    message: format!(
                                        "arc variable '{v}' bound to {other:?}, not a label"
                                    ),
                                })
                            }
                        }
                    }
                };
                let target = match &self.schema.nodes[edge.to] {
                    SchemaNode::Skolem(sym) => DynTarget::Page(PageKey {
                        symbol: sym.clone(),
                        args: eval_args(&edge.dst_args, vars, row)?,
                    }),
                    SchemaNode::Ns => {
                        let vals = eval_args(&edge.dst_args, vars, row)?;
                        DynTarget::Data(vals.into_iter().next().expect("one NS target"))
                    }
                };
                let entry = (label, target);
                if !view.edges.contains(&entry) {
                    view.edges.push(entry);
                }
            }
        }
        Ok(view)
    }

    /// Explains how `page` would be served: one [`ExplainReport`] per
    /// schema out-edge whose guard would run, with the planner's
    /// cardinality estimates next to the measured per-step row counts and
    /// timings. Skipped edges (see [`Self::seed_for_edge`]) are omitted.
    /// Nothing is cached and no engine counters move.
    pub fn explain(&self, page: &PageKey) -> StruqlResult<Vec<EdgeExplain>> {
        let Some(node) = self.schema.node_index(&page.symbol) else {
            return Err(StruqlError::Eval {
                message: format!("unknown page symbol '{}'", page.symbol),
            });
        };
        let db = self.database();
        let ev = self.evaluator(&db);
        let mut out = Vec::new();
        for edge in self.schema.out_edges(node) {
            let Some(seeds) = self.seed_for_edge(edge, page) else {
                continue;
            };
            let (_, _, report) = ev.explain_where_bindings(&edge.guard, &seeds)?;
            let label = match &edge.label {
                LabelTerm::Const(s) => s.clone(),
                LabelTerm::Var(v) => format!("?{v}"),
            };
            let target = match &self.schema.nodes[edge.to] {
                SchemaNode::Skolem(sym) => sym.clone(),
                SchemaNode::Ns => "NS".to_string(),
            };
            out.push(EdgeExplain {
                label,
                target,
                report,
            });
        }
        Ok(out)
    }
}

/// One schema edge's guard, explained: which link it derives and how the
/// planner's estimates compared to the measured evaluation.
#[derive(Clone, Debug)]
pub struct EdgeExplain {
    /// The link label this edge derives (`?v` for an arc variable).
    pub label: String,
    /// Target page symbol, or `"NS"` for a data target.
    pub target: String,
    /// Per-step estimates vs actuals for the edge's guard.
    pub report: ExplainReport,
}

/// Evaluates Skolem argument terms against a bindings row.
pub(crate) fn eval_args(
    args: &[Term],
    vars: &[String],
    row: &[Option<Value>],
) -> StruqlResult<Vec<Value>> {
    args.iter()
        .map(|t| match t {
            Term::Var(v) => {
                let idx = vars.iter().position(|x| x == v).ok_or_else(|| {
                    StruqlError::Eval {
                        message: format!("argument variable '{v}' missing"),
                    }
                })?;
                row[idx].clone().ok_or_else(|| StruqlError::Eval {
                    message: format!("argument variable '{v}' unbound"),
                })
            }
            Term::Const(c) => Ok(c.clone()),
            Term::Skolem { .. } => Err(StruqlError::Eval {
                message: "nested Skolem arguments are not supported dynamically".into(),
            }),
        })
        .collect()
}

/// A list of guards usable to estimate per-click work; exposed for tests.
pub fn edge_guards(schema: &SiteSchema) -> Vec<&[Condition]> {
    schema.edges.iter().map(|e| e.guard.as_slice()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::ddl;
    use strudel_repo::IndexLevel;
    use strudel_struql::parse;

    const QUERY: &str = r#"
        create RootPage()
        where Publications(x)
        create PaperPage(x)
        link RootPage() -> "paper" -> PaperPage(x),
             PaperPage(x) -> "home" -> RootPage()
        collect Roots(RootPage())
        { where x -> "title" -> t
          link PaperPage(x) -> "title" -> t }
        { where x -> "year" -> y
          create YearPage(y)
          link PaperPage(x) -> "year" -> YearPage(y),
               YearPage(y) -> "label" -> y }
    "#;

    fn db() -> Arc<Database> {
        let g = ddl::parse(
            r#"
            object p1 in Publications { title : "Alpha"; year : 1997; }
            object p2 in Publications { title : "Beta"; year : 1998; }
            object p3 in Publications { title : "Gamma"; year : 1997; }
        "#,
        )
        .unwrap();
        Arc::new(Database::from_graph(g, IndexLevel::Full))
    }

    fn root() -> PageKey {
        PageKey {
            symbol: "RootPage".into(),
            args: vec![],
        }
    }

    #[test]
    fn roots_enumerate_collected_pages() {
        let site = DynamicSite::new(db(), &parse(QUERY).unwrap(), Mode::Context);
        let roots = site.roots("Roots").unwrap();
        assert_eq!(roots, vec![root()]);
    }

    #[test]
    fn visiting_root_lists_papers() {
        let site = DynamicSite::new(db(), &parse(QUERY).unwrap(), Mode::Context);
        let view = site.visit(&root()).unwrap();
        let papers: Vec<_> = view
            .edges
            .iter()
            .filter(|(l, _)| l == "paper")
            .collect();
        assert_eq!(papers.len(), 3);
    }

    #[test]
    fn visiting_a_paper_shows_its_attributes_only() {
        let db = db();
        let p1 = Value::Node(db.graph().node_by_name("p1").unwrap());
        let site = DynamicSite::new(db, &parse(QUERY).unwrap(), Mode::Context);
        let view = site
            .visit(&PageKey {
                symbol: "PaperPage".into(),
                args: vec![p1],
            })
            .unwrap();
        let titles: Vec<_> = view
            .edges
            .iter()
            .filter_map(|(l, t)| (l == "title").then_some(t))
            .collect();
        assert_eq!(
            titles,
            vec![&DynTarget::Data(Value::string("Alpha"))],
            "only p1's title, not every paper's"
        );
        assert!(view
            .edges
            .iter()
            .any(|(l, t)| l == "year"
                && matches!(t, DynTarget::Page(k) if k.symbol == "YearPage"
                    && k.args == vec![Value::Int(1997)])));
    }

    #[test]
    fn all_modes_agree_on_content() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let p2 = Value::Node(db.graph().node_by_name("p2").unwrap());
        let key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![p2],
        };
        let mut views = Vec::new();
        for mode in [Mode::Naive, Mode::Context, Mode::ContextLookahead] {
            let site = DynamicSite::new(db.clone(), &program, mode);
            let mut view = site.visit(&key).unwrap();
            view.edges.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            views.push(view);
        }
        assert_eq!(views[0], views[1]);
        assert_eq!(views[1], views[2]);
    }

    #[test]
    fn context_mode_produces_fewer_rows_than_naive() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let p1 = Value::Node(db.graph().node_by_name("p1").unwrap());
        let key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![p1],
        };
        let naive = DynamicSite::new(db.clone(), &program, Mode::Naive);
        naive.visit(&key).unwrap();
        let ctx = DynamicSite::new(db, &program, Mode::Context);
        ctx.visit(&key).unwrap();
        assert!(
            ctx.metrics().rows_produced < naive.metrics().rows_produced,
            "context {} vs naive {}",
            ctx.metrics().rows_produced,
            naive.metrics().rows_produced
        );
    }

    #[test]
    fn lookahead_turns_follows_into_cache_hits() {
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db(), &program, Mode::ContextLookahead);
        let view = site.visit(&root()).unwrap();
        assert!(site.cached_pages() >= 4, "root + 3 prefetched papers");
        // Follow the first paper link: a cache hit.
        let DynTarget::Page(first) = &view.edges[0].1 else {
            panic!()
        };
        let before = site.metrics().cache_hits;
        site.visit(first).unwrap();
        assert_eq!(site.metrics().cache_hits, before + 1);
    }

    #[test]
    fn repeat_visits_hit_cache_in_every_mode() {
        let db = db();
        let program = parse(QUERY).unwrap();
        for mode in [Mode::Naive, Mode::Context] {
            let site = DynamicSite::new(db.clone(), &program, mode);
            site.visit(&root()).unwrap();
            let q1 = site.metrics().queries_run;
            site.visit(&root()).unwrap();
            assert_eq!(site.metrics().queries_run, q1, "no new queries");
            assert_eq!(site.metrics().cache_hits, 1);
        }
    }

    #[test]
    fn dynamic_matches_static_materialization() {
        // The pages the dynamic engine serves must agree with the
        // statically evaluated site graph.
        let db = db();
        let program = parse(QUERY).unwrap();
        let static_site = Evaluator::new(&db).eval(&program).unwrap();

        let site = DynamicSite::new(db.clone(), &program, Mode::Context);
        let root_view = site.visit(&root()).unwrap();
        let static_root = static_site.skolem_node("RootPage", &[]).unwrap();
        assert_eq!(
            root_view
                .edges
                .iter()
                .filter(|(l, _)| l == "paper")
                .count(),
            static_site.graph.attr_str(static_root, "paper").count()
        );
    }

    #[test]
    fn int_keyed_pages_resolve() {
        let site = DynamicSite::new(db(), &parse(QUERY).unwrap(), Mode::Context);
        let view = site
            .visit(&PageKey {
                symbol: "YearPage".into(),
                args: vec![Value::Int(1997)],
            })
            .unwrap();
        // 1997 has its label edge; papers link *to* year pages, not from.
        assert!(view
            .edges
            .iter()
            .any(|(l, t)| l == "label" && *t == DynTarget::Data(Value::Int(1997))));
    }

    #[test]
    fn nonexistent_page_instance_is_empty_not_error() {
        // YearPage(1890) was never derivable: its incremental queries
        // return no rows, so the page is simply empty.
        let site = DynamicSite::new(db(), &parse(QUERY).unwrap(), Mode::Context);
        let view = site
            .visit(&PageKey {
                symbol: "YearPage".into(),
                args: vec![Value::Int(1890)],
            })
            .unwrap();
        assert!(view.edges.is_empty());
    }

    #[test]
    fn unknown_symbol_is_an_error() {
        let site = DynamicSite::new(db(), &parse(QUERY).unwrap(), Mode::Context);
        assert!(site
            .visit(&PageKey {
                symbol: "Ghost".into(),
                args: vec![]
            })
            .is_err());
    }

    #[test]
    fn concurrent_visits_share_one_engine() {
        // ≥ 4 threads hammer one engine through `&self`; every thread
        // sees identical content and the cache converges to one copy.
        let program = parse(QUERY).unwrap();
        let site = Arc::new(DynamicSite::new(db(), &program, Mode::Context));
        let mut expected = site.visit(&root()).unwrap();
        expected
            .edges
            .sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));

        let mut handles = Vec::new();
        for _ in 0..8 {
            let site = Arc::clone(&site);
            let expected = expected.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let mut v = site.visit(&root()).unwrap();
                    v.edges.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
                    assert_eq!(v, expected);
                    // Also fan out to every paper page.
                    for (_, t) in &expected.edges {
                        if let DynTarget::Page(k) = t {
                            site.visit(k).unwrap();
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let m = site.metrics();
        assert!(m.cache_hits > 0, "warm visits hit the cache: {m:?}");
    }

    #[test]
    fn apply_delta_evicts_only_dirty_pages() {
        let db = db();
        let p1 = db.graph().node_by_name("p1").unwrap();
        let p2 = Value::Node(db.graph().node_by_name("p2").unwrap());
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db, &program, Mode::Context);

        let p1_key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(p1)],
        };
        let p2_key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![p2],
        };
        let before = site.visit(&p1_key).unwrap();
        site.visit(&p2_key).unwrap();
        assert_eq!(site.cached_pages(), 2);

        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "title", Value::string("Alpha"));
        delta.add_edge(p1, "title", Value::string("Alpha (rev)"));
        let outcome = site.apply_delta(&delta).unwrap();
        assert_eq!(outcome.evicted, 1, "{:?}", outcome.dirty);
        assert_eq!(site.cached_pages(), 1, "p2 stays cached");

        // Revisit p1: recomputed against the new snapshot.
        let hits_before = site.metrics().cache_hits;
        let after = site.visit(&p1_key).unwrap();
        assert_eq!(site.metrics().cache_hits, hits_before, "p1 was a miss");
        assert_ne!(before, after);
        assert!(after.edges.iter().any(|(l, t)| l == "title"
            && *t == DynTarget::Data(Value::string("Alpha (rev)"))));

        // Revisit p2: still served from cache.
        site.visit(&p2_key).unwrap();
        assert_eq!(site.metrics().cache_hits, hits_before + 1);
    }

    #[test]
    fn delta_visible_to_subsequent_visits() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db.clone(), &program, Mode::Context);
        let n_before = site.visit(&root()).unwrap().edges.len();

        // Add a brand-new publication.
        let mut delta = GraphDelta::new();
        delta.add_node(Some("p4"));
        let oid = strudel_graph::Oid::from_index(db.graph().node_count());
        delta.add_edge(oid, "title", Value::string("Delta"));
        delta.collect("Publications", Value::Node(oid));
        let outcome = site.apply_delta(&delta).unwrap();
        assert!(outcome.dirty.contains(&root()));

        let view = site.visit(&root()).unwrap();
        assert_eq!(
            view.edges.iter().filter(|(l, _)| l == "paper").count(),
            4,
            "new paper listed"
        );
        assert!(view.edges.len() > n_before);
        assert_eq!(site.epoch(), 1);
    }

    #[test]
    fn parallel_engine_serves_identical_views() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let seq = DynamicSite::new(db.clone(), &program, Mode::Context);
        let par = DynamicSite::new(db, &program, Mode::Context)
            .with_parallelism(Parallelism::Threads(4));
        assert_eq!(par.parallelism(), Parallelism::Threads(4));
        let roots = seq.roots("Roots").unwrap();
        assert_eq!(roots, par.roots("Roots").unwrap());
        for key in &roots {
            assert_eq!(seq.visit(key).unwrap(), par.visit(key).unwrap());
        }
    }

    #[test]
    fn plan_cache_hits_on_warm_guards() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db, &program, Mode::Context);
        let p = |n: &str| PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(site.database().graph().node_by_name(n).unwrap())],
        };
        site.visit(&p("p1")).unwrap();
        let m1 = site.metrics();
        assert!(m1.plan_cache_misses > 0, "cold guards compile: {m1:?}");
        assert_eq!(m1.plan_cache_hits, 0);
        // A *different* page of the same symbol runs the same guards:
        // every plan is served from the cache.
        site.visit(&p("p2")).unwrap();
        let m2 = site.metrics();
        assert_eq!(m2.plan_cache_misses, m1.plan_cache_misses, "no recompiles");
        assert!(m2.plan_cache_hits > 0, "{m2:?}");
    }

    #[test]
    fn query_cache_off_recompiles_but_serves_identical_views() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let cached = DynamicSite::new(db.clone(), &program, Mode::Context);
        let uncached =
            DynamicSite::new(db, &program, Mode::Context).with_query_cache(false);
        let key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(
                cached.database().graph().node_by_name("p3").unwrap(),
            )],
        };
        assert_eq!(cached.visit(&key).unwrap(), uncached.visit(&key).unwrap());
        uncached.clear_cache();
        uncached.visit(&key).unwrap();
        let m = uncached.metrics();
        assert_eq!(m.plan_cache_hits, 0, "cache disabled: {m:?}");
        assert!(m.plan_cache_misses > 0);
    }

    #[test]
    fn delta_flushes_prepared_plans() {
        let db = db();
        let p1 = db.graph().node_by_name("p1").unwrap();
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db, &program, Mode::Context);
        let p1_key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(p1)],
        };
        site.visit(&p1_key).unwrap();
        let misses_cold = site.metrics().plan_cache_misses;

        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "title", Value::string("Alpha"));
        delta.add_edge(p1, "title", Value::string("Alpha II"));
        site.apply_delta(&delta).unwrap();

        // Post-delta plans are prepared against the new snapshot's stats
        // and interner — the old entries must not be served. The delta
        // evicted p1's page, so its guards re-run on the next visit.
        site.visit(&p1_key).unwrap();
        assert!(
            site.metrics().plan_cache_misses > misses_cold,
            "stale plans flushed: {:?}",
            site.metrics()
        );
    }

    #[test]
    fn clear_cache_counts_evictions() {
        let site = DynamicSite::new(db(), &parse(QUERY).unwrap(), Mode::ContextLookahead);
        site.visit(&root()).unwrap();
        let cached = site.cached_pages();
        assert!(cached >= 4);
        site.clear_cache();
        assert_eq!(site.cached_pages(), 0);
        assert_eq!(site.metrics().evictions, cached);
    }
}
