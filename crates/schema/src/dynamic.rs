//! Dynamic ("click-time") site evaluation.
//!
//! The prototype of the paper materializes whole site graphs up front,
//! which "is infeasible for sites that are updated frequently" (§2.5).
//! Site schemas are the fix: they "specify, for each node in the site
//! graph, the queries that must be evaluated to compute the node's
//! contents, i.e. its outgoing edges". [`DynamicSite`] is that engine: it
//! materializes one page's out-edges when the page is first visited.
//!
//! Three evaluation modes reproduce the paper's optimization story:
//!
//! * [`Mode::Naive`] — each click evaluates every relevant edge guard from
//!   scratch and filters the result to the visited page. "Naive evaluation
//!   of these queries is costly, because they often recompute information
//!   derived for already browsed pages."
//! * [`Mode::Context`] — the visited page's Skolem arguments seed the
//!   guard evaluation ("we can optimize its incremental query using
//!   contexts derived from the paths that reach the node"), so the planner
//!   starts from bound variables and touches only the relevant slice of
//!   the data.
//! * [`Mode::ContextLookahead`] — additionally "precompute look-ahead
//!   results for queries of reachable nodes": visiting a page prefetches
//!   its children into the cache, so following a link is usually a cache
//!   hit.
//!
//! ## Concurrency
//!
//! The engine is shared: [`DynamicSite::visit`] takes `&self`, so one
//! engine serves a whole worker pool. The page cache lives in sharded
//! read/write locks keyed by [`PageKey`]; the database is a swappable
//! `Arc` snapshot so [`DynamicSite::apply_delta`] can install an updated
//! database while readers keep serving. An epoch counter fences the race
//! between a visit computed against the old snapshot and a concurrent
//! delta: cache inserts carry the epoch they were computed under and are
//! dropped if a delta landed in between.
//!
//! ## Differential maintenance
//!
//! Each cached page keeps, beside its rendered [`PageView`], the signed
//! bindings rows of every guard that produced it. [`DynamicSite::apply_delta`]
//! then *maintains* dirty cached pages instead of evicting them: the delta
//! is propagated through each touched guard by
//! [`diff_where`](strudel_struql::diff_where), the signed diff is applied
//! to the stored rows with exact count-based retraction, and the view is
//! re-projected — no guard re-evaluation on the next visit. Pages whose
//! state cannot absorb the diff (no stored rows, a count underflow, a
//! variable-layout mismatch) fall back to eviction and full re-evaluation.
//! Two O(site) costs are engineered out of the delta path so maintenance
//! scales with |Δ| rather than site size: a standby twin database is
//! double-buffered across deltas (each swap applies the delta to the twin
//! in O(|Δ|) instead of re-indexing a graph clone), and the optimizer
//! statistics are carried forward with a bounded drift instead of being
//! rescanned.

use crate::invalidate::{self, DirtySet};
use crate::site_schema::SchemaEdge;
use crate::{SchemaNode, SiteSchema};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use strudel_graph::{GraphDelta, Value};
use strudel_repo::Database;
use strudel_struql::{
    apply_diff, diff_where, Condition, DeltaTouch, EvalOptions, Evaluator, ExplainReport,
    LabelTerm, Parallelism, PreparedWhere, Program, SignedRow, StruqlError, StruqlResult, Term,
};

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Full guard evaluation per click, filtered to the visited page.
    Naive,
    /// Seed guard evaluation with the page's Skolem arguments.
    Context,
    /// Context seeding plus one level of child prefetch.
    ContextLookahead,
}

/// Identifies a dynamic page: a Skolem symbol applied to data values.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// Skolem symbol.
    pub symbol: String,
    /// Fully evaluated arguments (data-graph values).
    pub args: Vec<Value>,
}

/// A link target on a dynamic page.
#[derive(Clone, Debug, PartialEq)]
pub enum DynTarget {
    /// Another dynamic page.
    Page(PageKey),
    /// A data value (possibly a data-graph node).
    Data(Value),
}

/// One materialized page: its outgoing labeled edges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PageView {
    /// `(label, target)` pairs in derivation order, deduplicated.
    pub edges: Vec<(String, DynTarget)>,
}

/// Work counters across the browsing session (a consistent-enough
/// snapshot of the engine's atomic counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Pages served (including cache hits).
    pub clicks: usize,
    /// Guard evaluations run.
    pub queries_run: usize,
    /// Bindings rows produced by those evaluations.
    pub rows_produced: usize,
    /// Pages served straight from the cache.
    pub cache_hits: usize,
    /// Pages evicted by delta invalidation.
    pub evictions: usize,
    /// Guard evaluations that executed a cached prepared plan.
    pub plan_cache_hits: usize,
    /// Guard evaluations that had to analyze/plan/compile first.
    pub plan_cache_misses: usize,
    /// Cached pages updated in place by differential maintenance.
    pub diff_pages_updated: usize,
    /// Dirty cached pages that fell back to eviction (no stored rows,
    /// count underflow, or a variable-layout mismatch).
    pub diff_fallbacks: usize,
    /// Bindings rows inserted by differential maintenance.
    pub diff_rows_added: usize,
    /// Bindings rows retracted by differential maintenance.
    pub diff_rows_retracted: usize,
}

/// The result of applying a data delta to a live engine.
#[derive(Clone, Debug, Default)]
pub struct InvalidationOutcome {
    /// What the delta dirtied (exact pages + wholesale symbols).
    pub dirty: DirtySet,
    /// How many cached page views were actually evicted.
    pub evicted: usize,
    /// How many cached page views were maintained in place instead of
    /// being evicted.
    pub updated: usize,
}

/// Number of cache shards; a small power of two is plenty — contention
/// is per-key and guard evaluation dominates hold times.
const SHARDS: usize = 16;

/// The compiled-query cache: per guard, the analyzed/planned/NFA-compiled
/// [`PreparedWhere`] valid for one database epoch. A prepared plan bakes
/// in interned label ids and cardinality statistics, so entries from
/// before a delta are unusable — the cache self-invalidates by comparing
/// its epoch stamp against the engine's.
struct PreparedCache {
    /// The epoch every entry in `map` was prepared under.
    epoch: u64,
    /// Keyed by schema-edge index; root collects use
    /// `schema.edges.len() + collect index`.
    map: HashMap<usize, Arc<PreparedWhere>>,
}

/// The signed bindings rows of one schema edge's guard, seeded for one
/// page: the delta-ready state that lets [`DynamicSite::apply_delta`]
/// maintain the page without re-running the guard.
#[derive(Clone, Debug)]
struct EdgeRows {
    /// Index into `schema.edges`.
    ei: usize,
    /// The prepared plan's variable layout (seed names first, then the
    /// guard's variables in textual order); diffs must match it exactly.
    vars: Vec<String>,
    /// Count-annotated bindings rows (count = derivation multiplicity),
    /// in first-derivation order.
    rows: Vec<SignedRow>,
}

/// Everything cached for one page: the served view plus, when the engine
/// runs differentially, the guard rows it was projected from.
#[derive(Clone, Debug)]
struct Cached {
    view: PageView,
    /// One entry per contributing out-edge (in schema order); `None` when
    /// differential maintenance is off or the mode is [`Mode::Naive`].
    diff: Option<Vec<EdgeRows>>,
}

/// The double-buffered twin of the served snapshot. After each swap the
/// slot holds the *previous* live `Arc`, behind the live database by the
/// deltas in `lag`; the next [`DynamicSite::apply_delta`] reclaims it
/// (once the last outside reader drops it), catches it up in O(|lag|),
/// and applies the new delta — avoiding the O(site) clone-and-reindex on
/// every delta.
#[derive(Default)]
struct Standby {
    db: Option<Arc<Database>>,
    lag: Vec<GraphDelta>,
}

/// A dynamically evaluated site over a live database, shareable across
/// threads (`visit` takes `&self`).
pub struct DynamicSite {
    db: RwLock<Arc<Database>>,
    schema: SiteSchema,
    mode: Mode,
    parallelism: Parallelism,
    shards: Vec<RwLock<HashMap<PageKey, Cached>>>,
    /// Bumped by every applied delta; fences stale cache inserts.
    epoch: AtomicU64,
    /// Compiled guard plans for the current epoch.
    prepared: RwLock<PreparedCache>,
    /// Whether the compiled-query cache is consulted (ablation knob).
    query_cache: bool,
    /// Whether deltas maintain dirty cached pages differentially
    /// (ablation knob; off = evict and re-evaluate from scratch).
    differential: bool,
    /// Standby twin database; the Mutex also serializes delta writers.
    standby: Mutex<Standby>,
    /// Delta ops absorbed since the optimizer statistics were last
    /// recomputed from scratch; bounds stats carry-forward drift.
    stats_drift: AtomicUsize,
    clicks: AtomicUsize,
    queries_run: AtomicUsize,
    rows_produced: AtomicUsize,
    cache_hits: AtomicUsize,
    evictions: AtomicUsize,
    plan_cache_hits: AtomicUsize,
    plan_cache_misses: AtomicUsize,
    diff_pages_updated: AtomicUsize,
    diff_fallbacks: AtomicUsize,
    diff_rows_added: AtomicUsize,
    diff_rows_retracted: AtomicUsize,
}

impl DynamicSite {
    /// Builds the engine for `program` over `db`.
    pub fn new(db: Arc<Database>, program: &Program, mode: Mode) -> Self {
        DynamicSite {
            db: RwLock::new(db),
            schema: SiteSchema::extract(program),
            mode,
            parallelism: Parallelism::default(),
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            epoch: AtomicU64::new(0),
            prepared: RwLock::new(PreparedCache {
                epoch: 0,
                map: HashMap::new(),
            }),
            query_cache: true,
            differential: true,
            standby: Mutex::new(Standby::default()),
            stats_drift: AtomicUsize::new(0),
            clicks: AtomicUsize::new(0),
            queries_run: AtomicUsize::new(0),
            rows_produced: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            plan_cache_hits: AtomicUsize::new(0),
            plan_cache_misses: AtomicUsize::new(0),
            diff_pages_updated: AtomicUsize::new(0),
            diff_fallbacks: AtomicUsize::new(0),
            diff_rows_added: AtomicUsize::new(0),
            diff_rows_retracted: AtomicUsize::new(0),
        }
    }

    /// Enables or disables differential maintenance of cached pages
    /// across deltas. On by default; disabling restores the evict-and-
    /// recompute delta path (a full snapshot rebuild plus guard re-runs
    /// on the next visit) — the from-scratch baseline for the diff
    /// experiment. Served content is identical either way.
    pub fn with_differential(mut self, enabled: bool) -> Self {
        self.differential = enabled;
        self
    }

    /// Enables or disables the compiled-query cache. On by default;
    /// disabling re-plans and recompiles every guard per request — the
    /// ablation baseline for the click-time cache experiment. Served
    /// content is identical either way.
    pub fn with_query_cache(mut self, enabled: bool) -> Self {
        self.query_cache = enabled;
        self
    }

    /// Sets the worker budget for guard evaluation. Served page views are
    /// identical at any setting (see `strudel_struql::par`); only latency
    /// on guard-heavy pages changes.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The configured worker budget.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    fn evaluator<'db>(&self, db: &'db Database) -> Evaluator<'db> {
        Evaluator::with_options(
            db,
            EvalOptions {
                parallelism: self.parallelism,
                ..Default::default()
            },
        )
    }

    /// Work counters so far.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            clicks: self.clicks.load(Ordering::Relaxed),
            queries_run: self.queries_run.load(Ordering::Relaxed),
            rows_produced: self.rows_produced.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            diff_pages_updated: self.diff_pages_updated.load(Ordering::Relaxed),
            diff_fallbacks: self.diff_fallbacks.load(Ordering::Relaxed),
            diff_rows_added: self.diff_rows_added.load(Ordering::Relaxed),
            diff_rows_retracted: self.diff_rows_retracted.load(Ordering::Relaxed),
        }
    }

    /// Number of pages currently materialized in the cache.
    pub fn cached_pages(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// The current database snapshot.
    pub fn database(&self) -> Arc<Database> {
        self.db.read().unwrap().clone()
    }

    /// The current `(epoch, database)` pair, read consistently: the epoch
    /// is bumped under the database write lock, so holding the read lock
    /// across both reads guarantees the epoch stamps exactly this
    /// snapshot. Prepared plans and cache inserts are keyed by it, and
    /// the serving layer's epoch-published snapshot promotion fences
    /// against it — a snapshot built at one epoch is never published
    /// under another.
    pub fn snapshot(&self) -> (u64, Arc<Database>) {
        let db = self.db.read().unwrap();
        (self.epoch.load(Ordering::Acquire), db.clone())
    }

    /// The prepared plan for guard `key` (a schema-edge index, or
    /// `edges.len() + i` for root collect `i`) at `epoch`, compiling and
    /// caching on miss. An entry prepared under an older epoch is never
    /// returned; an insert races a concurrent delta safely because the
    /// cache's epoch stamp only moves forward.
    fn prepared_for(
        &self,
        epoch: u64,
        ev: &Evaluator<'_>,
        key: usize,
        conds: &[Condition],
        seed_names: &[String],
    ) -> Arc<PreparedWhere> {
        if self.query_cache {
            let c = self.prepared.read().unwrap();
            if c.epoch == epoch {
                if let Some(p) = c.map.get(&key) {
                    self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
                    strudel_trace::count("engine.plan.cache.hits", 1);
                    return Arc::clone(p);
                }
            }
        }
        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
        strudel_trace::count("engine.plan.cache.misses", 1);
        let p = Arc::new(ev.prepare_where(conds, seed_names));
        if self.query_cache {
            let mut c = self.prepared.write().unwrap();
            if c.epoch < epoch {
                // First prepare after a delta: flush the stale entries.
                c.map.clear();
                c.epoch = epoch;
            }
            if c.epoch == epoch {
                c.map.entry(key).or_insert_with(|| Arc::clone(&p));
            }
            // c.epoch > epoch: a delta landed mid-compute; drop the insert.
        }
        p
    }

    /// The extracted site schema.
    pub fn schema(&self) -> &SiteSchema {
        &self.schema
    }

    /// The evaluation mode this engine was built with.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The delta epoch: how many deltas have been applied.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn shard_of(&self, key: &PageKey) -> &RwLock<HashMap<PageKey, Cached>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Inserts a computed page unless a delta landed since `epoch`.
    fn insert_if_current(&self, epoch: u64, key: PageKey, cached: Cached) {
        let mut shard = self.shard_of(&key).write().unwrap();
        if self.epoch.load(Ordering::Acquire) == epoch {
            shard.insert(key, cached);
        }
    }

    /// The site's entry points: every page collected by the query, by
    /// collection name.
    pub fn roots(&self, collection: &str) -> StruqlResult<Vec<PageKey>> {
        let (epoch, db) = self.snapshot();
        let ev = self.evaluator(&db);
        let mut out = Vec::new();
        for (ci, (collect, guard)) in self.schema.collects.iter().enumerate() {
            if collect.collection != collection {
                continue;
            }
            let Term::Skolem { symbol, args } = &collect.arg else {
                continue;
            };
            let prepared =
                self.prepared_for(epoch, &ev, self.schema.edges.len() + ci, guard, &[]);
            let rows = ev.eval_where_prepared(guard, &prepared, &[])?;
            self.queries_run.fetch_add(1, Ordering::Relaxed);
            self.rows_produced.fetch_add(rows.len(), Ordering::Relaxed);
            for row in &rows {
                let key = PageKey {
                    symbol: symbol.clone(),
                    args: eval_args(args, prepared.vars(), row)?,
                };
                if !out.contains(&key) {
                    out.push(key);
                }
            }
        }
        Ok(out)
    }

    /// Serves one click: the out-edges of `page`, computed on demand.
    /// Safe to call concurrently from any number of threads.
    pub fn visit(&self, page: &PageKey) -> StruqlResult<PageView> {
        let _span = strudel_trace::span("engine.visit");
        self.clicks.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = self.shard_of(page).read().unwrap().get(page) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            strudel_trace::count("engine.cache.hits", 1);
            return Ok(c.view.clone());
        }
        strudel_trace::count("engine.cache.misses", 1);
        // Epoch and snapshot are read consistently; if a delta lands
        // between compute and insert, the epoch check drops the insert.
        let (epoch, db) = self.snapshot();
        let cached = self.compute(&db, epoch, page)?;
        let view = cached.view.clone();
        self.insert_if_current(epoch, page.clone(), cached);
        if self.mode == Mode::ContextLookahead {
            // One level of look-ahead: materialize children now, while
            // their guards' context is warm.
            let children: Vec<PageKey> = view
                .edges
                .iter()
                .filter_map(|(_, t)| match t {
                    DynTarget::Page(k) => Some(k.clone()),
                    _ => None,
                })
                .collect();
            for child in children {
                if self.shard_of(&child).read().unwrap().contains_key(&child) {
                    continue;
                }
                let v = self.compute(&db, epoch, &child)?;
                self.insert_if_current(epoch, child, v);
            }
        }
        Ok(view)
    }

    /// Applies a data-graph delta: brings the standby twin database up to
    /// date in O(|Δ|), computes the dirty set, *maintains* dirty cached
    /// pages by propagating the delta through their stored guard rows
    /// (see the module docs), swaps the snapshot in, and evicts only the
    /// dirty pages that could not be maintained. Concurrent `visit`s keep
    /// serving throughout (from the old snapshot until the swap, from the
    /// new one after).
    pub fn apply_delta(&self, delta: &GraphDelta) -> StruqlResult<InvalidationOutcome> {
        let _span = strudel_trace::span("engine.apply_delta");
        if !self.differential {
            return self.apply_delta_from_scratch(delta);
        }
        // The standby lock serializes delta writers end to end, so the
        // maintenance pass below races only with readers.
        let mut standby = self.standby.lock().unwrap();
        let old_db = self.database();
        // Atomicity: the delta is validated and applied against the twin,
        // and any error returns before the swap below — the twin (equal to
        // the live snapshot at that point) is parked for the next delta. A
        // rejected delta therefore leaves the served snapshot, the epoch,
        // and the page cache untouched.
        let mut twin = self.catch_up_standby(&mut standby, &old_db);
        if let Err(e) = twin.apply_delta(delta) {
            standby.db = Some(Arc::new(twin));
            standby.lag.clear();
            return Err(StruqlError::Eval {
                message: format!("delta does not apply: {e}"),
            });
        }
        self.carry_stats_forward(&old_db, &twin, delta.len());
        let dirty = invalidate::dirty_pages(&self.schema, &old_db, &twin, delta)?;

        // Maintain dirty cached pages against the pre/post databases
        // before the swap; fallbacks are evicted below.
        let touch = DeltaTouch::of(delta);
        let mut maintained: Vec<(PageKey, Cached)> = Vec::new();
        let mut fallbacks = 0usize;
        if !dirty.pages.is_empty() || !dirty.symbols.is_empty() {
            let old_ev = self.evaluator(&old_db);
            let new_ev = self.evaluator(&twin);
            // Enumerate dirty *cached* entries without scanning the whole
            // cache when the dirty set is exact — maintenance cost must
            // track |Δ|, not site size.
            let candidates: Vec<(PageKey, Cached)> = if dirty.symbols.is_empty() {
                dirty
                    .pages
                    .iter()
                    .filter_map(|k| {
                        let shard = self.shard_of(k).read().unwrap();
                        shard.get(k).map(|c| (k.clone(), c.clone()))
                    })
                    .collect()
            } else {
                self.shards
                    .iter()
                    .flat_map(|s| {
                        s.read()
                            .unwrap()
                            .iter()
                            .filter(|(k, _)| dirty.contains(k))
                            .map(|(k, c)| (k.clone(), c.clone()))
                            .collect::<Vec<_>>()
                    })
                    .collect()
            };
            for (key, cached) in candidates {
                match self.maintain_cached(&key, &cached, &old_ev, &new_ev, &touch) {
                    Some(updated) => maintained.push((key, updated)),
                    None => fallbacks += 1,
                }
            }
        }

        // Install the new snapshot; the epoch bump (under the same write
        // lock) invalidates in-flight computations against the old one.
        // The previous live Arc becomes the next standby, one delta behind.
        let new_db = Arc::new(twin);
        let new_epoch = {
            let mut db = self.db.write().unwrap();
            let e = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
            let prev = std::mem::replace(&mut *db, new_db);
            standby.db = Some(prev);
            standby.lag.clear();
            standby.lag.push(delta.clone());
            e
        };
        self.flush_prepared(new_epoch);

        let maintained_keys: HashSet<&PageKey> =
            maintained.iter().map(|(k, _)| k).collect();
        let mut evicted = 0;
        if dirty.symbols.is_empty() {
            for key in &dirty.pages {
                if maintained_keys.contains(key) {
                    continue;
                }
                if self.shard_of(key).write().unwrap().remove(key).is_some() {
                    evicted += 1;
                }
            }
        } else {
            for shard in &self.shards {
                let mut map = shard.write().unwrap();
                let before = map.len();
                map.retain(|key, _| !dirty.contains(key) || maintained_keys.contains(key));
                evicted += before - map.len();
            }
        }
        let updated = maintained.len();
        for (key, cached) in maintained {
            // Overwrites any racing fresh insert; both were computed
            // against the new snapshot, and the maintained rows are the
            // ones future deltas must diff against.
            self.shard_of(&key).write().unwrap().insert(key, cached);
        }
        drop(standby);

        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        self.diff_pages_updated.fetch_add(updated, Ordering::Relaxed);
        self.diff_fallbacks.fetch_add(fallbacks, Ordering::Relaxed);
        strudel_trace::count("engine.diff.pages.updated", updated as u64);
        strudel_trace::count("engine.diff.fallbacks", fallbacks as u64);
        strudel_trace::event_with("engine.invalidate", || {
            format!(
                "pages={} symbols={} evicted={evicted} updated={updated}",
                dirty.pages.len(),
                dirty.symbols.len()
            )
        });
        Ok(InvalidationOutcome {
            dirty,
            evicted,
            updated,
        })
    }

    /// The pre-differential delta path (and the `with_differential(false)`
    /// baseline): clone the graph, re-index it from scratch, swap, and
    /// evict every dirty page.
    fn apply_delta_from_scratch(&self, delta: &GraphDelta) -> StruqlResult<InvalidationOutcome> {
        let old_db = self.database();
        let mut graph = old_db.graph().clone();
        delta.apply(&mut graph).map_err(|e| StruqlError::Eval {
            message: format!("delta does not apply: {e}"),
        })?;
        let new_db = Arc::new(Database::from_graph(graph, old_db.level()));
        let dirty = invalidate::dirty_pages(&self.schema, &old_db, &new_db, delta)?;

        let new_epoch = {
            let mut db = self.db.write().unwrap();
            let e = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
            *db = new_db;
            e
        };
        self.flush_prepared(new_epoch);

        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard.write().unwrap();
            let before = map.len();
            map.retain(|key, _| !dirty.contains(key));
            evicted += before - map.len();
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        strudel_trace::event_with("engine.invalidate", || {
            format!(
                "pages={} symbols={} evicted={evicted}",
                dirty.pages.len(),
                dirty.symbols.len()
            )
        });
        Ok(InvalidationOutcome {
            dirty,
            evicted,
            updated: 0,
        })
    }

    /// Produces an owned database equal to the live snapshot, preferring
    /// the parked standby twin (caught up through its lag deltas in
    /// O(|lag|)) and falling back to a full clone-and-reindex when there
    /// is no twin yet or an outside reader still holds it.
    fn catch_up_standby(&self, standby: &mut Standby, live: &Arc<Database>) -> Database {
        if let Some(arc) = standby.db.take() {
            if let Ok(mut db) = Arc::try_unwrap(arc) {
                let mut ok = true;
                for lagged in &standby.lag {
                    // Lag deltas were validated against exactly this
                    // lineage when they were applied to the live side, so
                    // failure here is a logic error; recover by rebuilding.
                    if db.apply_delta(lagged).is_err() {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    standby.lag.clear();
                    return db;
                }
            }
        }
        standby.lag.clear();
        strudel_trace::count("engine.diff.standby_rebuilds", 1);
        Database::from_graph(live.graph().clone(), live.level())
    }

    /// Seeds the twin's optimizer statistics from the live snapshot's
    /// cached ones, unless the accumulated drift since the last fresh scan
    /// exceeds the cap (then the next `stats()` call rescans). Statistics
    /// only steer join ordering, never results.
    fn carry_stats_forward(&self, old_db: &Database, twin: &Database, delta_ops: usize) {
        let drift =
            self.stats_drift.fetch_add(delta_ops, Ordering::Relaxed) + delta_ops;
        let cap = 256.max(twin.graph().edge_count() / 8);
        if drift <= cap {
            if let Some(stats) = old_db.cached_stats() {
                twin.seed_stats(stats);
            }
        } else {
            self.stats_drift.store(0, Ordering::Relaxed);
        }
    }

    /// Maintains one dirty cached page differentially: diffs every stored
    /// guard the delta touches, applies the signed rows with count-based
    /// retraction, and re-projects the view. `None` means the page must
    /// fall back to eviction (no stored rows, a diff the stored counts
    /// cannot absorb, a variable-layout mismatch, or a projection error).
    fn maintain_cached(
        &self,
        page: &PageKey,
        cached: &Cached,
        old_ev: &Evaluator<'_>,
        new_ev: &Evaluator<'_>,
        touch: &DeltaTouch,
    ) -> Option<Cached> {
        let edges = cached.diff.as_ref()?;
        let mut next: Vec<EdgeRows> = Vec::with_capacity(edges.len());
        let mut added = 0usize;
        let mut retracted = 0usize;
        for er in edges {
            let edge = &self.schema.edges[er.ei];
            if !touch.touches(&edge.guard) {
                next.push(er.clone());
                continue;
            }
            let seeds = self.seed_for_edge(edge, page)?;
            let out = diff_where(old_ev, new_ev, &edge.guard, &seeds, touch).ok()?;
            if out.vars != er.vars {
                return None;
            }
            let mut rows = er.rows.clone();
            if !apply_diff(&mut rows, &out.rows) {
                return None;
            }
            for (_, n) in &out.rows {
                if *n > 0 {
                    added += *n as usize;
                } else {
                    retracted += (-*n) as usize;
                }
            }
            next.push(EdgeRows {
                ei: er.ei,
                vars: er.vars.clone(),
                rows,
            });
        }
        let mut view = PageView::default();
        for er in &next {
            let edge = &self.schema.edges[er.ei];
            for (row, _) in &er.rows {
                match self.project_row(edge, &er.vars, row, page) {
                    Ok(Some(entry)) => {
                        if !view.edges.contains(&entry) {
                            view.edges.push(entry);
                        }
                    }
                    Ok(None) => {}
                    Err(_) => return None,
                }
            }
        }
        self.diff_rows_added.fetch_add(added, Ordering::Relaxed);
        self.diff_rows_retracted.fetch_add(retracted, Ordering::Relaxed);
        strudel_trace::count("engine.diff.rows.added", added as u64);
        strudel_trace::count("engine.diff.rows.retracted", retracted as u64);
        Some(Cached {
            view,
            diff: Some(next),
        })
    }

    /// Replaces the live database wholesale — the recovery path when a
    /// replica rebuilds a shard from the committed store rather than by
    /// incremental deltas. The standby lineage is discarded (its lag no
    /// longer describes the new snapshot), every cached page is dropped,
    /// and the epoch bump invalidates in-flight computations. Locks are
    /// taken poison-tolerantly: this runs precisely when a panic may
    /// have poisoned them, and the guarded state (plain maps/Arcs) stays
    /// structurally sound across a panic.
    pub fn reset_to(&self, db: Arc<Database>) {
        let mut standby = self.standby.lock().unwrap_or_else(|e| e.into_inner());
        let new_epoch = {
            let mut live = self.db.write().unwrap_or_else(|e| e.into_inner());
            let e = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
            *live = db;
            e
        };
        standby.db = None;
        standby.lag.clear();
        drop(standby);
        self.flush_prepared_poisoned_ok(new_epoch);
        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard.write().unwrap_or_else(|e| e.into_inner());
            evicted += map.len();
            map.clear();
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    fn flush_prepared_poisoned_ok(&self, new_epoch: u64) {
        let mut c = self.prepared.write().unwrap_or_else(|e| e.into_inner());
        if c.epoch < new_epoch {
            c.map.clear();
            c.epoch = new_epoch;
        }
    }

    /// Drops every cached page (e.g. after out-of-band database surgery).
    pub fn clear_cache(&self) {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard.write().unwrap();
            evicted += map.len();
            map.clear();
        }
        let new_epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.flush_prepared(new_epoch);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Drops prepared plans older than `new_epoch`. Entries stamped with
    /// `new_epoch` itself are kept: a concurrent visit that already saw
    /// the new snapshot may have repopulated the cache first, and those
    /// plans are valid.
    fn flush_prepared(&self, new_epoch: u64) {
        let mut c = self.prepared.write().unwrap();
        if c.epoch < new_epoch {
            c.map.clear();
            c.epoch = new_epoch;
        }
    }

    /// Builds the guard seeds for one schema edge when serving `page`.
    /// `None` means the edge provably cannot reach this page (a constant
    /// source argument disagrees, or one variable would need two values)
    /// and must be skipped; nested-Skolem arguments also return `None`
    /// since they cannot be reconstructed into seeds. In [`Mode::Naive`]
    /// the seed list is always empty: the guard runs unseeded and rows
    /// are filtered to the page afterwards.
    fn seed_for_edge(
        &self,
        edge: &SchemaEdge,
        page: &PageKey,
    ) -> Option<Vec<(String, Value)>> {
        let mut seeds: Vec<(String, Value)> = Vec::new();
        if self.mode == Mode::Naive {
            return Some(seeds);
        }
        for (term, value) in edge.src_args.iter().zip(&page.args) {
            match term {
                Term::Var(v) => {
                    if let Some((_, prev)) = seeds.iter().find(|(name, _)| name == v) {
                        if prev != value {
                            return None;
                        }
                    } else {
                        seeds.push((v.clone(), value.clone()));
                    }
                }
                Term::Const(c) => {
                    if c != value {
                        return None;
                    }
                }
                Term::Skolem { .. } => return None, // nested pages: unsupported seed
            }
        }
        Some(seeds)
    }

    /// Projects one bindings row of `edge`'s guard into a page link.
    /// `Ok(None)` means the row belongs to a different page of the same
    /// symbol (Naive mode evaluates unseeded and filters here).
    fn project_row(
        &self,
        edge: &SchemaEdge,
        vars: &[String],
        row: &[Option<Value>],
        page: &PageKey,
    ) -> StruqlResult<Option<(String, DynTarget)>> {
        let src_vals = eval_args(&edge.src_args, vars, row)?;
        if src_vals != page.args {
            return Ok(None);
        }
        let label = match &edge.label {
            LabelTerm::Const(s) => s.clone(),
            LabelTerm::Var(v) => {
                let idx = vars.iter().position(|x| x == v).ok_or_else(|| {
                    StruqlError::Eval {
                        message: format!("arc variable '{v}' missing"),
                    }
                })?;
                match &row[idx] {
                    Some(Value::Str(s)) => s.to_string(),
                    other => {
                        return Err(StruqlError::Eval {
                            message: format!(
                                "arc variable '{v}' bound to {other:?}, not a label"
                            ),
                        })
                    }
                }
            }
        };
        let target = match &self.schema.nodes[edge.to] {
            SchemaNode::Skolem(sym) => DynTarget::Page(PageKey {
                symbol: sym.clone(),
                args: eval_args(&edge.dst_args, vars, row)?,
            }),
            SchemaNode::Ns => {
                let vals = eval_args(&edge.dst_args, vars, row)?;
                DynTarget::Data(vals.into_iter().next().expect("one NS target"))
            }
        };
        Ok(Some((label, target)))
    }

    /// Evaluates the incremental queries for one page against `db` (the
    /// snapshot stamped by `epoch`), executing cached prepared plans. In
    /// differential Context modes the guard rows are kept (count-annotated)
    /// beside the view so later deltas can maintain the page in place.
    fn compute(&self, db: &Database, epoch: u64, page: &PageKey) -> StruqlResult<Cached> {
        let _span = strudel_trace::span("engine.compute");
        let Some(node) = self.schema.node_index(&page.symbol) else {
            return Err(StruqlError::Eval {
                message: format!("unknown page symbol '{}'", page.symbol),
            });
        };
        // Naive rows span every page of the symbol — too broad to keep.
        let keep_rows = self.differential && self.mode != Mode::Naive;
        let ev = self.evaluator(db);
        let mut view = PageView::default();
        let mut diff: Vec<EdgeRows> = Vec::new();
        for (ei, edge) in self.schema.edges.iter().enumerate() {
            if edge.from != node {
                continue;
            }
            // Seed the guard with the page's Skolem arguments (Context
            // modes); Naive evaluates unseeded and filters afterwards.
            // Seed *names* depend only on the edge (they come from the
            // symbol's argument terms), so the prepared plan is valid for
            // every page of this symbol.
            let Some(seeds) = self.seed_for_edge(edge, page) else {
                continue;
            };
            strudel_trace::count("engine.guard.evals", 1);
            let seed_names: Vec<String> = seeds.iter().map(|(n, _)| n.clone()).collect();
            let prepared = self.prepared_for(epoch, &ev, ei, &edge.guard, &seed_names);
            let rows = ev.eval_where_prepared(&edge.guard, &prepared, &seeds)?;
            let vars = prepared.vars();
            self.queries_run.fetch_add(1, Ordering::Relaxed);
            self.rows_produced.fetch_add(rows.len(), Ordering::Relaxed);
            for row in &rows {
                if let Some(entry) = self.project_row(edge, vars, row, page)? {
                    if !view.edges.contains(&entry) {
                        view.edges.push(entry);
                    }
                }
            }
            if keep_rows {
                diff.push(EdgeRows {
                    ei,
                    vars: vars.to_vec(),
                    rows: count_rows(&rows),
                });
            }
        }
        Ok(Cached {
            view,
            diff: keep_rows.then_some(diff),
        })
    }

    /// Explains how `page` would be served: one [`ExplainReport`] per
    /// schema out-edge whose guard would run, with the planner's
    /// cardinality estimates next to the measured per-step row counts and
    /// timings. Skipped edges (see [`Self::seed_for_edge`]) are omitted.
    /// Nothing is cached and no engine counters move.
    pub fn explain(&self, page: &PageKey) -> StruqlResult<Vec<EdgeExplain>> {
        let Some(node) = self.schema.node_index(&page.symbol) else {
            return Err(StruqlError::Eval {
                message: format!("unknown page symbol '{}'", page.symbol),
            });
        };
        let db = self.database();
        let ev = self.evaluator(&db);
        let mut out = Vec::new();
        for edge in self.schema.out_edges(node) {
            let Some(seeds) = self.seed_for_edge(edge, page) else {
                continue;
            };
            let (_, _, report) = ev.explain_where_bindings(&edge.guard, &seeds)?;
            let label = match &edge.label {
                LabelTerm::Const(s) => s.clone(),
                LabelTerm::Var(v) => format!("?{v}"),
            };
            let target = match &self.schema.nodes[edge.to] {
                SchemaNode::Skolem(sym) => sym.clone(),
                SchemaNode::Ns => "NS".to_string(),
            };
            out.push(EdgeExplain {
                label,
                target,
                report,
            });
        }
        Ok(out)
    }
}

/// One schema edge's guard, explained: which link it derives and how the
/// planner's estimates compared to the measured evaluation.
#[derive(Clone, Debug)]
pub struct EdgeExplain {
    /// The link label this edge derives (`?v` for an arc variable).
    pub label: String,
    /// Target page symbol, or `"NS"` for a data target.
    pub target: String,
    /// Per-step estimates vs actuals for the edge's guard.
    pub report: ExplainReport,
}

/// Coalesces plain bindings rows into count-annotated ones (count =
/// derivation multiplicity), preserving first-occurrence order — the form
/// [`apply_diff`] maintains across deltas.
fn count_rows(rows: &[Vec<Option<Value>>]) -> Vec<SignedRow> {
    let mut index: HashMap<&[Option<Value>], usize> = HashMap::new();
    let mut out: Vec<SignedRow> = Vec::new();
    for row in rows {
        match index.get(row.as_slice()) {
            Some(&i) => out[i].1 += 1,
            None => {
                index.insert(row.as_slice(), out.len());
                out.push((row.clone(), 1));
            }
        }
    }
    out
}

/// Evaluates Skolem argument terms against a bindings row.
pub(crate) fn eval_args(
    args: &[Term],
    vars: &[String],
    row: &[Option<Value>],
) -> StruqlResult<Vec<Value>> {
    args.iter()
        .map(|t| match t {
            Term::Var(v) => {
                let idx = vars.iter().position(|x| x == v).ok_or_else(|| {
                    StruqlError::Eval {
                        message: format!("argument variable '{v}' missing"),
                    }
                })?;
                row[idx].clone().ok_or_else(|| StruqlError::Eval {
                    message: format!("argument variable '{v}' unbound"),
                })
            }
            Term::Const(c) => Ok(c.clone()),
            Term::Skolem { .. } => Err(StruqlError::Eval {
                message: "nested Skolem arguments are not supported dynamically".into(),
            }),
        })
        .collect()
}

/// A list of guards usable to estimate per-click work; exposed for tests.
pub fn edge_guards(schema: &SiteSchema) -> Vec<&[Condition]> {
    schema.edges.iter().map(|e| e.guard.as_slice()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::ddl;
    use strudel_repo::IndexLevel;
    use strudel_struql::parse;

    const QUERY: &str = r#"
        create RootPage()
        where Publications(x)
        create PaperPage(x)
        link RootPage() -> "paper" -> PaperPage(x),
             PaperPage(x) -> "home" -> RootPage()
        collect Roots(RootPage())
        { where x -> "title" -> t
          link PaperPage(x) -> "title" -> t }
        { where x -> "year" -> y
          create YearPage(y)
          link PaperPage(x) -> "year" -> YearPage(y),
               YearPage(y) -> "label" -> y }
    "#;

    fn db() -> Arc<Database> {
        let g = ddl::parse(
            r#"
            object p1 in Publications { title : "Alpha"; year : 1997; }
            object p2 in Publications { title : "Beta"; year : 1998; }
            object p3 in Publications { title : "Gamma"; year : 1997; }
        "#,
        )
        .unwrap();
        Arc::new(Database::from_graph(g, IndexLevel::Full))
    }

    fn root() -> PageKey {
        PageKey {
            symbol: "RootPage".into(),
            args: vec![],
        }
    }

    #[test]
    fn roots_enumerate_collected_pages() {
        let site = DynamicSite::new(db(), &parse(QUERY).unwrap(), Mode::Context);
        let roots = site.roots("Roots").unwrap();
        assert_eq!(roots, vec![root()]);
    }

    #[test]
    fn visiting_root_lists_papers() {
        let site = DynamicSite::new(db(), &parse(QUERY).unwrap(), Mode::Context);
        let view = site.visit(&root()).unwrap();
        let papers: Vec<_> = view
            .edges
            .iter()
            .filter(|(l, _)| l == "paper")
            .collect();
        assert_eq!(papers.len(), 3);
    }

    #[test]
    fn visiting_a_paper_shows_its_attributes_only() {
        let db = db();
        let p1 = Value::Node(db.graph().node_by_name("p1").unwrap());
        let site = DynamicSite::new(db, &parse(QUERY).unwrap(), Mode::Context);
        let view = site
            .visit(&PageKey {
                symbol: "PaperPage".into(),
                args: vec![p1],
            })
            .unwrap();
        let titles: Vec<_> = view
            .edges
            .iter()
            .filter_map(|(l, t)| (l == "title").then_some(t))
            .collect();
        assert_eq!(
            titles,
            vec![&DynTarget::Data(Value::string("Alpha"))],
            "only p1's title, not every paper's"
        );
        assert!(view
            .edges
            .iter()
            .any(|(l, t)| l == "year"
                && matches!(t, DynTarget::Page(k) if k.symbol == "YearPage"
                    && k.args == vec![Value::Int(1997)])));
    }

    #[test]
    fn all_modes_agree_on_content() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let p2 = Value::Node(db.graph().node_by_name("p2").unwrap());
        let key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![p2],
        };
        let mut views = Vec::new();
        for mode in [Mode::Naive, Mode::Context, Mode::ContextLookahead] {
            let site = DynamicSite::new(db.clone(), &program, mode);
            let mut view = site.visit(&key).unwrap();
            view.edges.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            views.push(view);
        }
        assert_eq!(views[0], views[1]);
        assert_eq!(views[1], views[2]);
    }

    #[test]
    fn context_mode_produces_fewer_rows_than_naive() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let p1 = Value::Node(db.graph().node_by_name("p1").unwrap());
        let key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![p1],
        };
        let naive = DynamicSite::new(db.clone(), &program, Mode::Naive);
        naive.visit(&key).unwrap();
        let ctx = DynamicSite::new(db, &program, Mode::Context);
        ctx.visit(&key).unwrap();
        assert!(
            ctx.metrics().rows_produced < naive.metrics().rows_produced,
            "context {} vs naive {}",
            ctx.metrics().rows_produced,
            naive.metrics().rows_produced
        );
    }

    #[test]
    fn lookahead_turns_follows_into_cache_hits() {
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db(), &program, Mode::ContextLookahead);
        let view = site.visit(&root()).unwrap();
        assert!(site.cached_pages() >= 4, "root + 3 prefetched papers");
        // Follow the first paper link: a cache hit.
        let DynTarget::Page(first) = &view.edges[0].1 else {
            panic!()
        };
        let before = site.metrics().cache_hits;
        site.visit(first).unwrap();
        assert_eq!(site.metrics().cache_hits, before + 1);
    }

    #[test]
    fn repeat_visits_hit_cache_in_every_mode() {
        let db = db();
        let program = parse(QUERY).unwrap();
        for mode in [Mode::Naive, Mode::Context] {
            let site = DynamicSite::new(db.clone(), &program, mode);
            site.visit(&root()).unwrap();
            let q1 = site.metrics().queries_run;
            site.visit(&root()).unwrap();
            assert_eq!(site.metrics().queries_run, q1, "no new queries");
            assert_eq!(site.metrics().cache_hits, 1);
        }
    }

    #[test]
    fn dynamic_matches_static_materialization() {
        // The pages the dynamic engine serves must agree with the
        // statically evaluated site graph.
        let db = db();
        let program = parse(QUERY).unwrap();
        let static_site = Evaluator::new(&db).eval(&program).unwrap();

        let site = DynamicSite::new(db.clone(), &program, Mode::Context);
        let root_view = site.visit(&root()).unwrap();
        let static_root = static_site.skolem_node("RootPage", &[]).unwrap();
        assert_eq!(
            root_view
                .edges
                .iter()
                .filter(|(l, _)| l == "paper")
                .count(),
            static_site.graph.attr_str(static_root, "paper").count()
        );
    }

    #[test]
    fn int_keyed_pages_resolve() {
        let site = DynamicSite::new(db(), &parse(QUERY).unwrap(), Mode::Context);
        let view = site
            .visit(&PageKey {
                symbol: "YearPage".into(),
                args: vec![Value::Int(1997)],
            })
            .unwrap();
        // 1997 has its label edge; papers link *to* year pages, not from.
        assert!(view
            .edges
            .iter()
            .any(|(l, t)| l == "label" && *t == DynTarget::Data(Value::Int(1997))));
    }

    #[test]
    fn nonexistent_page_instance_is_empty_not_error() {
        // YearPage(1890) was never derivable: its incremental queries
        // return no rows, so the page is simply empty.
        let site = DynamicSite::new(db(), &parse(QUERY).unwrap(), Mode::Context);
        let view = site
            .visit(&PageKey {
                symbol: "YearPage".into(),
                args: vec![Value::Int(1890)],
            })
            .unwrap();
        assert!(view.edges.is_empty());
    }

    #[test]
    fn unknown_symbol_is_an_error() {
        let site = DynamicSite::new(db(), &parse(QUERY).unwrap(), Mode::Context);
        assert!(site
            .visit(&PageKey {
                symbol: "Ghost".into(),
                args: vec![]
            })
            .is_err());
    }

    #[test]
    fn concurrent_visits_share_one_engine() {
        // ≥ 4 threads hammer one engine through `&self`; every thread
        // sees identical content and the cache converges to one copy.
        let program = parse(QUERY).unwrap();
        let site = Arc::new(DynamicSite::new(db(), &program, Mode::Context));
        let mut expected = site.visit(&root()).unwrap();
        expected
            .edges
            .sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));

        let mut handles = Vec::new();
        for _ in 0..8 {
            let site = Arc::clone(&site);
            let expected = expected.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let mut v = site.visit(&root()).unwrap();
                    v.edges.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
                    assert_eq!(v, expected);
                    // Also fan out to every paper page.
                    for (_, t) in &expected.edges {
                        if let DynTarget::Page(k) = t {
                            site.visit(k).unwrap();
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let m = site.metrics();
        assert!(m.cache_hits > 0, "warm visits hit the cache: {m:?}");
    }

    #[test]
    fn apply_delta_maintains_dirty_pages_in_place() {
        let db = db();
        let p1 = db.graph().node_by_name("p1").unwrap();
        let p2 = Value::Node(db.graph().node_by_name("p2").unwrap());
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db, &program, Mode::Context);

        let p1_key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(p1)],
        };
        let p2_key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![p2],
        };
        let before = site.visit(&p1_key).unwrap();
        site.visit(&p2_key).unwrap();
        assert_eq!(site.cached_pages(), 2);

        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "title", Value::string("Alpha"));
        delta.add_edge(p1, "title", Value::string("Alpha (rev)"));
        let outcome = site.apply_delta(&delta).unwrap();
        // p1 is dirty but its cached rows absorb the diff: updated in
        // place, nothing evicted.
        assert!(outcome.dirty.contains(&p1_key), "{:?}", outcome.dirty);
        assert_eq!(outcome.updated, 1, "{:?}", outcome.dirty);
        assert_eq!(outcome.evicted, 0, "{:?}", outcome.dirty);
        assert_eq!(site.cached_pages(), 2, "both pages stay cached");

        // Revisit p1: served from cache with the maintained content.
        let hits_before = site.metrics().cache_hits;
        let queries_before = site.metrics().queries_run;
        let after = site.visit(&p1_key).unwrap();
        assert_eq!(site.metrics().cache_hits, hits_before + 1, "p1 was a hit");
        assert_eq!(site.metrics().queries_run, queries_before, "no guard re-ran");
        assert_ne!(before, after);
        assert!(after.edges.iter().any(|(l, t)| l == "title"
            && *t == DynTarget::Data(Value::string("Alpha (rev)"))));
        assert!(
            !after.edges.iter().any(|(_, t)| *t == DynTarget::Data(Value::string("Alpha"))),
            "old title retracted: {after:?}"
        );

        // Revisit p2: untouched and still served from cache.
        site.visit(&p2_key).unwrap();
        assert_eq!(site.metrics().cache_hits, hits_before + 2);
        let m = site.metrics();
        assert_eq!(m.diff_pages_updated, 1);
        assert_eq!(m.diff_fallbacks, 0);
        assert!(m.diff_rows_added >= 1 && m.diff_rows_retracted >= 1, "{m:?}");
    }

    #[test]
    fn differential_off_evicts_dirty_pages() {
        let db = db();
        let p1 = db.graph().node_by_name("p1").unwrap();
        let p2 = Value::Node(db.graph().node_by_name("p2").unwrap());
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db, &program, Mode::Context).with_differential(false);

        let p1_key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(p1)],
        };
        let p2_key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![p2],
        };
        let before = site.visit(&p1_key).unwrap();
        site.visit(&p2_key).unwrap();
        assert_eq!(site.cached_pages(), 2);

        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "title", Value::string("Alpha"));
        delta.add_edge(p1, "title", Value::string("Alpha (rev)"));
        let outcome = site.apply_delta(&delta).unwrap();
        assert_eq!(outcome.evicted, 1, "{:?}", outcome.dirty);
        assert_eq!(outcome.updated, 0);
        assert_eq!(site.cached_pages(), 1, "p2 stays cached");

        // Revisit p1: recomputed against the new snapshot.
        let hits_before = site.metrics().cache_hits;
        let after = site.visit(&p1_key).unwrap();
        assert_eq!(site.metrics().cache_hits, hits_before, "p1 was a miss");
        assert_ne!(before, after);
        assert!(after.edges.iter().any(|(l, t)| l == "title"
            && *t == DynTarget::Data(Value::string("Alpha (rev)"))));

        // Revisit p2: still served from cache.
        site.visit(&p2_key).unwrap();
        assert_eq!(site.metrics().cache_hits, hits_before + 1);
    }

    #[test]
    fn maintained_views_match_fresh_computation() {
        // The maintained cache and a cold engine over the post-delta
        // database must serve identical content for every page.
        let db = db();
        let p1 = db.graph().node_by_name("p1").unwrap();
        let p3 = db.graph().node_by_name("p3").unwrap();
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db, &program, Mode::Context);

        let keys: Vec<PageKey> = [p1, p3]
            .iter()
            .map(|n| PageKey {
                symbol: "PaperPage".into(),
                args: vec![Value::Node(*n)],
            })
            .chain([root()])
            .collect();
        for k in &keys {
            site.visit(k).unwrap();
        }

        // Mixed delta: retitle p1, move p3 to a new year, add a paper.
        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "title", Value::string("Alpha"));
        delta.add_edge(p1, "title", Value::string("Alpha v2"));
        delta.remove_edge(p3, "year", Value::Int(1997));
        delta.add_edge(p3, "year", Value::Int(1999));
        delta.add_node(Some("p4"));
        let oid = strudel_graph::Oid::from_index(site.database().graph().node_count());
        delta.add_edge(oid, "title", Value::string("Delta"));
        delta.collect("Publications", Value::Node(oid));
        let outcome = site.apply_delta(&delta).unwrap();
        assert!(outcome.updated >= 1, "{outcome:?}");

        let fresh = DynamicSite::new(site.database(), &program, Mode::Context);
        let sort = |mut v: PageView| {
            v.edges.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            v
        };
        for k in &keys {
            assert_eq!(
                sort(site.visit(k).unwrap()),
                sort(fresh.visit(k).unwrap()),
                "page {k:?}"
            );
        }
    }

    #[test]
    fn irrelevant_delta_neither_updates_nor_evicts() {
        let db = db();
        let p1 = db.graph().node_by_name("p1").unwrap();
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db, &program, Mode::Context);
        site.visit(&root()).unwrap();
        let cached = site.cached_pages();

        // "abstract" appears in no guard: nothing is dirty, nothing moves.
        let mut delta = GraphDelta::new();
        delta.add_edge(p1, "abstract", Value::string("..."));
        let outcome = site.apply_delta(&delta).unwrap();
        assert!(outcome.dirty.pages.is_empty(), "{:?}", outcome.dirty);
        assert!(outcome.dirty.symbols.is_empty(), "{:?}", outcome.dirty);
        assert_eq!(outcome.evicted, 0);
        assert_eq!(outcome.updated, 0);
        assert_eq!(site.cached_pages(), cached);

        let hits = site.metrics().cache_hits;
        site.visit(&root()).unwrap();
        assert_eq!(site.metrics().cache_hits, hits + 1, "still a cache hit");
    }

    #[test]
    fn naive_mode_falls_back_to_eviction() {
        // Naive pages carry no delta-ready rows; dirty ones are evicted
        // and counted as fallbacks.
        let db = db();
        let p1 = db.graph().node_by_name("p1").unwrap();
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db, &program, Mode::Naive);
        let p1_key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(p1)],
        };
        site.visit(&p1_key).unwrap();

        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "title", Value::string("Alpha"));
        delta.add_edge(p1, "title", Value::string("Alpha (rev)"));
        let outcome = site.apply_delta(&delta).unwrap();
        assert_eq!(outcome.updated, 0);
        assert_eq!(outcome.evicted, 1);
        assert_eq!(site.metrics().diff_fallbacks, 1);

        let after = site.visit(&p1_key).unwrap();
        assert!(after.edges.iter().any(|(l, t)| l == "title"
            && *t == DynTarget::Data(Value::string("Alpha (rev)"))));
    }

    #[test]
    fn standby_twin_absorbs_consecutive_deltas() {
        // Several deltas in a row exercise the standby catch-up path
        // (swap, reclaim, replay lag, re-apply) and must keep serving
        // exactly what a cold engine computes.
        let db = db();
        let p1 = db.graph().node_by_name("p1").unwrap();
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db, &program, Mode::Context);
        let p1_key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(p1)],
        };
        site.visit(&p1_key).unwrap();

        for (i, title) in ["Alpha", "rev 1", "rev 2", "rev 3"].windows(2).enumerate() {
            let mut delta = GraphDelta::new();
            delta.remove_edge(p1, "title", Value::string(title[0]));
            delta.add_edge(p1, "title", Value::string(title[1]));
            let outcome = site.apply_delta(&delta).unwrap();
            assert_eq!(outcome.updated, 1, "delta #{i}");
            assert_eq!(site.epoch(), (i + 1) as u64);
        }
        let view = site.visit(&p1_key).unwrap();
        assert!(view.edges.iter().any(|(l, t)| l == "title"
            && *t == DynTarget::Data(Value::string("rev 3"))));
        let fresh = DynamicSite::new(site.database(), &program, Mode::Context);
        assert_eq!(view, fresh.visit(&p1_key).unwrap());
    }

    #[test]
    fn rejected_delta_parks_the_twin_and_changes_nothing() {
        let db = db();
        let p1 = db.graph().node_by_name("p1").unwrap();
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db, &program, Mode::Context);
        site.visit(&root()).unwrap();
        let epoch = site.epoch();
        let cached = site.cached_pages();

        // Removing an edge that does not exist must be rejected atomically.
        let mut bad = GraphDelta::new();
        bad.remove_edge(p1, "title", Value::string("No Such Title"));
        let err = site.apply_delta(&bad).unwrap_err();
        assert!(err.to_string().contains("delta does not apply"), "{err}");
        assert_eq!(site.epoch(), epoch);
        assert_eq!(site.cached_pages(), cached);

        // And a good delta afterwards still applies cleanly.
        let mut good = GraphDelta::new();
        good.remove_edge(p1, "title", Value::string("Alpha"));
        good.add_edge(p1, "title", Value::string("Alpha (rev)"));
        site.apply_delta(&good).unwrap();
        assert_eq!(site.epoch(), epoch + 1);
    }

    #[test]
    fn delta_visible_to_subsequent_visits() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db.clone(), &program, Mode::Context);
        let n_before = site.visit(&root()).unwrap().edges.len();

        // Add a brand-new publication.
        let mut delta = GraphDelta::new();
        delta.add_node(Some("p4"));
        let oid = strudel_graph::Oid::from_index(db.graph().node_count());
        delta.add_edge(oid, "title", Value::string("Delta"));
        delta.collect("Publications", Value::Node(oid));
        let outcome = site.apply_delta(&delta).unwrap();
        assert!(outcome.dirty.contains(&root()));

        let view = site.visit(&root()).unwrap();
        assert_eq!(
            view.edges.iter().filter(|(l, _)| l == "paper").count(),
            4,
            "new paper listed"
        );
        assert!(view.edges.len() > n_before);
        assert_eq!(site.epoch(), 1);
    }

    #[test]
    fn parallel_engine_serves_identical_views() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let seq = DynamicSite::new(db.clone(), &program, Mode::Context);
        let par = DynamicSite::new(db, &program, Mode::Context)
            .with_parallelism(Parallelism::Threads(4));
        assert_eq!(par.parallelism(), Parallelism::Threads(4));
        let roots = seq.roots("Roots").unwrap();
        assert_eq!(roots, par.roots("Roots").unwrap());
        for key in &roots {
            assert_eq!(seq.visit(key).unwrap(), par.visit(key).unwrap());
        }
    }

    #[test]
    fn plan_cache_hits_on_warm_guards() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db, &program, Mode::Context);
        let p = |n: &str| PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(site.database().graph().node_by_name(n).unwrap())],
        };
        site.visit(&p("p1")).unwrap();
        let m1 = site.metrics();
        assert!(m1.plan_cache_misses > 0, "cold guards compile: {m1:?}");
        assert_eq!(m1.plan_cache_hits, 0);
        // A *different* page of the same symbol runs the same guards:
        // every plan is served from the cache.
        site.visit(&p("p2")).unwrap();
        let m2 = site.metrics();
        assert_eq!(m2.plan_cache_misses, m1.plan_cache_misses, "no recompiles");
        assert!(m2.plan_cache_hits > 0, "{m2:?}");
    }

    #[test]
    fn query_cache_off_recompiles_but_serves_identical_views() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let cached = DynamicSite::new(db.clone(), &program, Mode::Context);
        let uncached =
            DynamicSite::new(db, &program, Mode::Context).with_query_cache(false);
        let key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(
                cached.database().graph().node_by_name("p3").unwrap(),
            )],
        };
        assert_eq!(cached.visit(&key).unwrap(), uncached.visit(&key).unwrap());
        uncached.clear_cache();
        uncached.visit(&key).unwrap();
        let m = uncached.metrics();
        assert_eq!(m.plan_cache_hits, 0, "cache disabled: {m:?}");
        assert!(m.plan_cache_misses > 0);
    }

    #[test]
    fn delta_flushes_prepared_plans() {
        let db = db();
        let p1 = db.graph().node_by_name("p1").unwrap();
        let p2 = db.graph().node_by_name("p2").unwrap();
        let program = parse(QUERY).unwrap();
        let site = DynamicSite::new(db, &program, Mode::Context);
        let p1_key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(p1)],
        };
        site.visit(&p1_key).unwrap();
        let misses_cold = site.metrics().plan_cache_misses;

        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "title", Value::string("Alpha"));
        delta.add_edge(p1, "title", Value::string("Alpha II"));
        site.apply_delta(&delta).unwrap();

        // Post-delta plans are prepared against the new snapshot's stats
        // and interner — the old entries must not be served. p1's page was
        // maintained in place (no guard re-runs), so visit a *different*
        // page of the same symbol: its guards were compiled pre-delta and
        // must recompile now.
        site.visit(&PageKey {
            symbol: "PaperPage".into(),
            args: vec![Value::Node(p2)],
        })
        .unwrap();
        assert!(
            site.metrics().plan_cache_misses > misses_cold,
            "stale plans flushed: {:?}",
            site.metrics()
        );
    }

    #[test]
    fn clear_cache_counts_evictions() {
        let site = DynamicSite::new(db(), &parse(QUERY).unwrap(), Mode::ContextLookahead);
        site.visit(&root()).unwrap();
        let cached = site.cached_pages();
        assert!(cached >= 4);
        site.clear_cache();
        assert_eq!(site.cached_pages(), 0);
        assert_eq!(site.metrics().evictions, cached);
    }
}
