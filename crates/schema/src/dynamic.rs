//! Dynamic ("click-time") site evaluation.
//!
//! The prototype of the paper materializes whole site graphs up front,
//! which "is infeasible for sites that are updated frequently" (§2.5).
//! Site schemas are the fix: they "specify, for each node in the site
//! graph, the queries that must be evaluated to compute the node's
//! contents, i.e. its outgoing edges". [`DynamicSite`] is that engine: it
//! materializes one page's out-edges when the page is first visited.
//!
//! Three evaluation modes reproduce the paper's optimization story:
//!
//! * [`Mode::Naive`] — each click evaluates every relevant edge guard from
//!   scratch and filters the result to the visited page. "Naive evaluation
//!   of these queries is costly, because they often recompute information
//!   derived for already browsed pages."
//! * [`Mode::Context`] — the visited page's Skolem arguments seed the
//!   guard evaluation ("we can optimize its incremental query using
//!   contexts derived from the paths that reach the node"), so the planner
//!   starts from bound variables and touches only the relevant slice of
//!   the data.
//! * [`Mode::ContextLookahead`] — additionally "precompute look-ahead
//!   results for queries of reachable nodes": visiting a page prefetches
//!   its children into the cache, so following a link is usually a cache
//!   hit.

use crate::{SchemaNode, SiteSchema};
use std::collections::HashMap;
use strudel_graph::Value;
use strudel_repo::Database;
use strudel_struql::{
    Condition, Evaluator, LabelTerm, Program, StruqlError, StruqlResult, Term,
};

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Full guard evaluation per click, filtered to the visited page.
    Naive,
    /// Seed guard evaluation with the page's Skolem arguments.
    Context,
    /// Context seeding plus one level of child prefetch.
    ContextLookahead,
}

/// Identifies a dynamic page: a Skolem symbol applied to data values.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// Skolem symbol.
    pub symbol: String,
    /// Fully evaluated arguments (data-graph values).
    pub args: Vec<Value>,
}

/// A link target on a dynamic page.
#[derive(Clone, Debug, PartialEq)]
pub enum DynTarget {
    /// Another dynamic page.
    Page(PageKey),
    /// A data value (possibly a data-graph node).
    Data(Value),
}

/// One materialized page: its outgoing labeled edges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PageView {
    /// `(label, target)` pairs in derivation order, deduplicated.
    pub edges: Vec<(String, DynTarget)>,
}

/// Work counters across the browsing session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Pages served (including cache hits).
    pub clicks: usize,
    /// Guard evaluations run.
    pub queries_run: usize,
    /// Bindings rows produced by those evaluations.
    pub rows_produced: usize,
    /// Pages served straight from the cache.
    pub cache_hits: usize,
}

/// A dynamically evaluated site over a live database.
pub struct DynamicSite<'db> {
    db: &'db Database,
    schema: SiteSchema,
    mode: Mode,
    cache: HashMap<PageKey, PageView>,
    metrics: Metrics,
}

impl<'db> DynamicSite<'db> {
    /// Builds the engine for `program` over `db`.
    pub fn new(db: &'db Database, program: &Program, mode: Mode) -> Self {
        DynamicSite {
            db,
            schema: SiteSchema::extract(program),
            mode,
            cache: HashMap::new(),
            metrics: Metrics::default(),
        }
    }

    /// Work counters so far.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Number of pages currently materialized in the cache.
    pub fn cached_pages(&self) -> usize {
        self.cache.len()
    }

    /// The site's entry points: every page collected by the query, by
    /// collection name.
    pub fn roots(&mut self, collection: &str) -> StruqlResult<Vec<PageKey>> {
        let ev = Evaluator::new(self.db);
        let mut out = Vec::new();
        for (collect, guard) in &self.schema.collects {
            if collect.collection != collection {
                continue;
            }
            let Term::Skolem { symbol, args } = &collect.arg else {
                continue;
            };
            let (vars, rows) = ev.eval_where_bindings(guard, &[])?;
            // Disjoint-field update: `schema` is borrowed by the loop.
            self.metrics.queries_run += 1;
            self.metrics.rows_produced += rows.len();
            for row in &rows {
                let key = PageKey {
                    symbol: symbol.clone(),
                    args: eval_args(args, &vars, row)?,
                };
                if !out.contains(&key) {
                    out.push(key);
                }
            }
        }
        Ok(out)
    }

    /// Serves one click: the out-edges of `page`, computed on demand.
    pub fn visit(&mut self, page: &PageKey) -> StruqlResult<PageView> {
        self.metrics.clicks += 1;
        if let Some(v) = self.cache.get(page) {
            self.metrics.cache_hits += 1;
            return Ok(v.clone());
        }
        let view = self.compute(page)?;
        self.cache.insert(page.clone(), view.clone());
        if self.mode == Mode::ContextLookahead {
            // One level of look-ahead: materialize children now, while
            // their guards' context is warm.
            let children: Vec<PageKey> = view
                .edges
                .iter()
                .filter_map(|(_, t)| match t {
                    DynTarget::Page(k) if !self.cache.contains_key(k) => Some(k.clone()),
                    _ => None,
                })
                .collect();
            for child in children {
                if !self.cache.contains_key(&child) {
                    let v = self.compute(&child)?;
                    self.cache.insert(child, v);
                }
            }
        }
        Ok(view)
    }

    /// Evaluates the incremental queries for one page.
    fn compute(&mut self, page: &PageKey) -> StruqlResult<PageView> {
        let Some(node) = self.schema.node_index(&page.symbol) else {
            return Err(StruqlError::Eval {
                message: format!("unknown page symbol '{}'", page.symbol),
            });
        };
        let ev = Evaluator::new(self.db);
        let mut view = PageView::default();
        let edges: Vec<_> = self.schema.out_edges(node).cloned().collect();
        for edge in edges {
            // Seed the guard with the page's Skolem arguments (Context
            // modes); Naive evaluates unseeded and filters afterwards.
            let mut seeds: Vec<(String, Value)> = Vec::new();
            let mut consts_ok = true;
            if self.mode != Mode::Naive {
                for (term, value) in edge.src_args.iter().zip(&page.args) {
                    match term {
                        Term::Var(v) => {
                            if let Some((_, prev)) =
                                seeds.iter().find(|(name, _)| name == v)
                            {
                                if prev != value {
                                    consts_ok = false;
                                }
                            } else {
                                seeds.push((v.clone(), value.clone()));
                            }
                        }
                        Term::Const(c) => {
                            if c != value {
                                consts_ok = false;
                            }
                        }
                        Term::Skolem { .. } => consts_ok = false, // nested pages: unsupported seed
                    }
                }
            }
            if !consts_ok {
                continue;
            }
            let (vars, rows) = ev.eval_where_bindings(&edge.guard, &seeds)?;
            self.metrics_queries(&rows);
            for row in &rows {
                // In Naive mode (or with nested-Skolem args) filter rows to
                // the visited page.
                let src_vals = eval_args(&edge.src_args, &vars, row)?;
                if src_vals != page.args {
                    continue;
                }
                let label = match &edge.label {
                    LabelTerm::Const(s) => s.clone(),
                    LabelTerm::Var(v) => {
                        let idx = vars.iter().position(|x| x == v).ok_or_else(|| {
                            StruqlError::Eval {
                                message: format!("arc variable '{v}' missing"),
                            }
                        })?;
                        match &row[idx] {
                            Some(Value::Str(s)) => s.to_string(),
                            other => {
                                return Err(StruqlError::Eval {
                                    message: format!(
                                        "arc variable '{v}' bound to {other:?}, not a label"
                                    ),
                                })
                            }
                        }
                    }
                };
                let target = match &self.schema.nodes[edge.to] {
                    SchemaNode::Skolem(sym) => DynTarget::Page(PageKey {
                        symbol: sym.clone(),
                        args: eval_args(&edge.dst_args, &vars, row)?,
                    }),
                    SchemaNode::Ns => {
                        let vals = eval_args(&edge.dst_args, &vars, row)?;
                        DynTarget::Data(vals.into_iter().next().expect("one NS target"))
                    }
                };
                let entry = (label, target);
                if !view.edges.contains(&entry) {
                    view.edges.push(entry);
                }
            }
        }
        Ok(view)
    }

    fn metrics_queries(&mut self, rows: &[Vec<Option<Value>>]) {
        self.metrics.queries_run += 1;
        self.metrics.rows_produced += rows.len();
    }
}

/// Evaluates Skolem argument terms against a bindings row.
fn eval_args(
    args: &[Term],
    vars: &[String],
    row: &[Option<Value>],
) -> StruqlResult<Vec<Value>> {
    args.iter()
        .map(|t| match t {
            Term::Var(v) => {
                let idx = vars.iter().position(|x| x == v).ok_or_else(|| {
                    StruqlError::Eval {
                        message: format!("argument variable '{v}' missing"),
                    }
                })?;
                row[idx].clone().ok_or_else(|| StruqlError::Eval {
                    message: format!("argument variable '{v}' unbound"),
                })
            }
            Term::Const(c) => Ok(c.clone()),
            Term::Skolem { .. } => Err(StruqlError::Eval {
                message: "nested Skolem arguments are not supported dynamically".into(),
            }),
        })
        .collect()
}

/// A list of guards usable to estimate per-click work; exposed for tests.
pub fn edge_guards(schema: &SiteSchema) -> Vec<&[Condition]> {
    schema.edges.iter().map(|e| e.guard.as_slice()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::ddl;
    use strudel_repo::IndexLevel;
    use strudel_struql::parse;

    const QUERY: &str = r#"
        create RootPage()
        where Publications(x)
        create PaperPage(x)
        link RootPage() -> "paper" -> PaperPage(x),
             PaperPage(x) -> "home" -> RootPage()
        collect Roots(RootPage())
        { where x -> "title" -> t
          link PaperPage(x) -> "title" -> t }
        { where x -> "year" -> y
          create YearPage(y)
          link PaperPage(x) -> "year" -> YearPage(y),
               YearPage(y) -> "label" -> y }
    "#;

    fn db() -> Database {
        let g = ddl::parse(
            r#"
            object p1 in Publications { title : "Alpha"; year : 1997; }
            object p2 in Publications { title : "Beta"; year : 1998; }
            object p3 in Publications { title : "Gamma"; year : 1997; }
        "#,
        )
        .unwrap();
        Database::from_graph(g, IndexLevel::Full)
    }

    fn root() -> PageKey {
        PageKey {
            symbol: "RootPage".into(),
            args: vec![],
        }
    }

    #[test]
    fn roots_enumerate_collected_pages() {
        let db = db();
        let mut site = DynamicSite::new(&db, &parse(QUERY).unwrap(), Mode::Context);
        let roots = site.roots("Roots").unwrap();
        assert_eq!(roots, vec![root()]);
    }

    #[test]
    fn visiting_root_lists_papers() {
        let db = db();
        let mut site = DynamicSite::new(&db, &parse(QUERY).unwrap(), Mode::Context);
        let view = site.visit(&root()).unwrap();
        let papers: Vec<_> = view
            .edges
            .iter()
            .filter(|(l, _)| l == "paper")
            .collect();
        assert_eq!(papers.len(), 3);
    }

    #[test]
    fn visiting_a_paper_shows_its_attributes_only() {
        let db = db();
        let p1 = Value::Node(db.graph().node_by_name("p1").unwrap());
        let mut site = DynamicSite::new(&db, &parse(QUERY).unwrap(), Mode::Context);
        let view = site
            .visit(&PageKey {
                symbol: "PaperPage".into(),
                args: vec![p1],
            })
            .unwrap();
        let titles: Vec<_> = view
            .edges
            .iter()
            .filter_map(|(l, t)| (l == "title").then_some(t))
            .collect();
        assert_eq!(
            titles,
            vec![&DynTarget::Data(Value::string("Alpha"))],
            "only p1's title, not every paper's"
        );
        assert!(view
            .edges
            .iter()
            .any(|(l, t)| l == "year"
                && matches!(t, DynTarget::Page(k) if k.symbol == "YearPage"
                    && k.args == vec![Value::Int(1997)])));
    }

    #[test]
    fn all_modes_agree_on_content() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let p2 = Value::Node(db.graph().node_by_name("p2").unwrap());
        let key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![p2],
        };
        let mut views = Vec::new();
        for mode in [Mode::Naive, Mode::Context, Mode::ContextLookahead] {
            let mut site = DynamicSite::new(&db, &program, mode);
            let mut view = site.visit(&key).unwrap();
            view.edges.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            views.push(view);
        }
        assert_eq!(views[0], views[1]);
        assert_eq!(views[1], views[2]);
    }

    #[test]
    fn context_mode_produces_fewer_rows_than_naive() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let p1 = Value::Node(db.graph().node_by_name("p1").unwrap());
        let key = PageKey {
            symbol: "PaperPage".into(),
            args: vec![p1],
        };
        let mut naive = DynamicSite::new(&db, &program, Mode::Naive);
        naive.visit(&key).unwrap();
        let mut ctx = DynamicSite::new(&db, &program, Mode::Context);
        ctx.visit(&key).unwrap();
        assert!(
            ctx.metrics().rows_produced < naive.metrics().rows_produced,
            "context {} vs naive {}",
            ctx.metrics().rows_produced,
            naive.metrics().rows_produced
        );
    }

    #[test]
    fn lookahead_turns_follows_into_cache_hits() {
        let db = db();
        let program = parse(QUERY).unwrap();
        let mut site = DynamicSite::new(&db, &program, Mode::ContextLookahead);
        let view = site.visit(&root()).unwrap();
        assert!(site.cached_pages() >= 4, "root + 3 prefetched papers");
        // Follow the first paper link: a cache hit.
        let DynTarget::Page(first) = &view.edges[0].1 else {
            panic!()
        };
        let before = site.metrics().cache_hits;
        site.visit(first).unwrap();
        assert_eq!(site.metrics().cache_hits, before + 1);
    }

    #[test]
    fn repeat_visits_hit_cache_in_every_mode() {
        let db = db();
        let program = parse(QUERY).unwrap();
        for mode in [Mode::Naive, Mode::Context] {
            let mut site = DynamicSite::new(&db, &program, mode);
            site.visit(&root()).unwrap();
            let q1 = site.metrics().queries_run;
            site.visit(&root()).unwrap();
            assert_eq!(site.metrics().queries_run, q1, "no new queries");
            assert_eq!(site.metrics().cache_hits, 1);
        }
    }

    #[test]
    fn dynamic_matches_static_materialization() {
        // The pages the dynamic engine serves must agree with the
        // statically evaluated site graph.
        let db = db();
        let program = parse(QUERY).unwrap();
        let static_site = Evaluator::new(&db).eval(&program).unwrap();

        let mut site = DynamicSite::new(&db, &program, Mode::Context);
        let root_view = site.visit(&root()).unwrap();
        let static_root = static_site.skolem_node("RootPage", &[]).unwrap();
        assert_eq!(
            root_view
                .edges
                .iter()
                .filter(|(l, _)| l == "paper")
                .count(),
            static_site.graph.attr_str(static_root, "paper").count()
        );
    }

    #[test]
    fn int_keyed_pages_resolve() {
        let db = db();
        let mut site = DynamicSite::new(&db, &parse(QUERY).unwrap(), Mode::Context);
        let view = site
            .visit(&PageKey {
                symbol: "YearPage".into(),
                args: vec![Value::Int(1997)],
            })
            .unwrap();
        // 1997 has its label edge; papers link *to* year pages, not from.
        assert!(view
            .edges
            .iter()
            .any(|(l, t)| l == "label" && *t == DynTarget::Data(Value::Int(1997))));
    }

    #[test]
    fn nonexistent_page_instance_is_empty_not_error() {
        // YearPage(1890) was never derivable: its incremental queries
        // return no rows, so the page is simply empty.
        let db = db();
        let mut site = DynamicSite::new(&db, &parse(QUERY).unwrap(), Mode::Context);
        let view = site
            .visit(&PageKey {
                symbol: "YearPage".into(),
                args: vec![Value::Int(1890)],
            })
            .unwrap();
        assert!(view.edges.is_empty());
    }

    #[test]
    fn unknown_symbol_is_an_error() {
        let db = db();
        let mut site = DynamicSite::new(&db, &parse(QUERY).unwrap(), Mode::Context);
        assert!(site
            .visit(&PageKey {
                symbol: "Ghost".into(),
                args: vec![]
            })
            .is_err());
    }
}
