//! Zero-dependency observability for the Strudel pipeline.
//!
//! The paper closes by asking where the query processor spends its time
//! (§7); this crate is the measuring instrument. It provides three
//! primitives behind one [`Tracer`], all usable through `&self` from any
//! thread:
//!
//! - **hierarchical span timers** — [`Tracer::span`] returns a guard that
//!   records elapsed wall time on drop, aggregated per span *path*
//!   (`serve.request/engine.visit/struql.where`), so nesting is visible
//!   without storing every sample;
//! - **monotonic counters** — [`Tracer::add`] bumps a named counter
//!   (index probes, cache hits, guard evaluations);
//! - **a ring-buffered event log** — [`Tracer::event_with`] appends a
//!   lazily formatted line (per-request traces, plan-step actuals) into a
//!   bounded ring; old events fall off the front and are counted, never
//!   reallocated without bound.
//!
//! Tracing is **off by default** and near-free while off: every public
//! entry point checks one relaxed atomic and returns. Nothing here
//! allocates, locks, or reads the clock until tracing is enabled, so hot
//! paths (the evaluator's inner join loops, the server's request loop)
//! can call into this unconditionally.
//!
//! Most callers use the process-global tracer via the free functions
//! ([`span`], [`count`], [`event_with`], [`snapshot`]): instrumented
//! crates must not thread a handle through every signature, exactly like
//! a logging facade. Setting the `STRUDEL_TRACE` environment variable to
//! anything but `0` or the empty string enables the global tracer at
//! first use, which lets CI rerun whole suites with tracing on without
//! code changes. Local [`Tracer`] instances remain available for tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::Instant;

/// How many events the ring buffer retains before evicting the oldest.
pub const EVENT_CAPACITY: usize = 4096;

/// Separator between nested span names in an aggregated span path.
pub const SPAN_SEP: char = '/';

/// Aggregate statistics for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// How many spans completed under this path.
    pub count: u64,
    /// Total wall time across those spans, in microseconds.
    pub total_us: u64,
    /// The single slowest span, in microseconds.
    pub max_us: u64,
}

impl SpanAgg {
    fn record(&mut self, us: u64) {
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Mean span duration in microseconds (0 when no spans completed).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }
}

/// One entry of the ring-buffered event log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (never reused, survives eviction).
    pub seq: u64,
    /// The static event name, e.g. `serve.request`.
    pub name: &'static str,
    /// Formatted detail line supplied by the instrumentation site.
    pub detail: String,
}

#[derive(Default)]
struct EventRing {
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<Event>,
}

/// A point-in-time copy of everything a tracer has recorded.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Whether the tracer was enabled when the snapshot was taken.
    pub enabled: bool,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Span aggregates, sorted by path.
    pub spans: Vec<(String, SpanAgg)>,
    /// The retained tail of the event log, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring since the last reset.
    pub dropped_events: u64,
}

impl TraceSnapshot {
    /// Renders the snapshot as a plain-text report (the `/debug/trace`
    /// page and `strudel explain` both build on this).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# strudel-trace snapshot (enabled={})\n",
            self.enabled
        ));
        out.push_str("\n## spans (path count total_us mean_us max_us)\n");
        if self.spans.is_empty() {
            out.push_str("(none recorded)\n");
        }
        for (path, agg) in &self.spans {
            out.push_str(&format!(
                "{path} {} {} {} {}\n",
                agg.count,
                agg.total_us,
                agg.mean_us(),
                agg.max_us
            ));
        }
        out.push_str("\n## counters\n");
        if self.counters.is_empty() {
            out.push_str("(none recorded)\n");
        }
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} {v}\n"));
        }
        out.push_str(&format!(
            "\n## events (last {}, {} dropped)\n",
            self.events.len(),
            self.dropped_events
        ));
        for e in &self.events {
            out.push_str(&format!("[{}] {}: {}\n", e.seq, e.name, e.detail));
        }
        out
    }
}

thread_local! {
    // The current span path of this thread, segments joined by SPAN_SEP.
    // Guards truncate back to their saved length on drop, so panics that
    // unwind through a span still restore the parent path.
    static SPAN_PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Times one span; records into the owning tracer when dropped.
///
/// Returned by [`Tracer::span`]. A guard from a disabled tracer is inert:
/// no clock read, no allocation, nothing recorded on drop.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard<'a> {
    active: Option<ActiveSpan<'a>>,
}

struct ActiveSpan<'a> {
    tracer: &'a Tracer,
    start: Instant,
    restore_len: usize,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let us = active.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let path = SPAN_PATH.with(|p| {
            let mut p = p.borrow_mut();
            let path = p.clone();
            p.truncate(active.restore_len);
            path
        });
        let mut spans = active.tracer.spans.lock().unwrap();
        spans.entry(path).or_default().record(us);
    }
}

/// A concurrent tracer: counters, span aggregates, and an event ring.
///
/// All methods take `&self`; the tracer is safe to share across threads.
/// Every recording method first checks [`Tracer::is_enabled`] with one
/// relaxed atomic load and returns immediately when tracing is off.
#[derive(Default)]
pub struct Tracer {
    enabled: AtomicBool,
    next_trace_id: AtomicU64,
    counters: RwLock<HashMap<&'static str, AtomicU64>>,
    spans: Mutex<HashMap<String, SpanAgg>>,
    events: Mutex<EventRing>,
}

impl Tracer {
    /// A new tracer, disabled.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Already-recorded data is kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Allocates the next request/trace id (monotonic, starts at 1).
    /// Ids are handed out even while disabled, so enabling tracing
    /// mid-flight never reuses an id.
    pub fn next_trace_id(&self) -> u64 {
        self.next_trace_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Bumps the named counter by `n`. No-op while disabled.
    pub fn add(&self, name: &'static str, n: u64) {
        if !self.is_enabled() {
            return;
        }
        {
            let counters = self.counters.read().unwrap();
            if let Some(c) = counters.get(name) {
                c.fetch_add(n, Ordering::Relaxed);
                return;
            }
        }
        self.counters
            .write()
            .unwrap()
            .entry(name)
            .or_default()
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Opens a span named `name` nested under this thread's current span
    /// path. The returned guard records elapsed time on drop. Inert (and
    /// free of clock reads) while disabled.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard { active: None };
        }
        let restore_len = SPAN_PATH.with(|p| {
            let mut p = p.borrow_mut();
            let restore_len = p.len();
            if !p.is_empty() {
                p.push(SPAN_SEP);
            }
            p.push_str(name);
            restore_len
        });
        SpanGuard {
            active: Some(ActiveSpan {
                tracer: self,
                start: Instant::now(),
                restore_len,
            }),
        }
    }

    /// Appends an event whose detail is built only when tracing is
    /// enabled — hot paths pay nothing for the formatting while off.
    pub fn event_with<F: FnOnce() -> String>(&self, name: &'static str, detail: F) {
        if !self.is_enabled() {
            return;
        }
        let detail = detail();
        let mut ring = self.events.lock().unwrap();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == EVENT_CAPACITY {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(Event { seq, name, detail });
    }

    /// Copies out everything recorded so far, deterministically ordered.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
            .collect();
        counters.sort();
        let mut spans: Vec<(String, SpanAgg)> = self
            .spans
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        spans.sort_by(|a, b| a.0.cmp(&b.0));
        let ring = self.events.lock().unwrap();
        TraceSnapshot {
            enabled: self.is_enabled(),
            counters,
            spans,
            events: ring.buf.iter().cloned().collect(),
            dropped_events: ring.dropped,
        }
    }

    /// Clears counters, span aggregates, and the event log. The enabled
    /// flag and the trace-id sequence are left alone.
    pub fn reset(&self) {
        self.counters.write().unwrap().clear();
        self.spans.lock().unwrap().clear();
        let mut ring = self.events.lock().unwrap();
        ring.buf.clear();
        ring.dropped = 0;
    }
}

static GLOBAL: OnceLock<Tracer> = OnceLock::new();

/// The process-global tracer. On first use, tracing is switched on when
/// the `STRUDEL_TRACE` environment variable is set to anything other
/// than `0` or the empty string.
pub fn global() -> &'static Tracer {
    GLOBAL.get_or_init(|| {
        let t = Tracer::new();
        let on = std::env::var("STRUDEL_TRACE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        t.set_enabled(on);
        t
    })
}

/// Whether the global tracer is recording.
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Enables or disables the global tracer.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Bumps a named counter on the global tracer. No-op while disabled.
pub fn count(name: &'static str, n: u64) {
    global().add(name, n);
}

/// Opens a span on the global tracer (inert while disabled).
pub fn span(name: &'static str) -> SpanGuard<'static> {
    global().span(name)
}

/// Appends a lazily formatted event to the global tracer.
pub fn event_with<F: FnOnce() -> String>(name: &'static str, detail: F) {
    global().event_with(name, detail);
}

/// Allocates the next trace id from the global tracer.
pub fn next_trace_id() -> u64 {
    global().next_trace_id()
}

/// Snapshots the global tracer.
pub fn snapshot() -> TraceSnapshot {
    global().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.add("probes", 7);
        {
            let _g = t.span("visit");
        }
        t.event_with("req", || panic!("detail must not be built while disabled"));
        let snap = t.snapshot();
        assert!(!snap.enabled);
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn counters_aggregate_and_sort() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.add("b.second", 2);
        t.add("a.first", 1);
        t.add("b.second", 3);
        let snap = t.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".into(), 1), ("b.second".into(), 5)]
        );
    }

    #[test]
    fn spans_nest_into_paths() {
        let t = Tracer::new();
        t.set_enabled(true);
        {
            let _outer = t.span("request");
            {
                let _inner = t.span("visit");
            }
            {
                let _inner = t.span("visit");
            }
        }
        {
            let _lone = t.span("visit");
        }
        let snap = t.snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["request", "request/visit", "visit"]);
        let nested = &snap.spans[1].1;
        assert_eq!(nested.count, 2);
        assert!(nested.total_us >= nested.max_us);
    }

    #[test]
    fn span_path_restores_after_drop() {
        let t = Tracer::new();
        t.set_enabled(true);
        {
            let _a = t.span("a");
            {
                let _b = t.span("b");
            }
            {
                let _c = t.span("c");
            }
        }
        let snap = t.snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["a", "a/b", "a/c"]);
    }

    #[test]
    fn event_ring_caps_and_counts_drops() {
        let t = Tracer::new();
        t.set_enabled(true);
        for i in 0..(EVENT_CAPACITY + 10) {
            t.event_with("tick", || format!("i={i}"));
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), EVENT_CAPACITY);
        assert_eq!(snap.dropped_events, 10);
        assert_eq!(snap.events.first().unwrap().seq, 10);
        assert_eq!(
            snap.events.last().unwrap().seq,
            (EVENT_CAPACITY + 9) as u64
        );
    }

    #[test]
    fn trace_ids_are_monotonic_and_issued_while_disabled() {
        let t = Tracer::new();
        let a = t.next_trace_id();
        t.set_enabled(true);
        let b = t.next_trace_id();
        assert!(b > a);
        assert_eq!(a, 1);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let t = std::sync::Arc::new(Tracer::new());
        t.set_enabled(true);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    t.add("hits", 1);
                    let _g = t.span("work");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = t.snapshot();
        assert_eq!(snap.counters, vec![("hits".into(), 4000)]);
        assert_eq!(snap.spans[0].1.count, 4000);
    }

    #[test]
    fn reset_clears_data_but_keeps_flag_and_ids() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.add("x", 1);
        t.event_with("e", || "d".into());
        let id = t.next_trace_id();
        t.reset();
        let snap = t.snapshot();
        assert!(snap.enabled);
        assert!(snap.counters.is_empty());
        assert!(snap.events.is_empty());
        assert!(t.next_trace_id() > id);
    }

    #[test]
    fn render_text_lists_sections() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.add("repo.probe.extension", 3);
        {
            let _g = t.span("engine.visit");
        }
        t.event_with("serve.request", || "id=1 path=/ status=200".into());
        let text = t.snapshot().render_text();
        assert!(text.contains("## spans"));
        assert!(text.contains("engine.visit"));
        assert!(text.contains("repo.probe.extension 3"));
        assert!(text.contains("serve.request: id=1 path=/ status=200"));
    }
}
