//! Recursive-descent parser for STRUQL.

use crate::ast::*;
use crate::error::{StruqlError, StruqlResult};
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};
use strudel_graph::Value;

/// Reserved words that cannot name variables or collections.
const RESERVED: &[&str] = &["where", "create", "link", "collect", "not", "true", "false"];

/// Parses and statically checks a STRUQL program.
///
/// Equivalent to `parse_unchecked` (available for tooling via this
/// module) followed by [`analyze::check`](crate::analyze::check).
pub fn parse(src: &str) -> StruqlResult<Program> {
    let program = parse_unchecked(src)?;
    crate::analyze::check(&program)?;
    Ok(program)
}

/// Parses a standalone regular path expression (the `R` of `x -> R -> y`),
/// e.g. `"cites"* . ("journal" | "booktitle")`. Used by the constraint
/// language of the schema crate, which shares STRUQL's path syntax.
pub fn parse_path_regex(src: &str) -> StruqlResult<PathRegex> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let r = p.regex_alt()?;
    if p.peek().kind != TokenKind::Eof {
        return Err(p.err_here("trailing input after path expression"));
    }
    Ok(r)
}

/// Parses a STRUQL program without static checks. Useful for tooling that
/// wants to inspect malformed programs; evaluation requires a checked
/// program.
pub fn parse_unchecked(src: &str) -> StruqlResult<Program> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut blocks = Vec::new();
    while p.peek().kind != TokenKind::Eof {
        blocks.push(p.block()?);
    }
    if blocks.is_empty() {
        return Err(StruqlError::parse(Span::new(1, 1), "empty program"));
    }
    Ok(Program { blocks })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> StruqlError {
        StruqlError::parse(self.peek().span, msg)
    }

    fn eat(&mut self, kind: &TokenKind, what: &str) -> StruqlResult<Token> {
        if std::mem::discriminant(&self.peek().kind) == std::mem::discriminant(kind) {
            Ok(self.advance())
        } else {
            Err(self.err_here(format!("expected {what}, found {}", self.peek().kind)))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn ident(&mut self, what: &str) -> StruqlResult<(String, Span)> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.advance();
                if let TokenKind::Ident(s) = t.kind {
                    Ok((s, t.span))
                } else {
                    unreachable!()
                }
            }
            _ => Err(self.err_here(format!("expected {what}, found {}", self.peek().kind))),
        }
    }

    fn non_reserved_ident(&mut self, what: &str) -> StruqlResult<(String, Span)> {
        let (s, span) = self.ident(what)?;
        if RESERVED.contains(&s.as_str()) {
            return Err(StruqlError::parse(
                span,
                format!("'{s}' is a reserved word and cannot be used as {what}"),
            ));
        }
        Ok((s, span))
    }

    /// One block. A `where` clause may only open a block (a later `where`
    /// begins the next top-level block); `create`, `link`, `collect`
    /// sections and nested `{ … }` blocks may then interleave freely and
    /// repeat — the paper's Fig. 3 puts `collect` after nested blocks.
    fn block(&mut self) -> StruqlResult<Block> {
        let span = self.peek().span;
        let mut block = Block {
            span,
            ..Block::default()
        };
        let mut any = false;

        if self.at_keyword("where") {
            self.advance();
            block.where_ = self.comma_list(Self::condition)?;
            any = true;
        }
        loop {
            if self.at_keyword("create") {
                self.advance();
                block.create.extend(self.comma_list(Self::create_term)?);
            } else if self.at_keyword("link") {
                self.advance();
                block.link.extend(self.comma_list(Self::link_expr)?);
            } else if self.at_keyword("collect") {
                self.advance();
                block.collect.extend(self.comma_list(Self::collect_expr)?);
            } else if self.peek().kind == TokenKind::LBrace {
                self.advance();
                let nested = self.block()?;
                self.eat(&TokenKind::RBrace, "'}' closing nested block")?;
                block.nested.push(nested);
            } else {
                break;
            }
            any = true;
        }
        if !any {
            return Err(self.err_here(
                "expected a block ('where', 'create', 'link', 'collect', or '{')",
            ));
        }
        Ok(block)
    }

    /// Parses `item (',' item)*`, stopping before keywords, braces, or EOF.
    fn comma_list<T>(
        &mut self,
        item: fn(&mut Self) -> StruqlResult<T>,
    ) -> StruqlResult<Vec<T>> {
        let mut out = vec![item(self)?];
        while self.peek().kind == TokenKind::Comma {
            self.advance();
            out.push(item(self)?);
        }
        Ok(out)
    }

    // ----- where-stage ----------------------------------------------------

    fn condition(&mut self) -> StruqlResult<Condition> {
        let span = self.peek().span;
        // not(…)
        if self.at_keyword("not") {
            self.advance();
            self.eat(&TokenKind::LParen, "'(' after 'not'")?;
            let inner = self.condition()?;
            self.eat(&TokenKind::RParen, "')' closing 'not'")?;
            return Ok(Condition::Not(Box::new(inner), span));
        }
        // Builtin or collection atom: IDENT '(' term ')'
        if let TokenKind::Ident(name) = &self.peek().kind {
            if self.peek2().kind == TokenKind::LParen {
                let name = name.clone();
                let (_, span) = self.ident("atom name")?;
                self.eat(&TokenKind::LParen, "'('")?;
                let arg = self.where_term()?;
                self.eat(&TokenKind::RParen, "')'")?;
                return Ok(match BuiltinPred::from_name(&name) {
                    Some(pred) => Condition::Builtin { pred, arg, span },
                    None => {
                        if RESERVED.contains(&name.as_str()) {
                            return Err(StruqlError::parse(
                                span,
                                format!("'{name}' cannot name a collection"),
                            ));
                        }
                        Condition::Collection { name, arg, span }
                    }
                });
            }
        }
        // Path atom or comparison: term (…)
        let lhs = self.where_term()?;
        match self.peek().kind {
            TokenKind::Arrow => {
                self.advance();
                let path = self.path_spec()?;
                self.eat(&TokenKind::Arrow, "'->' after path expression")?;
                let dst = self.where_term()?;
                Ok(Condition::Path {
                    src: lhs,
                    path,
                    dst,
                    span,
                })
            }
            TokenKind::Eq
            | TokenKind::Ne
            | TokenKind::Lt
            | TokenKind::Le
            | TokenKind::Gt
            | TokenKind::Ge => {
                let op = match self.advance().kind {
                    TokenKind::Eq => CmpOp::Eq,
                    TokenKind::Ne => CmpOp::Ne,
                    TokenKind::Lt => CmpOp::Lt,
                    TokenKind::Le => CmpOp::Le,
                    TokenKind::Gt => CmpOp::Gt,
                    TokenKind::Ge => CmpOp::Ge,
                    _ => unreachable!(),
                };
                let rhs = self.where_term()?;
                Ok(Condition::Compare { op, lhs, rhs, span })
            }
            _ => Err(self.err_here("expected '->' or a comparison operator")),
        }
    }

    /// A term legal in the where stage: variable or constant.
    fn where_term(&mut self) -> StruqlResult<Term> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                match s.as_str() {
                    "true" => {
                        self.advance();
                        Ok(Term::Const(Value::Bool(true)))
                    }
                    "false" => {
                        self.advance();
                        Ok(Term::Const(Value::Bool(false)))
                    }
                    _ => {
                        let (v, span) = self.non_reserved_ident("a variable")?;
                        if self.peek().kind == TokenKind::LParen {
                            return Err(StruqlError::parse(
                                span,
                                "Skolem terms are not allowed in the where stage",
                            ));
                        }
                        Ok(Term::Var(v))
                    }
                }
            }
            TokenKind::Str(s) => {
                let v = Value::string(s.clone());
                self.advance();
                Ok(Term::Const(v))
            }
            TokenKind::Int(i) => {
                let v = Value::Int(*i);
                self.advance();
                Ok(Term::Const(v))
            }
            TokenKind::Float(x) => {
                let v = Value::Float(*x);
                self.advance();
                Ok(Term::Const(v))
            }
            other => Err(self.err_here(format!("expected a term, found {other}"))),
        }
    }

    fn path_spec(&mut self) -> StruqlResult<PathSpec> {
        // A single non-keyword identifier is an arc variable …
        if let TokenKind::Ident(name) = &self.peek().kind {
            if name != "true" {
                let (v, _) = self.non_reserved_ident("an arc variable")?;
                return Ok(PathSpec::ArcVar(v));
            }
        }
        // … everything else is a regular path expression.
        Ok(PathSpec::Regex(self.regex_alt()?))
    }

    fn regex_alt(&mut self) -> StruqlResult<PathRegex> {
        let mut left = self.regex_seq()?;
        while self.peek().kind == TokenKind::Pipe {
            self.advance();
            let right = self.regex_seq()?;
            left = PathRegex::Alt(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn regex_seq(&mut self) -> StruqlResult<PathRegex> {
        let mut left = self.regex_postfix()?;
        while self.peek().kind == TokenKind::Dot {
            self.advance();
            let right = self.regex_postfix()?;
            left = PathRegex::Seq(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn regex_postfix(&mut self) -> StruqlResult<PathRegex> {
        let mut inner = self.regex_primary()?;
        loop {
            match self.peek().kind {
                TokenKind::Star => {
                    self.advance();
                    inner = PathRegex::Star(Box::new(inner));
                }
                TokenKind::Plus => {
                    self.advance();
                    inner = PathRegex::Plus(Box::new(inner));
                }
                TokenKind::Question => {
                    self.advance();
                    inner = PathRegex::Opt(Box::new(inner));
                }
                _ => return Ok(inner),
            }
        }
    }

    fn regex_primary(&mut self) -> StruqlResult<PathRegex> {
        match &self.peek().kind {
            TokenKind::Str(s) => {
                let r = PathRegex::Label(s.clone());
                self.advance();
                Ok(r)
            }
            TokenKind::Ident(s) if s == "true" => {
                self.advance();
                Ok(PathRegex::Any)
            }
            // Bare `*` abbreviates `true*` — "we abbreviate the latter
            // with *" (§2.2).
            TokenKind::Star => {
                self.advance();
                Ok(PathRegex::Star(Box::new(PathRegex::Any)))
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.regex_alt()?;
                self.eat(&TokenKind::RParen, "')' closing path group")?;
                Ok(inner)
            }
            other => Err(self.err_here(format!(
                "expected a path expression (label literal, 'true', '*', or '('), found {other}"
            ))),
        }
    }

    // ----- construction stage ----------------------------------------------

    /// A term in the `create` clause: must be a Skolem term.
    fn create_term(&mut self) -> StruqlResult<Term> {
        let span = self.peek().span;
        let term = self.construct_term()?;
        match term {
            Term::Skolem { .. } => Ok(term),
            _ => Err(StruqlError::parse(
                span,
                "create clause expects Skolem terms like Page(x) or Root()",
            )),
        }
    }

    /// A term in the construction stage: Skolem term, variable, or
    /// constant.
    fn construct_term(&mut self) -> StruqlResult<Term> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                match s.as_str() {
                    "true" => {
                        self.advance();
                        return Ok(Term::Const(Value::Bool(true)));
                    }
                    "false" => {
                        self.advance();
                        return Ok(Term::Const(Value::Bool(false)));
                    }
                    _ => {}
                }
                let (name, _) = self.non_reserved_ident("a term")?;
                if self.peek().kind == TokenKind::LParen {
                    self.advance();
                    let mut args = Vec::new();
                    if self.peek().kind != TokenKind::RParen {
                        args = self.comma_list(Self::construct_term)?;
                    }
                    self.eat(&TokenKind::RParen, "')' closing Skolem term")?;
                    Ok(Term::Skolem { symbol: name, args })
                } else {
                    Ok(Term::Var(name))
                }
            }
            TokenKind::Str(s) => {
                let v = Value::string(s.clone());
                self.advance();
                Ok(Term::Const(v))
            }
            TokenKind::Int(i) => {
                let v = Value::Int(*i);
                self.advance();
                Ok(Term::Const(v))
            }
            TokenKind::Float(x) => {
                let v = Value::Float(*x);
                self.advance();
                Ok(Term::Const(v))
            }
            other => Err(self.err_here(format!("expected a term, found {other}"))),
        }
    }

    fn link_expr(&mut self) -> StruqlResult<LinkExpr> {
        let span = self.peek().span;
        let src = self.construct_term()?;
        self.eat(&TokenKind::Arrow, "'->' in link expression")?;
        let label = match &self.peek().kind {
            TokenKind::Str(s) => {
                let l = LabelTerm::Const(s.clone());
                self.advance();
                l
            }
            TokenKind::Ident(_) => {
                let (v, _) = self.non_reserved_ident("an arc variable")?;
                LabelTerm::Var(v)
            }
            other => {
                return Err(self.err_here(format!(
                    "expected a label literal or arc variable, found {other}"
                )))
            }
        };
        self.eat(&TokenKind::Arrow, "'->' in link expression")?;
        let dst = self.construct_term()?;
        Ok(LinkExpr {
            src,
            label,
            dst,
            span,
        })
    }

    fn collect_expr(&mut self) -> StruqlResult<CollectExpr> {
        let (collection, span) = self.non_reserved_ident("a collection name")?;
        self.eat(&TokenKind::LParen, "'(' after collection name")?;
        let arg = self.construct_term()?;
        self.eat(&TokenKind::RParen, "')'")?;
        Ok(CollectExpr {
            collection,
            arg,
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_textonly_query() {
        let q = r#"
            where Root(p), p -> * -> q, q -> l -> r, not(isImageFile(r))
            create New(p), New(q), New(r)
            link   New(q) -> l -> New(r)
            collect TextOnlyRoot(New(p))
        "#;
        let prog = parse_unchecked(q).unwrap();
        assert_eq!(prog.blocks.len(), 1);
        let b = &prog.blocks[0];
        assert_eq!(b.where_.len(), 4);
        assert_eq!(b.create.len(), 3);
        assert_eq!(b.link.len(), 1);
        assert_eq!(b.collect.len(), 1);
        assert!(matches!(&b.where_[3], Condition::Not(..)));
        assert!(matches!(
            &b.where_[1],
            Condition::Path {
                path: PathSpec::Regex(PathRegex::Star(_)),
                ..
            }
        ));
        assert!(matches!(
            &b.where_[2],
            Condition::Path {
                path: PathSpec::ArcVar(v),
                ..
            } if v == "l"
        ));
    }

    #[test]
    fn parses_multiple_blocks_and_nesting() {
        let q = r#"
            create RootPage(), AbstractsPage()
            link RootPage() -> "Abstracts" -> AbstractsPage()

            where Publications(x)
            create AbstractPage(x), PaperPresentation(x)
            link AbstractsPage() -> "Abstract" -> AbstractPage(x)
            { where x -> l -> v
              link PaperPresentation(x) -> l -> v }
            { where x -> "year" -> y
              create YearPage(y)
              link YearPage(y) -> "Year" -> y,
                   YearPage(y) -> "Paper" -> PaperPresentation(x),
                   RootPage() -> "YearPage" -> YearPage(y) }
        "#;
        let prog = parse_unchecked(q).unwrap();
        assert_eq!(prog.blocks.len(), 2);
        assert_eq!(prog.blocks[1].nested.len(), 2);
        assert_eq!(prog.blocks[1].nested[1].link.len(), 3);
        assert_eq!(prog.link_clause_count(), 6);
        let symbols = prog.skolem_symbols();
        assert!(symbols.contains(&"YearPage"));
        assert!(symbols.contains(&"RootPage"));
    }

    #[test]
    fn parses_comparisons() {
        let q = r#"where Publications(x), x -> "year" -> y, y >= 1997, y != 2000 create P(x)"#;
        let prog = parse_unchecked(q).unwrap();
        assert!(matches!(
            &prog.blocks[0].where_[2],
            Condition::Compare { op: CmpOp::Ge, .. }
        ));
    }

    #[test]
    fn parses_regex_forms() {
        let q = r#"where x -> ("a" | "b") . true* . "c"+ . "d"? -> y create P(x)"#;
        let prog = parse_unchecked(q).unwrap();
        let Condition::Path {
            path: PathSpec::Regex(r),
            ..
        } = &prog.blocks[0].where_[0]
        else {
            panic!("expected regex path");
        };
        // ((a|b) . true*) . c+) . d?
        let mut seqs = 0;
        fn count_seqs(r: &PathRegex, n: &mut usize) {
            if let PathRegex::Seq(a, b) = r {
                *n += 1;
                count_seqs(a, n);
                count_seqs(b, n);
            }
        }
        count_seqs(r, &mut seqs);
        assert_eq!(seqs, 3);
    }

    #[test]
    fn create_requires_skolem_terms() {
        let err = parse_unchecked("create x").unwrap_err();
        assert!(err.message().contains("Skolem"));
    }

    #[test]
    fn skolem_in_where_is_rejected() {
        let err = parse_unchecked("where P(F(x)) create G(x)").unwrap_err();
        assert!(err.message().contains("where stage"), "{err}");
    }

    #[test]
    fn reserved_words_rejected_as_names() {
        assert!(parse_unchecked("where where(x) create P(x)").is_err());
        assert!(parse_unchecked("collect true(x)").is_err());
    }

    #[test]
    fn empty_program_is_rejected() {
        assert!(parse_unchecked("").is_err());
        assert!(parse_unchecked("  -- just a comment\n").is_err());
    }

    #[test]
    fn constants_in_conditions() {
        let q = r#"where x -> "year" -> 1998 create P(x)"#;
        let prog = parse_unchecked(q).unwrap();
        assert!(matches!(
            &prog.blocks[0].where_[0],
            Condition::Path {
                dst: Term::Const(Value::Int(1998)),
                ..
            }
        ));
    }

    #[test]
    fn link_label_forms() {
        let q = r#"where x -> l -> y create P(x) link P(x) -> "lit" -> y, P(x) -> l -> y"#;
        let prog = parse_unchecked(q).unwrap();
        assert!(matches!(&prog.blocks[0].link[0].label, LabelTerm::Const(s) if s == "lit"));
        assert!(matches!(&prog.blocks[0].link[1].label, LabelTerm::Var(v) if v == "l"));
    }

    #[test]
    fn collect_accepts_skolem_and_vars() {
        let q = r#"where C(x) create P(x) collect Out(P(x)), Others(x)"#;
        let prog = parse_unchecked(q).unwrap();
        assert_eq!(prog.blocks[0].collect.len(), 2);
    }

    #[test]
    fn nested_skolem_args() {
        let q = r#"where C(x) create P(Q(x), "tag")"#;
        let prog = parse_unchecked(q).unwrap();
        let Term::Skolem { symbol, args } = &prog.blocks[0].create[0] else {
            panic!()
        };
        assert_eq!(symbol, "P");
        assert_eq!(args.len(), 2);
        assert!(matches!(&args[0], Term::Skolem { .. }));
    }

    #[test]
    fn error_positions_are_useful() {
        let err = parse_unchecked("where P(x) create").unwrap_err();
        let StruqlError::Parse { span, .. } = err else {
            panic!()
        };
        assert_eq!(span.line, 1);
    }
}
