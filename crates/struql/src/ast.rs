//! The STRUQL abstract syntax tree.

use crate::token::Span;
use strudel_graph::Value;

/// A whole STRUQL program: one or more blocks evaluated in order against
/// the same input graph, sharing one Skolem table and one output graph.
///
/// Multiple blocks let "different queries create different parts of the
/// same site" (§6.2).
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Top-level blocks in source order.
    pub blocks: Vec<Block>,
}

impl Program {
    /// All blocks of the program in pre-order (each top-level block
    /// followed by its nested blocks, recursively).
    pub fn blocks_preorder(&self) -> Vec<&Block> {
        let mut out = Vec::new();
        fn walk<'a>(b: &'a Block, out: &mut Vec<&'a Block>) {
            out.push(b);
            for n in &b.nested {
                walk(n, out);
            }
        }
        for b in &self.blocks {
            walk(b, &mut out);
        }
        out
    }

    /// Number of `link` expressions in the whole program — the paper's
    /// proxy measure for a site's structural complexity (§6.1).
    pub fn link_clause_count(&self) -> usize {
        self.blocks_preorder().iter().map(|b| b.link.len()).sum()
    }

    /// All Skolem symbols mentioned anywhere, in first-appearance order.
    pub fn skolem_symbols(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        // Symbol counts are tiny; linear scans beat a set here.
        fn term<'a>(t: &'a Term, out: &mut Vec<&'a str>) {
            if let Term::Skolem { symbol, args } = t {
                if !out.contains(&symbol.as_str()) {
                    out.push(symbol);
                }
                for a in args {
                    term(a, out);
                }
            }
        }
        for b in self.blocks_preorder() {
            for t in &b.create {
                term(t, &mut out);
            }
            for l in &b.link {
                term(&l.src, &mut out);
                term(&l.dst, &mut out);
            }
            for c in &b.collect {
                term(&c.arg, &mut out);
            }
        }
        out
    }
}

/// One query block: a `where` stage, a construction stage, and nested
/// blocks whose `where` clauses conjoin with this one.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Block {
    /// Conditions of the `where` clause (empty = one trivial binding).
    pub where_: Vec<Condition>,
    /// Skolem terms of the `create` clause.
    pub create: Vec<Term>,
    /// Link expressions.
    pub link: Vec<LinkExpr>,
    /// Collect expressions.
    pub collect: Vec<CollectExpr>,
    /// Nested blocks.
    pub nested: Vec<Block>,
    /// Source position of the block start.
    pub span: Span,
}

/// A condition of a `where` clause.
#[derive(Clone, Debug, PartialEq)]
pub enum Condition {
    /// Collection membership: `Publications(x)`.
    Collection {
        /// Collection name.
        name: String,
        /// The member term.
        arg: Term,
        /// Source position.
        span: Span,
    },
    /// A path atom `src -> path -> dst`.
    Path {
        /// Path start (node).
        src: Term,
        /// The path specification: arc variable or regular path expression.
        path: PathSpec,
        /// Path end (node or atomic value).
        dst: Term,
        /// Source position.
        span: Span,
    },
    /// A coercing comparison `lhs op rhs`.
    Compare {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
        /// Source position.
        span: Span,
    },
    /// A built-in type predicate, e.g. `isImageFile(q)`.
    Builtin {
        /// Which predicate.
        pred: BuiltinPred,
        /// Its argument.
        arg: Term,
        /// Source position.
        span: Span,
    },
    /// Negation of a fully bound condition.
    Not(Box<Condition>, Span),
}

impl Condition {
    /// The source position of this condition.
    pub fn span(&self) -> Span {
        match self {
            Condition::Collection { span, .. }
            | Condition::Path { span, .. }
            | Condition::Compare { span, .. }
            | Condition::Builtin { span, .. }
            | Condition::Not(_, span) => *span,
        }
    }
}

/// Comparison operators; all compare with the dynamic coercion rules of
/// [`strudel_graph::coerce`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Built-in predicates on the run-time type of a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuiltinPred {
    /// The value is an image file.
    IsImageFile,
    /// The value is a PostScript file.
    IsPostScript,
    /// The value is a text file.
    IsTextFile,
    /// The value is an HTML file.
    IsHtmlFile,
    /// The value is a URL.
    IsUrl,
    /// The value is an integer.
    IsInt,
    /// The value is a string.
    IsString,
    /// The value is an internal node.
    IsNode,
    /// The value is atomic (not an internal node).
    IsAtomic,
}

impl BuiltinPred {
    /// Looks a predicate up by its surface name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "isImageFile" => BuiltinPred::IsImageFile,
            "isPostScript" => BuiltinPred::IsPostScript,
            "isTextFile" => BuiltinPred::IsTextFile,
            "isHtmlFile" => BuiltinPred::IsHtmlFile,
            "isUrl" => BuiltinPred::IsUrl,
            "isInt" => BuiltinPred::IsInt,
            "isString" => BuiltinPred::IsString,
            "isNode" => BuiltinPred::IsNode,
            "isAtomic" => BuiltinPred::IsAtomic,
            _ => return None,
        })
    }

    /// The surface name of the predicate.
    pub fn name(self) -> &'static str {
        match self {
            BuiltinPred::IsImageFile => "isImageFile",
            BuiltinPred::IsPostScript => "isPostScript",
            BuiltinPred::IsTextFile => "isTextFile",
            BuiltinPred::IsHtmlFile => "isHtmlFile",
            BuiltinPred::IsUrl => "isUrl",
            BuiltinPred::IsInt => "isInt",
            BuiltinPred::IsString => "isString",
            BuiltinPred::IsNode => "isNode",
            BuiltinPred::IsAtomic => "isAtomic",
        }
    }
}

/// The path part of a path atom.
#[derive(Clone, Debug, PartialEq)]
pub enum PathSpec {
    /// An arc variable: matches any single edge and binds the variable to
    /// the edge's label (as a string — labels are string-valued attribute
    /// names). This is how STRUQL queries the schema.
    ArcVar(String),
    /// A regular path expression over edge labels.
    Regex(PathRegex),
}

/// Regular path expressions: `R := Pred | R.R | R|R | R*` (§2.2), with the
/// common `+` and `?` extensions. `true` denotes any edge label; `*` alone
/// abbreviates `true*`.
#[derive(Clone, Debug, PartialEq)]
pub enum PathRegex {
    /// A single edge whose label equals the literal.
    Label(String),
    /// A single edge with any label (`true`).
    Any,
    /// Concatenation `R . R`.
    Seq(Box<PathRegex>, Box<PathRegex>),
    /// Alternation `R | R`.
    Alt(Box<PathRegex>, Box<PathRegex>),
    /// Kleene star `R*` (zero or more).
    Star(Box<PathRegex>),
    /// One or more `R+`.
    Plus(Box<PathRegex>),
    /// Zero or one `R?`.
    Opt(Box<PathRegex>),
}

/// Terms: variables, constants, and Skolem applications.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// A variable.
    Var(String),
    /// A constant value.
    Const(Value),
    /// A Skolem term `F(t1, …, tn)`; only legal in the construction stage.
    Skolem {
        /// The function symbol.
        symbol: String,
        /// Argument terms (variables, constants, or nested Skolem terms).
        args: Vec<Term>,
    },
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: &str) -> Self {
        Term::Var(name.to_owned())
    }

    /// Collects the names of all variables in the term into `out`.
    pub fn vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Term::Var(v) => out.push(v),
            Term::Const(_) => {}
            Term::Skolem { args, .. } => {
                for a in args {
                    a.vars(out);
                }
            }
        }
    }
}

/// The label position of a `link` expression.
#[derive(Clone, Debug, PartialEq)]
pub enum LabelTerm {
    /// A constant label.
    Const(String),
    /// An arc variable bound in the `where` stage — this is what carries
    /// data irregularity into the site graph (§6.2).
    Var(String),
}

/// One `link` expression: `src -> label -> dst`. `src` must be a Skolem
/// term — existing nodes are immutable.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkExpr {
    /// The (new) source node.
    pub src: Term,
    /// The edge label.
    pub label: LabelTerm,
    /// The target.
    pub dst: Term,
    /// Source position.
    pub span: Span,
}

/// One `collect` expression: `Collection(term)`.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectExpr {
    /// The output collection name.
    pub collection: String,
    /// The member term.
    pub arg: Term,
    /// Source position.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_round_trip() {
        for p in [
            BuiltinPred::IsImageFile,
            BuiltinPred::IsPostScript,
            BuiltinPred::IsTextFile,
            BuiltinPred::IsHtmlFile,
            BuiltinPred::IsUrl,
            BuiltinPred::IsInt,
            BuiltinPred::IsString,
            BuiltinPred::IsNode,
            BuiltinPred::IsAtomic,
        ] {
            assert_eq!(BuiltinPred::from_name(p.name()), Some(p));
        }
        assert_eq!(BuiltinPred::from_name("Publications"), None);
    }

    #[test]
    fn term_vars_walks_skolem_args() {
        let t = Term::Skolem {
            symbol: "F".into(),
            args: vec![
                Term::var("x"),
                Term::Const(Value::Int(1)),
                Term::Skolem {
                    symbol: "G".into(),
                    args: vec![Term::var("y")],
                },
            ],
        };
        let mut vars = Vec::new();
        t.vars(&mut vars);
        assert_eq!(vars, ["x", "y"]);
    }

    #[test]
    fn cmp_symbols() {
        assert_eq!(CmpOp::Le.symbol(), "<=");
        assert_eq!(CmpOp::Ne.symbol(), "!=");
    }
}
