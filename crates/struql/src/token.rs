//! Tokens and source spans for STRUQL.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Span {
    /// Constructs a span.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token payloads.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier: variables, collection names, Skolem symbols, keywords.
    Ident(String),
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `->`
    Arrow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `?`
    Question,
    /// `|`
    Pipe,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "'{s}'"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Arrow => f.write_str("'->'"),
            TokenKind::LParen => f.write_str("'('"),
            TokenKind::RParen => f.write_str("')'"),
            TokenKind::LBrace => f.write_str("'{'"),
            TokenKind::RBrace => f.write_str("'}'"),
            TokenKind::Comma => f.write_str("','"),
            TokenKind::Star => f.write_str("'*'"),
            TokenKind::Plus => f.write_str("'+'"),
            TokenKind::Question => f.write_str("'?'"),
            TokenKind::Pipe => f.write_str("'|'"),
            TokenKind::Dot => f.write_str("'.'"),
            TokenKind::Eq => f.write_str("'='"),
            TokenKind::Ne => f.write_str("'!='"),
            TokenKind::Lt => f.write_str("'<'"),
            TokenKind::Le => f.write_str("'<='"),
            TokenKind::Gt => f.write_str("'>'"),
            TokenKind::Ge => f.write_str("'>='"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Payload.
    pub kind: TokenKind,
    /// Where the token starts.
    pub span: Span,
}
