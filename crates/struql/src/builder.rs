//! Programmatic construction of STRUQL programs.
//!
//! The paper's §7 notes that "developing the appropriate API to STRUDEL
//! may be the best way to incorporate it into tools that Web-site builders
//! currently use", and that potential users asked for a Query-By-Example
//! style interface. [`ProgramBuilder`] is that API surface: a fluent,
//! typed way to assemble the same ASTs the parser produces — the natural
//! backend for a graphical query editor, and convenient for generating
//! query families programmatically (the F8 sweep, custom per-user sites of
//! §5.2).
//!
//! ```
//! use strudel_struql::builder::{q, ProgramBuilder};
//!
//! let program = ProgramBuilder::new()
//!     .block(|b| {
//!         b.create(q::skolem("RootPage", []))
//!             .collect("Roots", q::skolem("RootPage", []))
//!     })
//!     .block(|b| {
//!         b.member("Publications", "x")
//!             .create(q::skolem("PaperPage", [q::var("x")]))
//!             .link(
//!                 q::skolem("RootPage", []),
//!                 "paper",
//!                 q::skolem("PaperPage", [q::var("x")]),
//!             )
//!             .nested(|n| {
//!                 n.edge_any_label("x", "l", "v").link_var(
//!                     q::skolem("PaperPage", [q::var("x")]),
//!                     "l",
//!                     q::var("v"),
//!                 )
//!             })
//!     })
//!     .build()
//!     .unwrap();
//! assert_eq!(program.link_clause_count(), 2);
//! ```

use crate::ast::*;
use crate::error::StruqlResult;
use crate::token::Span;
use strudel_graph::Value;

/// Term and path constructors, designed to be used as `q::var("x")` etc.
pub mod q {
    use super::*;

    /// A variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(name.to_owned())
    }

    /// A constant term.
    pub fn val(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// A Skolem term `symbol(args…)`.
    pub fn skolem<const N: usize>(symbol: &str, args: [Term; N]) -> Term {
        Term::Skolem {
            symbol: symbol.to_owned(),
            args: args.to_vec(),
        }
    }

    /// A single-label path step.
    pub fn label(name: &str) -> PathRegex {
        PathRegex::Label(name.to_owned())
    }

    /// The any-label step (`true`).
    pub fn any() -> PathRegex {
        PathRegex::Any
    }

    /// Kleene star.
    pub fn star(inner: PathRegex) -> PathRegex {
        PathRegex::Star(Box::new(inner))
    }

    /// Concatenation.
    pub fn seq(a: PathRegex, b: PathRegex) -> PathRegex {
        PathRegex::Seq(Box::new(a), Box::new(b))
    }

    /// Alternation.
    pub fn alt(a: PathRegex, b: PathRegex) -> PathRegex {
        PathRegex::Alt(Box::new(a), Box::new(b))
    }

    /// The `*` abbreviation (`true*`): any path, any length.
    pub fn any_path() -> PathRegex {
        star(any())
    }
}

/// Builds a [`Program`] block by block. The result is checked by the same
/// static analysis as parsed programs.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    blocks: Vec<Block>,
}

impl ProgramBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a top-level block.
    pub fn block(mut self, f: impl FnOnce(BlockBuilder) -> BlockBuilder) -> Self {
        self.blocks.push(f(BlockBuilder::default()).finish());
        self
    }

    /// Finishes and statically checks the program.
    pub fn build(self) -> StruqlResult<Program> {
        let program = Program {
            blocks: self.blocks,
        };
        crate::analyze::check(&program)?;
        Ok(program)
    }
}

/// Builds one block.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    block: Block,
}

impl BlockBuilder {
    fn finish(self) -> Block {
        self.block
    }

    // ----- where-stage conditions -----------------------------------------

    /// `Collection(var)` membership.
    pub fn member(mut self, collection: &str, var: &str) -> Self {
        self.block.where_.push(Condition::Collection {
            name: collection.to_owned(),
            arg: Term::Var(var.to_owned()),
            span: Span::default(),
        });
        self
    }

    /// `src -> "label" -> dst` with a fixed label.
    pub fn edge(mut self, src: &str, label: &str, dst: Term) -> Self {
        self.block.where_.push(Condition::Path {
            src: Term::Var(src.to_owned()),
            path: PathSpec::Regex(PathRegex::Label(label.to_owned())),
            dst,
            span: Span::default(),
        });
        self
    }

    /// `src -> l -> dst` binding the arc variable `l`.
    pub fn edge_any_label(mut self, src: &str, label_var: &str, dst: &str) -> Self {
        self.block.where_.push(Condition::Path {
            src: Term::Var(src.to_owned()),
            path: PathSpec::ArcVar(label_var.to_owned()),
            dst: Term::Var(dst.to_owned()),
            span: Span::default(),
        });
        self
    }

    /// `src -> R -> dst` with an arbitrary path regex (see [`q`]).
    pub fn path(mut self, src: &str, regex: PathRegex, dst: Term) -> Self {
        self.block.where_.push(Condition::Path {
            src: Term::Var(src.to_owned()),
            path: PathSpec::Regex(regex),
            dst,
            span: Span::default(),
        });
        self
    }

    /// A comparison with dynamic coercion.
    pub fn compare(mut self, lhs: Term, op: CmpOp, rhs: Term) -> Self {
        self.block.where_.push(Condition::Compare {
            op,
            lhs,
            rhs,
            span: Span::default(),
        });
        self
    }

    /// A built-in type predicate.
    pub fn builtin(mut self, pred: BuiltinPred, arg: Term) -> Self {
        self.block.where_.push(Condition::Builtin {
            pred,
            arg,
            span: Span::default(),
        });
        self
    }

    /// Negates the most recently added condition.
    ///
    /// # Panics
    ///
    /// Panics when the block has no conditions yet.
    pub fn not_last(mut self) -> Self {
        let last = self
            .block
            .where_
            .pop()
            .expect("not_last requires a preceding condition");
        self.block
            .where_
            .push(Condition::Not(Box::new(last), Span::default()));
        self
    }

    // ----- construction stage ---------------------------------------------

    /// Adds a `create` term.
    pub fn create(mut self, term: Term) -> Self {
        self.block.create.push(term);
        self
    }

    /// Adds a `link` with a constant label.
    pub fn link(mut self, src: Term, label: &str, dst: Term) -> Self {
        self.block.link.push(LinkExpr {
            src,
            label: LabelTerm::Const(label.to_owned()),
            dst,
            span: Span::default(),
        });
        self
    }

    /// Adds a `link` whose label is an arc variable bound in the where
    /// stage.
    pub fn link_var(mut self, src: Term, label_var: &str, dst: Term) -> Self {
        self.block.link.push(LinkExpr {
            src,
            label: LabelTerm::Var(label_var.to_owned()),
            dst,
            span: Span::default(),
        });
        self
    }

    /// Adds a `collect`.
    pub fn collect(mut self, collection: &str, term: Term) -> Self {
        self.block.collect.push(CollectExpr {
            collection: collection.to_owned(),
            arg: term,
            span: Span::default(),
        });
        self
    }

    /// Adds a nested block (conjoining with this block's where clause).
    pub fn nested(mut self, f: impl FnOnce(BlockBuilder) -> BlockBuilder) -> Self {
        self.block.nested.push(f(BlockBuilder::default()).finish());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::pretty;
    use strudel_graph::ddl;
    use strudel_repo::{Database, IndexLevel};

    fn db() -> Database {
        let g = ddl::parse(
            r#"
            object p1 in Publications { title : "Alpha"; year : 1997; }
            object p2 in Publications { title : "Beta"; year : 1998; }
        "#,
        )
        .unwrap();
        Database::from_graph(g, IndexLevel::Full)
    }

    fn built_program() -> Program {
        ProgramBuilder::new()
            .block(|b| {
                b.create(q::skolem("RootPage", []))
                    .collect("Roots", q::skolem("RootPage", []))
            })
            .block(|b| {
                b.member("Publications", "x")
                    .create(q::skolem("PaperPage", [q::var("x")]))
                    .link(
                        q::skolem("RootPage", []),
                        "paper",
                        q::skolem("PaperPage", [q::var("x")]),
                    )
                    .nested(|n| {
                        n.edge_any_label("x", "l", "v").link_var(
                            q::skolem("PaperPage", [q::var("x")]),
                            "l",
                            q::var("v"),
                        )
                    })
                    .nested(|n| {
                        n.edge("x", "year", q::var("y"))
                            .compare(q::var("y"), CmpOp::Ge, q::val(1998i64))
                            .create(q::skolem("RecentPage", [q::var("y")]))
                            .link(
                                q::skolem("RecentPage", [q::var("y")]),
                                "paper",
                                q::skolem("PaperPage", [q::var("x")]),
                            )
                    })
            })
            .build()
            .unwrap()
    }

    #[test]
    fn built_program_evaluates_like_its_parsed_twin() {
        let program = built_program();
        // Round-trip through the printer: the builder produces the same
        // language the parser accepts.
        let reparsed = crate::parser::parse(&pretty(&program)).unwrap();
        let db = db();
        let r1 = Evaluator::new(&db).eval(&program).unwrap();
        let r2 = Evaluator::new(&db).eval(&reparsed).unwrap();
        assert_eq!(r1.new_nodes.len(), r2.new_nodes.len());
        assert_eq!(r1.graph.edge_count(), r2.graph.edge_count());

        // 1 root + 2 papers + 1 recent page (1998 only).
        assert_eq!(r1.new_nodes.len(), 4);
    }

    #[test]
    fn builder_rejects_unsafe_programs() {
        let err = ProgramBuilder::new()
            .block(|b| b.create(q::skolem("P", [q::var("unbound")])))
            .build()
            .unwrap_err();
        assert!(err.message().contains("unbound"));
    }

    #[test]
    fn builder_enforces_immutability() {
        let err = ProgramBuilder::new()
            .block(|b| {
                b.member("C", "x")
                    .create(q::skolem("P", [q::var("x")]))
                    .link(q::var("x"), "a", q::skolem("P", [q::var("x")]))
            })
            .build()
            .unwrap_err();
        assert!(err.message().contains("immutable"));
    }

    #[test]
    fn not_last_wraps_conditions() {
        let program = ProgramBuilder::new()
            .block(|b| {
                b.member("Publications", "x")
                    .edge("x", "month", q::var("m"))
                    .not_last()
                    .create(q::skolem("NoMonth", [q::var("x")]))
                    .collect("Out", q::skolem("NoMonth", [q::var("x")]))
            })
            .build()
            .unwrap();
        let db = db();
        let r = Evaluator::new(&db).eval(&program).unwrap();
        assert_eq!(r.graph.members_str("Out").len(), 2, "neither has a month");
    }

    #[test]
    fn path_helpers_compose() {
        let program = ProgramBuilder::new()
            .block(|b| {
                b.member("Publications", "x")
                    .path(
                        "x",
                        q::alt(q::label("year"), q::label("title")),
                        q::var("v"),
                    )
                    .create(q::skolem("Hit", [q::var("x"), q::var("v")]))
            })
            .build()
            .unwrap();
        let db = db();
        let r = Evaluator::new(&db).eval(&program).unwrap();
        // Each publication has a year and a title: 4 hits.
        assert_eq!(r.new_nodes.len(), 4);
    }

    #[test]
    fn generated_query_families() {
        // The F8-style use: assemble k facet blocks in a loop.
        let mut builder = ProgramBuilder::new().block(|b| {
            b.create(q::skolem("Home", []))
                .collect("Roots", q::skolem("Home", []))
        });
        for j in 0..4 {
            let facet = format!("facet{j}");
            let symbol = format!("Facet{j}");
            builder = builder.block(move |b| {
                b.member("Entities", "x")
                    .edge("x", &facet, q::var("v"))
                    .create(q::skolem(&symbol, [q::var("v")]))
                    .link(
                        q::skolem("Home", []),
                        &facet,
                        q::skolem(&symbol, [q::var("v")]),
                    )
            });
        }
        let program = builder.build().unwrap();
        assert_eq!(program.link_clause_count(), 4);
        assert_eq!(program.skolem_symbols().len(), 5);
    }
}
