//! # strudel-struql
//!
//! STRUQL, the declarative query and restructuring language for
//! semistructured graphs at the heart of the Strudel web-site management
//! system (§2.2 of the paper).
//!
//! A STRUQL *program* is a sequence of blocks; each block has the shape
//!
//! ```text
//! where   C1, …, Ck          -- query stage
//! create  N1, …, Nn          -- construction stage
//! link    S -> "label" -> T, …
//! collect Coll(T), …
//! { nested block }*          -- conjoins with the enclosing where
//! ```
//!
//! The **query stage** (`where`) produces a bindings relation: all
//! assignments of variables to oids and labels of the data graph that
//! satisfy every condition. Conditions are collection membership
//! (`Publications(x)`), edge and path atoms (`x -> R -> y` for a regular
//! path expression `R`, or `x -> l -> y` binding the *arc variable* `l` to
//! edge labels — STRUQL can query the schema), built-in predicates
//! (`isImageFile(q)`), comparisons with dynamic coercion, and `not(…)` over
//! fully bound conditions.
//!
//! The **construction stage** (`create`/`link`/`collect`) builds a new
//! graph using Skolem terms: `AbstractPage(x)` denotes the *same* node for
//! the same binding of `x` wherever it appears. Edges may only originate at
//! nodes created by the program — existing nodes are immutable (§2.2).
//!
//! ## Example: the TextOnly site (§2.2)
//!
//! ```
//! use strudel_repo::{Database, IndexLevel};
//! use strudel_struql::{parse, Evaluator};
//!
//! let g = strudel_graph::ddl::parse(r#"
//!     object home in Root { label : "welcome"; child : &pics; }
//!     object pics { shot : image("p.gif"); caption : "me"; }
//! "#).unwrap();
//! let db = Database::from_graph(g, IndexLevel::Full);
//!
//! let program = parse(r#"
//!     where Root(p), p -> * -> q, q -> l -> qq, not(isImageFile(qq))
//!     create New(p), New(q), New(qq)
//!     link   New(q) -> l -> New(qq)
//!     collect TextOnlyRoot(New(p))
//! "#).unwrap();
//!
//! let result = Evaluator::new(&db).eval(&program).unwrap();
//! assert_eq!(result.graph.members_str("TextOnlyRoot").len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod builder;
mod builtins;
mod error;
pub mod eval;
pub mod explain;
mod lexer;
pub mod par;
mod parser;
pub mod plan;
mod pretty;
pub mod rpe;
mod token;

pub use ast::{
    Block, BuiltinPred, CmpOp, CollectExpr, Condition, LabelTerm, LinkExpr, PathRegex, PathSpec,
    Program, Term,
};
pub use error::{StruqlError, StruqlResult};
pub use eval::diff::{apply_diff, diff_where, DeltaTouch, DiffOutcome, SignedRow};
pub use eval::{Constructor, EvalOptions, EvalResult, Evaluator, PreparedWhere};
pub use explain::{ExplainReport, ExplainStep};
pub use par::Parallelism;
pub use parser::{parse, parse_path_regex};
pub use pretty::{pretty, pretty_condition};
pub use token::Span;
