//! Evaluation of built-in type predicates.

use crate::ast::BuiltinPred;
use strudel_graph::{FileKind, Value};

/// Evaluates a built-in predicate against a run-time value.
pub fn eval_builtin(pred: BuiltinPred, v: &Value) -> bool {
    match pred {
        BuiltinPred::IsImageFile => v.is_file_kind(FileKind::Image),
        BuiltinPred::IsPostScript => v.is_file_kind(FileKind::PostScript),
        BuiltinPred::IsTextFile => v.is_file_kind(FileKind::Text),
        BuiltinPred::IsHtmlFile => v.is_file_kind(FileKind::Html),
        BuiltinPred::IsUrl => matches!(v, Value::Url(_)),
        BuiltinPred::IsInt => matches!(v, Value::Int(_)),
        BuiltinPred::IsString => matches!(v, Value::Str(_)),
        BuiltinPred::IsNode => matches!(v, Value::Node(_)),
        BuiltinPred::IsAtomic => v.is_atomic(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::Oid;

    #[test]
    fn predicates_dispatch_on_type() {
        let img = Value::file(FileKind::Image, "x.gif");
        assert!(eval_builtin(BuiltinPred::IsImageFile, &img));
        assert!(!eval_builtin(BuiltinPred::IsPostScript, &img));
        assert!(eval_builtin(BuiltinPred::IsAtomic, &img));
        assert!(!eval_builtin(BuiltinPred::IsNode, &img));

        let node = Value::Node(Oid::from_index(0));
        assert!(eval_builtin(BuiltinPred::IsNode, &node));
        assert!(!eval_builtin(BuiltinPred::IsAtomic, &node));

        assert!(eval_builtin(BuiltinPred::IsInt, &Value::Int(1)));
        assert!(eval_builtin(BuiltinPred::IsString, &Value::string("s")));
        assert!(eval_builtin(BuiltinPred::IsUrl, &Value::url("u")));
        assert!(eval_builtin(
            BuiltinPred::IsTextFile,
            &Value::file(FileKind::Text, "t")
        ));
        assert!(eval_builtin(
            BuiltinPred::IsHtmlFile,
            &Value::file(FileKind::Html, "h")
        ));
    }
}
