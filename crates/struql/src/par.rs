//! Deterministic parallel execution of relation-at-a-time work.
//!
//! The paper's central observation is that a site is "just a query" over
//! the data graph, which makes the where stage an embarrassingly parallel
//! relational evaluation: every condition maps each bindings row to zero
//! or more extended rows *independently of every other row*. This module
//! supplies the two pieces the evaluator needs to exploit that without
//! giving up determinism:
//!
//! * [`Parallelism`] — the knob threaded from `SiteBuilder` /
//!   `DynamicSite` down to the evaluator;
//! * [`map_chunks`] — a scoped fork/join that partitions a relation into
//!   contiguous chunks, runs one worker per chunk, and merges the
//!   per-worker output buffers **in partition order**.
//!
//! Because each condition preserves the relative order of its input rows
//! (row *i*'s extensions precede row *i+1*'s) and the merge concatenates
//! chunk outputs in partition order, the merged relation is *identical* —
//! not merely equivalent — to the sequential one. Downstream, Skolem
//! nodes are minted by walking that relation in order, so oid assignment
//! and the constructed site graph are byte-for-byte the same at any
//! worker count. Errors are deterministic too: the first failing
//! partition (by position, not by completion time) wins.

use std::num::NonZeroUsize;

/// How many worker threads the evaluator may use for one where clause.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded evaluation (the default).
    #[default]
    Sequential,
    /// Up to `n` worker threads (`0` and `1` both mean sequential).
    Threads(usize),
    /// One worker per available core
    /// ([`std::thread::available_parallelism`]).
    Auto,
}

impl Parallelism {
    /// The worker count this knob resolves to (always ≥ 1).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// Splits `len` items into at most `partitions` contiguous chunk lengths,
/// balanced to within one item. Deterministic: depends only on the
/// arguments.
pub(crate) fn chunk_lens(len: usize, partitions: usize) -> Vec<usize> {
    let parts = partitions.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    (0..parts)
        .map(|i| base + usize::from(i < extra))
        .filter(|&l| l > 0)
        .collect()
}

/// Partitions `items` into at most `partitions` contiguous chunks, applies
/// `f` to each chunk on its own scoped thread, and concatenates the chunk
/// outputs in partition order. With one partition (or one chunk's worth of
/// items) this degenerates to calling `f` inline — no threads, no cost.
///
/// Errors are merged deterministically: the error of the *earliest*
/// partition that failed is returned, regardless of which worker finished
/// first.
pub fn map_chunks<T, U, E, F>(items: Vec<T>, partitions: usize, f: F) -> Result<Vec<U>, E>
where
    T: Send,
    U: Send,
    E: Send,
    F: Fn(Vec<T>) -> Result<Vec<U>, E> + Sync,
{
    let lens = chunk_lens(items.len(), partitions);
    if lens.len() <= 1 {
        return f(items);
    }

    // Carve the relation into owned chunks up front so each worker gets a
    // `Vec` it can consume without synchronization.
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(lens.len());
    let mut iter = items.into_iter();
    for len in &lens {
        chunks.push(iter.by_ref().take(*len).collect());
    }

    let results: Vec<Result<Vec<U>, E>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(|| f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Merge in partition order; first error (by partition) wins.
    let mut out = Vec::new();
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_resolve_sensibly() {
        assert_eq!(Parallelism::Sequential.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(6).workers(), 6);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn chunks_balance_to_within_one() {
        assert_eq!(chunk_lens(10, 3), vec![4, 3, 3]);
        assert_eq!(chunk_lens(3, 8), vec![1, 1, 1]);
        assert_eq!(chunk_lens(0, 4), Vec::<usize>::new());
        assert_eq!(chunk_lens(7, 1), vec![7]);
    }

    #[test]
    fn merge_preserves_sequential_order() {
        let items: Vec<u32> = (0..1000).collect();
        let expand = |chunk: Vec<u32>| -> Result<Vec<u32>, ()> {
            Ok(chunk.iter().flat_map(|&x| [x * 2, x * 2 + 1]).collect())
        };
        let seq = expand(items.clone()).unwrap();
        for workers in [2, 3, 7, 16] {
            assert_eq!(map_chunks(items.clone(), workers, expand).unwrap(), seq);
        }
    }

    #[test]
    fn first_partition_error_wins() {
        let items: Vec<u32> = (0..100).collect();
        let f = |chunk: Vec<u32>| -> Result<Vec<u32>, u32> {
            // Every chunk fails, reporting its first element; the merged
            // error must be the earliest partition's, i.e. 0.
            Err(chunk[0])
        };
        assert_eq!(map_chunks(items, 4, f), Err(0));
    }
}
