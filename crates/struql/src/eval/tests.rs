//! Evaluator tests built around the paper's own examples.

use crate::eval::{EvalOptions, Evaluator};
use crate::parser::parse;
use strudel_graph::{ddl, FileKind, Graph, Value};
use strudel_repo::{Database, IndexLevel};

/// The Fig. 2 data graph fragment: two publications with irregular
/// attributes.
fn bib_db() -> Database {
    let g = ddl::parse(
        r#"
        collection Publications {
          default abstract   : text;
          default postscript : postscript;
        }
        object pub1 in Publications {
          title    : "Real-world data";
          year     : 1997;
          month    : "June";
          author   : "Mary Fernandez";
          author   : "Dan Suciu";
          category : "semistructured";
          abstract : "abs/pub1.txt";
        }
        object pub2 in Publications {
          title     : "Managing the web";
          year      : 1998;
          booktitle : "SIGMOD";
          author    : "Alon Levy";
          category  : "web";
          postscript: "ps/pub2.ps";
        }
    "#,
    )
    .unwrap();
    Database::from_graph(g, IndexLevel::Full)
}

/// The Fig. 3 site-definition query (homepage site).
const HOMEPAGE_QUERY: &str = r#"
    create RootPage(), AbstractsPage()
    link RootPage() -> "Abstracts" -> AbstractsPage()

    where Publications(x)
    create AbstractPage(x), PaperPresentation(x)
    link AbstractsPage() -> "Abstract" -> AbstractPage(x),
         AbstractPage(x) -> "Paper" -> PaperPresentation(x)
    { where x -> l -> v
      link PaperPresentation(x) -> l -> v }
    { where x -> "year" -> y
      create YearPage(y)
      link YearPage(y) -> "Year" -> y,
           YearPage(y) -> "Paper" -> PaperPresentation(x),
           RootPage() -> "YearPage" -> YearPage(y) }
    { where x -> "category" -> c
      create CategoryPage(c)
      link CategoryPage(c) -> "Category" -> c,
           CategoryPage(c) -> "Paper" -> PaperPresentation(x),
           RootPage() -> "CategoryPage" -> CategoryPage(c) }
    collect SitePages(AbstractPage(x)), SitePages(PaperPresentation(x))
"#;

#[test]
fn homepage_query_builds_fig4_site_graph() {
    let db = bib_db();
    let program = parse(HOMEPAGE_QUERY).unwrap();
    let result = Evaluator::new(&db).eval(&program).unwrap();
    let g = &result.graph;

    let root = result.skolem_node("RootPage", &[]).unwrap();
    let abstracts = result.skolem_node("AbstractsPage", &[]).unwrap();
    assert!(g.has_edge(root, g.label("Abstracts").unwrap(), &Value::Node(abstracts)));

    // One YearPage per distinct year, one CategoryPage per category.
    let y97 = result.skolem_node("YearPage", &[Value::Int(1997)]).unwrap();
    let y98 = result.skolem_node("YearPage", &[Value::Int(1998)]).unwrap();
    assert_ne!(y97, y98);
    assert!(result
        .skolem_node("CategoryPage", &[Value::string("web")])
        .is_some());

    // The PaperPresentation copies *all* attributes, whatever they are —
    // arc variables carry irregularity into the site graph (§6.2).
    let pub1 = db.graph().node_by_name("pub1").unwrap();
    let pres1 = result
        .skolem_node("PaperPresentation", &[Value::Node(pub1)])
        .unwrap();
    let month = g.label("month").unwrap();
    assert_eq!(
        g.first_attr(pres1, month).unwrap().as_str(),
        Some("June"),
        "pub1's month copied"
    );
    assert_eq!(g.attr_str(pres1, "author").count(), 2);
    let pub2 = db.graph().node_by_name("pub2").unwrap();
    let pres2 = result
        .skolem_node("PaperPresentation", &[Value::Node(pub2)])
        .unwrap();
    assert_eq!(g.attr(pres2, month).count(), 0, "pub2 has no month");
    assert_eq!(
        g.first_attr_str(pres2, "booktitle").unwrap().as_str(),
        Some("SIGMOD")
    );

    // Year pages link to the presentations of their year.
    let paper = g.label("Paper").unwrap();
    assert!(g.has_edge(y97, paper, &Value::Node(pres1)));
    assert!(g.has_edge(y98, paper, &Value::Node(pres2)));
    assert!(!g.has_edge(y97, paper, &Value::Node(pres2)));

    // Root links to both year pages.
    let yp = g.label("YearPage").unwrap();
    assert!(g.has_edge(root, yp, &Value::Node(y97)));
    assert!(g.has_edge(root, yp, &Value::Node(y98)));

    // collect gathered the per-publication pages.
    assert_eq!(g.members_str("SitePages").len(), 4);

    // New nodes: RootPage, AbstractsPage, 2×AbstractPage,
    // 2×PaperPresentation, 2×YearPage, 2×CategoryPage.
    assert_eq!(result.new_nodes.len(), 10);
}

#[test]
fn skolem_terms_deduplicate_across_rows_and_blocks() {
    let db = bib_db();
    let program = parse(
        r#"
        where Publications(x), x -> "year" -> y
        create YearPage(y)
        link YearPage(y) -> "Year" -> y

        where Publications(x), x -> "year" -> y
        create YearPage(y)
        collect Years(YearPage(y))
    "#,
    )
    .unwrap();
    let result = Evaluator::new(&db).eval(&program).unwrap();
    // Two distinct years → two pages, shared across the two blocks.
    assert_eq!(result.new_nodes.len(), 2);
    assert_eq!(result.graph.members_str("Years").len(), 2);
}

#[test]
fn textonly_query_copies_non_image_structure() {
    let g = ddl::parse(
        r#"
        object home in Root {
          title : "Home";
          pic   : image("me.gif");
          child : &sub;
        }
        object sub {
          title : "Sub";
          shot  : image("x.gif");
        }
    "#,
    )
    .unwrap();
    let db = Database::from_graph(g, IndexLevel::Full);
    let program = parse(
        r#"
        where Root(p), p -> * -> q, q -> l -> r, not(isImageFile(r))
        create New(p), New(q), New(r)
        link   New(q) -> l -> New(r)
        collect TextOnlyRoot(New(p))
    "#,
    )
    .unwrap();
    let result = Evaluator::new(&db).eval(&program).unwrap();
    let g2 = &result.graph;

    let roots = g2.members_str("TextOnlyRoot");
    assert_eq!(roots.len(), 1);
    let new_home = roots[0].as_node().unwrap();

    // The copy has title and child edges but no pic edge.
    assert_eq!(g2.attr_str(new_home, "title").count(), 1);
    assert_eq!(g2.attr_str(new_home, "child").count(), 1);
    assert_eq!(g2.attr_str(new_home, "pic").count(), 0);

    // The child copy exists and lost its image too.
    let new_sub = g2
        .first_attr_str(new_home, "child")
        .unwrap()
        .as_node()
        .unwrap();
    assert_eq!(g2.attr_str(new_sub, "shot").count(), 0);
    assert_eq!(g2.attr_str(new_sub, "title").count(), 1);

    // Copied titles wrap the original atomic values… as New(atomic) nodes?
    // No: New(r) for atomic r creates a node per distinct atomic value.
    // The original strings hang under the copies via their labels.
    let title_target = g2.first_attr_str(new_home, "title").unwrap();
    assert!(title_target.as_node().is_some(), "New(\"Home\") is a node");
}

#[test]
fn comparisons_coerce_at_runtime() {
    let db = bib_db();
    let program = parse(
        r#"
        where Publications(x), x -> "year" -> y, y >= "1998"
        create Recent(x)
        collect RecentPubs(Recent(x))
    "#,
    )
    .unwrap();
    let result = Evaluator::new(&db).eval(&program).unwrap();
    assert_eq!(result.graph.members_str("RecentPubs").len(), 1);
}

#[test]
fn constants_in_path_targets_select() {
    let db = bib_db();
    let program = parse(
        r#"
        where Publications(x), x -> "year" -> 1997
        create P(x)
        collect Out(P(x))
    "#,
    )
    .unwrap();
    let result = Evaluator::new(&db).eval(&program).unwrap();
    assert_eq!(result.graph.members_str("Out").len(), 1);
}

#[test]
fn builtin_predicates_filter() {
    let db = bib_db();
    let program = parse(
        r#"
        where Publications(x), x -> l -> v, isPostScript(v)
        create P(x)
        collect HasPs(P(x))
    "#,
    )
    .unwrap();
    let result = Evaluator::new(&db).eval(&program).unwrap();
    assert_eq!(result.graph.members_str("HasPs").len(), 1);
}

#[test]
fn negated_path_condition() {
    let db = bib_db();
    // Publications with no month attribute.
    let program = parse(
        r#"
        where Publications(x), not(x -> "month" -> m)
        create P(x)
        collect NoMonth(P(x))
    "#,
    )
    .unwrap();
    let result = Evaluator::new(&db).eval(&program).unwrap();
    assert_eq!(result.graph.members_str("NoMonth").len(), 1);
}

#[test]
fn arc_variables_join_on_label_equality() {
    let mut g = Graph::new();
    let a = g.add_named_node("a");
    let b = g.add_named_node("b");
    g.add_edge_str(a, "shared", Value::Int(1));
    g.add_edge_str(b, "shared", Value::Int(2));
    g.add_edge_str(a, "only_a", Value::Int(3));
    g.collect_str("L", a);
    g.collect_str("R", b);
    let db = Database::from_graph(g, IndexLevel::Full);

    // Labels appearing on members of both L and R.
    let program = parse(
        r#"
        where L(x), R(y), x -> l -> v, y -> l -> w
        create Common(l)
        collect CommonLabels(Common(l))
    "#,
    )
    .unwrap();
    let result = Evaluator::new(&db).eval(&program).unwrap();
    assert_eq!(result.graph.members_str("CommonLabels").len(), 1);
    let node = result
        .skolem_node("Common", &[Value::string("shared")])
        .unwrap();
    assert!(result.graph.node_name(node).is_some());
}

#[test]
fn link_with_arc_variable_copies_labels() {
    let db = bib_db();
    let program = parse(
        r#"
        where Publications(x), x -> l -> v
        create P(x)
        link P(x) -> l -> v
    "#,
    )
    .unwrap();
    let result = Evaluator::new(&db).eval(&program).unwrap();
    let pub1 = db.graph().node_by_name("pub1").unwrap();
    let p1 = result.skolem_node("P", &[Value::Node(pub1)]).unwrap();
    assert_eq!(
        result.graph.edges(p1).len(),
        db.graph().edges(pub1).len(),
        "every attribute copied exactly once"
    );
}

#[test]
fn output_edges_have_set_semantics() {
    // Duplicate edges in the input multigraph must not duplicate output
    // links: the bindings relation is a set of assignments.
    let mut g = Graph::new();
    let a = g.add_named_node("a");
    g.add_edge_str(a, "t", Value::Int(1));
    g.add_edge_str(a, "t", Value::Int(1)); // duplicate edge
    g.collect_str("C", a);
    let db = Database::from_graph(g, IndexLevel::Full);
    let program = parse(
        r#"
        where C(x), x -> "t" -> v
        create P(x)
        link P(x) -> "t" -> v
    "#,
    )
    .unwrap();
    let result = Evaluator::new(&db).eval(&program).unwrap();
    let p = result
        .skolem_node("P", &[Value::Node(db.graph().node_by_name("a").unwrap())])
        .unwrap();
    assert_eq!(result.graph.attr_str(p, "t").count(), 1);
}

#[test]
fn empty_collection_yields_empty_result() {
    let db = bib_db();
    let program = parse("where Ghost(x) create P(x) collect Out(P(x))").unwrap();
    let result = Evaluator::new(&db).eval(&program).unwrap();
    assert_eq!(result.new_nodes.len(), 0);
    assert_eq!(result.graph.members_str("Out").len(), 0);
}

#[test]
fn unoptimized_and_optimized_agree() {
    let db = bib_db();
    let program = parse(HOMEPAGE_QUERY).unwrap();
    let opt = Evaluator::new(&db).eval(&program).unwrap();
    let naive = Evaluator::with_options(&db, EvalOptions { optimize: false, ..Default::default() })
        .eval(&program)
        .unwrap();
    assert_eq!(opt.new_nodes.len(), naive.new_nodes.len());
    assert_eq!(opt.graph.edge_count(), naive.graph.edge_count());
    assert_eq!(
        opt.graph.members_str("SitePages").len(),
        naive.graph.members_str("SitePages").len()
    );
}

#[test]
fn index_levels_do_not_change_results() {
    let g = bib_db().into_graph();
    let program = parse(HOMEPAGE_QUERY).unwrap();
    let mut edge_counts = Vec::new();
    for level in [IndexLevel::None, IndexLevel::ExtensionOnly, IndexLevel::Full] {
        let db = Database::from_graph(g.clone(), level);
        let result = Evaluator::new(&db).eval(&program).unwrap();
        edge_counts.push((result.graph.edge_count(), result.new_nodes.len()));
    }
    assert_eq!(edge_counts[0], edge_counts[1]);
    assert_eq!(edge_counts[1], edge_counts[2]);
}

#[test]
fn query_composition_pipelines() {
    // Stage 1: build a small site. Stage 2 (applied to stage 1's output):
    // copy the site and add a navigation bar to each page — the suciu
    // example of §5.1.
    let db = bib_db();
    let stage1 = parse(
        r#"
        where Publications(x)
        create Page(x)
        link Page(x) -> "title" -> x
        collect Pages(Page(x))
    "#,
    )
    .unwrap();
    let r1 = Evaluator::new(&db).eval(&stage1).unwrap();

    let db2 = Database::from_graph(r1.graph, IndexLevel::Full);
    let stage2 = parse(
        r#"
        create NavBar()
        link NavBar() -> "home" -> "index.html"

        where Pages(p)
        create Wrapped(p)
        link Wrapped(p) -> "content" -> p,
             Wrapped(p) -> "nav" -> NavBar()
        collect WrappedPages(Wrapped(p))
    "#,
    )
    .unwrap();
    let r2 = Evaluator::new(&db2).eval(&stage2).unwrap();
    assert_eq!(r2.graph.members_str("WrappedPages").len(), 2);
    let nav = r2.skolem_node("NavBar", &[]).unwrap();
    for p in r2.graph.members_str("WrappedPages") {
        let w = p.as_node().unwrap();
        assert_eq!(
            r2.graph.first_attr_str(w, "nav"),
            Some(&Value::Node(nav)),
            "every page shares the same nav bar"
        );
    }
}

#[test]
fn immutability_is_enforced_at_runtime() {
    // Craft a program that passes static checks (link source symbol appears
    // in a create clause) but whose source resolves to an existing node at
    // run time — impossible through the public API, so simulate by linking
    // from a Skolem of an existing node and checking the *target* instead.
    // Here we assert the static analyzer already rejects the direct form.
    let err = parse("where Publications(x) link x -> \"a\" -> x").unwrap_err();
    assert!(err.message().contains("immutable"));
}

#[test]
fn rows_evaluated_is_reported() {
    let db = bib_db();
    let program = parse(HOMEPAGE_QUERY).unwrap();
    let result = Evaluator::new(&db).eval(&program).unwrap();
    assert!(result.rows_evaluated > 0);
}

#[test]
fn files_survive_into_site_graph() {
    let db = bib_db();
    let program = parse(
        r#"
        where Publications(x), x -> "abstract" -> a
        create P(x)
        link P(x) -> "abstract" -> a
    "#,
    )
    .unwrap();
    let result = Evaluator::new(&db).eval(&program).unwrap();
    let pub1 = db.graph().node_by_name("pub1").unwrap();
    let p = result.skolem_node("P", &[Value::Node(pub1)]).unwrap();
    assert!(result
        .graph
        .first_attr_str(p, "abstract")
        .unwrap()
        .is_file_kind(FileKind::Text));
}

#[test]
fn eval_where_bindings_with_seeds() {
    let db = bib_db();
    let ev = Evaluator::new(&db);
    let conds = parse(
        r#"where Publications(x), x -> "year" -> y create P(x)"#,
    )
    .unwrap()
    .blocks[0]
        .where_
        .clone();

    // Unseeded: one row per (publication, year).
    let (vars, rows) = ev.eval_where_bindings(&conds, &[]).unwrap();
    assert_eq!(rows.len(), 2);
    assert!(vars.contains(&"x".to_string()));
    assert!(vars.contains(&"y".to_string()));

    // Seeded with a year: only the 1998 publication matches.
    let (vars, rows) = ev
        .eval_where_bindings(&conds, &[("y".to_string(), Value::Int(1998))])
        .unwrap();
    assert_eq!(rows.len(), 1);
    let x_slot = vars.iter().position(|v| v == "x").unwrap();
    let x = rows[0][x_slot].as_ref().unwrap().as_node().unwrap();
    assert_eq!(db.graph().node_name(x), Some("pub2"));

    // Seeded with an impossible value: empty.
    let (_, rows) = ev
        .eval_where_bindings(&conds, &[("y".to_string(), Value::Int(1890))])
        .unwrap();
    assert!(rows.is_empty());
}

#[test]
fn comparison_operators_cover_all_cases() {
    let db = bib_db();
    let run = |cond: &str| -> usize {
        let q = format!(
            r#"where Publications(x), x -> "year" -> y, {cond} create P(x) collect Out(P(x))"#
        );
        let program = parse(&q).unwrap();
        Evaluator::new(&db)
            .eval(&program)
            .unwrap()
            .graph
            .members_str("Out")
            .len()
    };
    assert_eq!(run("y = 1997"), 1);
    assert_eq!(run("y != 1997"), 1);
    assert_eq!(run("y < 1998"), 1);
    assert_eq!(run("y <= 1998"), 2);
    assert_eq!(run("y > 1997"), 1);
    assert_eq!(run("y >= 1997"), 2);
    // Incomparable pair: a year never equals (or un-equals) a non-numeric
    // string — both the predicate and its negation-of-equality are false.
    assert_eq!(run(r#"y = "next year""#), 0);
    assert_eq!(run(r#"y != "next year""#), 0);
}

#[test]
fn constructor_resume_builds_on_prior_results() {
    use crate::Constructor;
    let db = bib_db();
    let program = parse(
        r#"where Publications(x) create P(x) link P(x) -> "src" -> x collect Out(P(x))"#,
    )
    .unwrap();
    let first = Evaluator::new(&db).eval(&program).unwrap();
    let pub1 = db.graph().node_by_name("pub1").unwrap();
    let page = first.skolem_node("P", &[Value::Node(pub1)]).unwrap();

    let mut c = Constructor::resume(first);
    // Re-applying the same construction row is a no-op (set semantics).
    let block = &program.blocks[0];
    let vars = vec!["x".to_string()];
    let rows = vec![vec![Some(Value::Node(pub1))]];
    let before = c.graph().edge_count();
    c.apply_block(block, &vars, &rows).unwrap();
    assert_eq!(c.graph().edge_count(), before);
    assert_eq!(c.skolem_node("P", &[Value::Node(pub1)]), Some(page));
    let done = c.finish();
    assert_eq!(done.graph.members_str("Out").len(), 2);
}

#[test]
fn indexed_lookups_respect_dynamic_coercion() {
    // Data stores years under mixed types; queries bind targets with the
    // "other" type. Indexed fast paths (inverted extension index, global
    // value index) must agree with coercing scans at every index level.
    let mut g = Graph::new();
    let a = g.add_named_node("a");
    let b = g.add_named_node("b");
    let c = g.add_named_node("c");
    g.add_edge_str(a, "year", Value::Int(1998));
    g.add_edge_str(b, "year", Value::string("1998"));
    g.add_edge_str(c, "year", Value::string("07"));
    g.collect_str("Pubs", a);
    g.collect_str("Pubs", b);
    g.collect_str("Pubs", c);

    let queries = [
        // Bound string constant vs Int data (label step).
        r#"where Pubs(x), x -> "year" -> "1998" create P(x) collect Out(P(x))"#,
        // Bound int constant vs Str data, including a nonstandard numeral.
        r#"where Pubs(x), x -> "year" -> 1998 create P(x) collect Out(P(x))"#,
        r#"where Pubs(x), x -> "year" -> 7 create P(x) collect Out(P(x))"#,
        // Arc-variable value lookup (global value index path).
        r#"where x -> l -> "1998" create P(x) collect Out(P(x))"#,
        r#"where x -> l -> 1998 create P(x) collect Out(P(x))"#,
    ];
    for q in queries {
        let program = parse(q).unwrap();
        let mut counts = Vec::new();
        for level in [IndexLevel::None, IndexLevel::ExtensionOnly, IndexLevel::Full] {
            let db = Database::from_graph(g.clone(), level);
            let r = Evaluator::new(&db).eval(&program).unwrap();
            counts.push(r.graph.members_str("Out").len());
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "index level changed results for {q}: {counts:?}"
        );
        assert!(counts[0] > 0, "query should match something: {q}");
    }
    // Spot value: the string-constant query matches both 1998 holders.
    let db = Database::from_graph(g.clone(), IndexLevel::Full);
    let program = parse(queries[0]).unwrap();
    let r = Evaluator::new(&db).eval(&program).unwrap();
    assert_eq!(r.graph.members_str("Out").len(), 2);
}

/// A database big enough that the where-stage relations clear the
/// planner's partitioning threshold (hundreds of rows per condition).
fn wide_db() -> Database {
    let mut g = Graph::new();
    for i in 0..400 {
        let n = g.add_named_node(&format!("pub{i}"));
        g.add_edge_str(n, "title", Value::string(format!("Paper {i}")));
        g.add_edge_str(n, "year", Value::Int(1980 + (i % 20)));
        g.add_edge_str(n, "category", Value::string(format!("cat{}", i % 7)));
        g.add_edge_str(n, "author", Value::string(format!("Author {}", i % 50)));
        g.collect_str("Publications", n);
    }
    Database::from_graph(g, IndexLevel::Full)
}

#[test]
fn parallel_evaluation_is_byte_identical_to_sequential() {
    use crate::par::Parallelism;
    let db = wide_db();
    let program = parse(HOMEPAGE_QUERY).unwrap();
    let seq = Evaluator::new(&db).eval(&program).unwrap();
    let seq_ddl = ddl::print(&seq.graph);
    for workers in [2, 4, 8] {
        let par = Evaluator::with_options(
            &db,
            EvalOptions {
                parallelism: Parallelism::Threads(workers),
                ..Default::default()
            },
        )
        .eval(&program)
        .unwrap();
        // Byte-identical site graph and identical Skolem oid assignment —
        // not merely isomorphic.
        assert_eq!(ddl::print(&par.graph), seq_ddl, "workers={workers}");
        assert_eq!(par.new_nodes, seq.new_nodes, "workers={workers}");
        assert_eq!(par.rows_evaluated, seq.rows_evaluated, "workers={workers}");
    }
}

#[test]
fn parallel_where_bindings_match_sequential() {
    use crate::par::Parallelism;
    let db = wide_db();
    let program = parse(
        r#"where Publications(x), x -> "year" -> y, y >= 1990, x -> "category" -> c
           create P(x)"#,
    )
    .unwrap();
    let conds = &program.blocks[0].where_;
    let seq = Evaluator::new(&db).eval_where_bindings(conds, &[]).unwrap();
    let par = Evaluator::with_options(
        &db,
        EvalOptions {
            parallelism: Parallelism::Auto,
            ..Default::default()
        },
    )
    .eval_where_bindings(conds, &[])
    .unwrap();
    assert_eq!(seq.0, par.0);
    assert_eq!(seq.1, par.1);
    assert!(!seq.1.is_empty());
}

#[test]
fn parallel_errors_are_deterministic() {
    use crate::par::Parallelism;
    // `y` is never bound, so the comparison errors at evaluation time —
    // after `x -> l -> v` has expanded the relation to 1600 rows, well
    // past the partitioning threshold. Every worker chunk fails; the
    // merged error must match the sequential engine's.
    // (`eval_where_bindings` plans bare conditions without the full
    // program's static analysis, so the unbound comparison reaches the
    // evaluator.)
    let db = wide_db();
    let program =
        parse(r#"where Publications(x), x -> l -> v, y >= 1995 create P(x)"#).unwrap_err();
    assert!(program.to_string().contains("not bound"));
    let conds = crate::parser::parse_unchecked(
        r#"where Publications(x), x -> l -> v, y >= 1995 create P(x)"#,
    )
    .unwrap()
    .blocks[0]
        .where_
        .clone();
    let seq_err = Evaluator::new(&db)
        .eval_where_bindings(&conds, &[])
        .unwrap_err()
        .to_string();
    let par_err = Evaluator::with_options(
        &db,
        EvalOptions {
            parallelism: Parallelism::Threads(4),
            ..Default::default()
        },
    )
    .eval_where_bindings(&conds, &[])
    .unwrap_err()
    .to_string();
    assert_eq!(seq_err, par_err);
    assert!(
        seq_err.contains("'y'"),
        "error should name the offending variable: {seq_err}"
    );
}
