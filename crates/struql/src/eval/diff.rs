//! Differential evaluation of prepared where-clauses.
//!
//! Instead of re-running a guard query after a graph delta, [`diff_where`]
//! propagates the delta through the compiled plan as a stream of signed
//! `(row, count)` diffs. Per plan step, with `R` the pre-delta relation
//! after the steps so far and `D` the accumulated diff (so the post-delta
//! relation is `R + D` as a multiset), applying condition `A` yields
//!
//! ```text
//! D'  =  D ⋈ A_new  +  R ⋈ A_new  −  R ⋈ A_old
//! R'  =  R ⋈ A_old
//! ```
//!
//! which is exactly `ΔL⋈R + L⋈ΔR + ΔL⋈ΔR` folded into two engine calls:
//! `R ⋈ A_new − R ⋈ A_old` is `L⋈ΔR` computed by cancellation, and
//! `D ⋈ A_new` covers both `ΔL⋈R` and `ΔL⋈ΔR`. Every join runs the real
//! operator implementations in [`atoms`] against the old or new database
//! snapshot, so coercion, negation, builtin, and batched-regex semantics
//! are identical to full evaluation by construction — including Kleene
//! closures, whose bound-destination probes go through the reverse
//! adjacency index and whose retractions fall out of the signed
//! `A_new − A_old` pair with exact counts.
//!
//! When a condition cannot be affected by the delta (its labels and
//! collections are disjoint from the delta's — see [`DeltaTouch`]), the
//! two `R` terms cancel and the step degenerates to `D' = D ⋈ A` — the
//! cheap monotone case. When additionally `D` is empty and no later step
//! is touched, the diff is empty and evaluation stops early.
//!
//! Counts are signed and coalesced after every touched step, so a
//! retraction cancels exactly the derivations the removed fact supported
//! (count-based deletion rather than delete-and-rederive): a row whose
//! derivations all disappear nets a negative count, one that keeps a
//! surviving derivation nets zero and is dropped from the diff.

use super::{atoms, Evaluator, Row};
use crate::ast::{Condition, PathSpec};
use crate::error::StruqlResult;
use crate::plan;
use std::collections::{HashMap, HashSet};
use strudel_graph::{GraphDelta, Value};

/// One signed bindings row: the row plus how many derivations the delta
/// added (positive) or retracted (negative).
pub type SignedRow = (Row, i64);

/// Which edge labels and collection names a delta touches — the analysis
/// that decides, per condition, whether the differential step needs the
/// two-sided `A_new − A_old` form or the cheap `D ⋈ A` form.
#[derive(Clone, Debug, Default)]
pub struct DeltaTouch {
    edge_labels: HashSet<String>,
    collections: HashSet<String>,
}

impl DeltaTouch {
    /// The touch-set of `delta`.
    pub fn of(delta: &GraphDelta) -> Self {
        DeltaTouch {
            edge_labels: delta.edge_labels().map(str::to_owned).collect(),
            collections: delta.collections().map(str::to_owned).collect(),
        }
    }

    /// Whether the delta touches no edge labels and no collections (it may
    /// still create nodes, which no condition can observe until an edge or
    /// membership references them).
    pub fn is_empty(&self) -> bool {
        self.edge_labels.is_empty() && self.collections.is_empty()
    }

    /// Whether evaluating `cond` could produce different rows before and
    /// after the delta. Conservative on `true`; exact on `false`.
    pub fn touches_cond(&self, cond: &Condition) -> bool {
        match cond {
            Condition::Collection { name, .. } => self.collections.contains(name),
            Condition::Path { path, .. } => match path {
                // An arc variable matches every edge of the source node.
                PathSpec::ArcVar(_) => !self.edge_labels.is_empty(),
                PathSpec::Regex(r) => {
                    self.edge_labels.iter().any(|l| r.could_traverse(l))
                }
            },
            // Pure value tests — database-independent.
            Condition::Compare { .. } | Condition::Builtin { .. } => false,
            // Negation is a per-row filter; it changes exactly when its
            // inner existential does. The two-sided form handles the
            // non-monotonicity (A_new − A_old is signed either way).
            Condition::Not(inner, _) => self.touches_cond(inner),
        }
    }

    /// Whether any condition in the list is touched.
    pub fn touches(&self, conds: &[Condition]) -> bool {
        conds.iter().any(|c| self.touches_cond(c))
    }
}

/// The result of a differential evaluation: the variable slot names (seeds
/// first, identical to [`Evaluator::eval_where_bindings`]) and the signed
/// rows whose application to the pre-delta relation yields the post-delta
/// relation as a multiset. Zero-count rows are already dropped.
#[derive(Clone, Debug)]
pub struct DiffOutcome {
    /// Variable names in slot order.
    pub vars: Vec<String>,
    /// Coalesced signed rows, in first-derivation order.
    pub rows: Vec<SignedRow>,
}

/// Differentially evaluates a condition list: returns the signed row diff
/// between evaluating on `new` (post-delta) and on `old` (pre-delta), with
/// the given seed bindings. `old` and `new` must be snapshots of the same
/// database immediately before and after the delta `touch` was built from:
/// rows flowing through the plan reference oids that must be valid in both
/// graphs (deltas never delete nodes, so this holds for any applied
/// [`GraphDelta`]).
pub fn diff_where(
    old: &Evaluator<'_>,
    new: &Evaluator<'_>,
    conds: &[Condition],
    seed: &[(String, Value)],
    touch: &DeltaTouch,
) -> StruqlResult<DiffOutcome> {
    let mut vars: Vec<String> = seed.iter().map(|(n, _)| n.clone()).collect();
    for cond in conds {
        atoms::introduce_vars(cond, &mut vars);
    }
    let width = vars.len();
    let mut seed_row: Row = vec![None; width];
    for (i, (_, v)) in seed.iter().enumerate() {
        seed_row[i] = Some(v.clone());
    }

    let bound: HashSet<String> = seed.iter().map(|(n, _)| n.clone()).collect();
    // One plan drives both sides: join order does not affect the result,
    // and planning against the pre-delta statistics keeps this O(|plan|).
    let plan = plan::plan(conds, &bound, old.db(), old.opts.optimize);

    // R: the pre-delta relation so far (unit counts — exactly the rows the
    // plain engine would hold at this step). D: the signed diff so far.
    let mut r_old: Vec<Row> = vec![seed_row];
    let mut diff: Vec<SignedRow> = Vec::new();
    let tracing = strudel_trace::enabled();

    for (step, &idx) in plan.order.iter().enumerate() {
        let cond = &conds[idx];
        let touched = touch.touches_cond(cond);
        if !touched && diff.is_empty() {
            // Nothing differs yet and this step cannot introduce a
            // difference. If no later step can either, the diff is empty.
            let rest_touched = plan.order[step + 1..]
                .iter()
                .any(|&j| touch.touches_cond(&conds[j]));
            if !rest_touched {
                if tracing {
                    strudel_trace::count("struql.diff.steps.skipped", 1);
                }
                return Ok(DiffOutcome { vars, rows: Vec::new() });
            }
        }
        if touched {
            if tracing {
                strudel_trace::count("struql.diff.steps.touched", 1);
            }
            let d_new = expand_signed(new, cond, &diff, &vars, &plan, step)?;
            let r_via_new =
                atoms::apply_partitioned(new, cond, r_old.clone(), &vars, &plan, step)?;
            let r_via_old = atoms::apply_partitioned(old, cond, r_old, &vars, &plan, step)?;
            let mut next = d_new;
            next.extend(r_via_new.into_iter().map(|r| (r, 1)));
            next.extend(r_via_old.iter().cloned().map(|r| (r, -1)));
            diff = coalesce(next);
            r_old = r_via_old;
        } else {
            if tracing {
                strudel_trace::count("struql.diff.steps.skipped", 1);
            }
            diff = expand_signed(new, cond, &diff, &vars, &plan, step)?;
            r_old = atoms::apply_partitioned(old, cond, r_old, &vars, &plan, step)?;
        }
        if diff.is_empty() && r_old.is_empty() {
            break;
        }
    }

    if tracing {
        let added: i64 = diff.iter().map(|(_, c)| (*c).max(0)).sum();
        let retracted: i64 = diff.iter().map(|(_, c)| (-*c).max(0)).sum();
        strudel_trace::count("struql.diff.rows.added", added as u64);
        strudel_trace::count("struql.diff.rows.retracted", retracted as u64);
    }
    Ok(DiffOutcome { vars, rows: diff })
}

/// Applies one condition to a signed relation through the real operator
/// implementation. Rows are batched in consecutive runs of equal count —
/// `apply` emits row *i*'s extensions before row *i+1*'s, so every output
/// of a run inherits the run's count.
fn expand_signed(
    ev: &Evaluator<'_>,
    cond: &Condition,
    rows: &[SignedRow],
    vars: &[String],
    plan: &plan::Plan,
    step: usize,
) -> StruqlResult<Vec<SignedRow>> {
    let mut out: Vec<SignedRow> = Vec::new();
    let mut i = 0;
    while i < rows.len() {
        let count = rows[i].1;
        let mut j = i;
        while j < rows.len() && rows[j].1 == count {
            j += 1;
        }
        let run: Vec<Row> = rows[i..j].iter().map(|(r, _)| r.clone()).collect();
        let expanded = atoms::apply_partitioned(ev, cond, run, vars, plan, step)?;
        out.extend(expanded.into_iter().map(|r| (r, count)));
        i = j;
    }
    Ok(out)
}

/// Merges duplicate rows by summing counts, dropping exact cancellations.
/// Output order is each surviving row's first occurrence — deterministic
/// given deterministic operator output.
fn coalesce(rows: Vec<SignedRow>) -> Vec<SignedRow> {
    let mut index: HashMap<Row, usize> = HashMap::with_capacity(rows.len());
    let mut out: Vec<SignedRow> = Vec::with_capacity(rows.len());
    for (row, count) in rows {
        match index.get(&row) {
            Some(&slot) => out[slot].1 += count,
            None => {
                index.insert(row.clone(), out.len());
                out.push((row, count));
            }
        }
    }
    out.retain(|(_, c)| *c != 0);
    out
}

/// Seed bindings a schema-edge guard is evaluated with, re-exported shape
/// helper: `true` when every seed variable appears in `vars` at its slot.
/// (Used by callers to sanity-check stored state before applying a diff.)
pub fn seeds_match(vars: &[String], seed: &[(String, Value)]) -> bool {
    seed.len() <= vars.len() && seed.iter().zip(vars).all(|((n, _), v)| n == v)
}

/// Applies a coalesced signed diff to a counted row store in place:
/// positive counts increment (appending unseen rows in diff order),
/// negative counts decrement and drop rows reaching zero. Returns `false`
/// — leaving `store` in an unspecified but memory-safe state — when a
/// retraction targets a row the store does not hold with sufficient count;
/// callers then fall back to full re-evaluation.
pub fn apply_diff(store: &mut Vec<SignedRow>, diff: &[SignedRow]) -> bool {
    for (row, count) in diff {
        match store.iter_mut().find(|(r, _)| r == row) {
            Some(entry) => {
                entry.1 += count;
                if entry.1 < 0 {
                    return false;
                }
            }
            None => {
                if *count < 0 {
                    return false;
                }
                store.push((row.clone(), *count));
            }
        }
    }
    store.retain(|(_, c)| *c != 0);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_graph::ddl;
    use strudel_repo::{Database, IndexLevel};

    fn db(src: &str) -> Database {
        Database::from_graph(ddl::parse(src).unwrap(), IndexLevel::Full)
    }

    fn after(old: &Database, delta: &GraphDelta) -> Database {
        let mut g = old.graph().clone();
        delta.apply(&mut g).unwrap();
        Database::from_graph(g, IndexLevel::Full)
    }

    /// Multiset difference of full evaluations — the oracle.
    fn oracle_diff(
        old: &Database,
        new: &Database,
        conds: &[Condition],
        seed: &[(String, Value)],
    ) -> HashMap<Row, i64> {
        let (_, old_rows) = Evaluator::new(old).eval_where_bindings(conds, seed).unwrap();
        let (_, new_rows) = Evaluator::new(new).eval_where_bindings(conds, seed).unwrap();
        let mut m: HashMap<Row, i64> = HashMap::new();
        for r in new_rows {
            *m.entry(r).or_insert(0) += 1;
        }
        for r in old_rows {
            *m.entry(r).or_insert(0) -= 1;
        }
        m.retain(|_, c| *c != 0);
        m
    }

    fn check(old: &Database, delta: &GraphDelta, query: &str, seed: &[(String, Value)]) {
        let conds = crate::parse(&format!("where {query} collect Out(x)"))
            .map(|p| p.blocks[0].where_.clone())
            .unwrap();
        let new = after(old, delta);
        let touch = DeltaTouch::of(delta);
        let out = diff_where(
            &Evaluator::new(old),
            &Evaluator::new(&new),
            &conds,
            seed,
            &touch,
        )
        .unwrap();
        let got: HashMap<Row, i64> = out.rows.into_iter().collect();
        assert_eq!(got, oracle_diff(old, &new, &conds, seed), "query: {query}");
    }

    #[test]
    fn insert_produces_positive_rows() {
        let old = db(r#"object p1 in Pubs { title : "Alpha"; }"#);
        let p1 = old.graph().node_by_name("p1").unwrap();
        let mut delta = GraphDelta::new();
        delta.add_edge(p1, "title", Value::string("Alpha v2"));
        check(&old, &delta, r#"Pubs(x), x -> "title" -> t"#, &[]);
    }

    #[test]
    fn retract_produces_negative_rows() {
        let old = db(r#"object p1 in Pubs { title : "Alpha"; year : 1997; }"#);
        let p1 = old.graph().node_by_name("p1").unwrap();
        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "title", Value::string("Alpha"));
        check(&old, &delta, r#"Pubs(x), x -> "title" -> t"#, &[]);
    }

    #[test]
    fn irrelevant_delta_yields_empty_diff_without_expansion() {
        let old = db(r#"object p1 in Pubs { title : "Alpha"; }"#);
        let p1 = old.graph().node_by_name("p1").unwrap();
        let mut delta = GraphDelta::new();
        delta.add_edge(p1, "note", Value::string("draft"));
        let conds = crate::parse(r#"where Pubs(x), x -> "title" -> t collect Out(x)"#)
            .map(|p| p.blocks[0].where_.clone())
            .unwrap();
        let touch = DeltaTouch::of(&delta);
        assert!(!touch.touches(&conds));
        let new = after(&old, &delta);
        let out = diff_where(
            &Evaluator::new(&old),
            &Evaluator::new(&new),
            &conds,
            &[],
            &touch,
        )
        .unwrap();
        assert!(out.rows.is_empty());
    }

    #[test]
    fn kleene_retraction_cancels_exactly() {
        // Two derivations of reachability root→b (direct rel edge and via
        // a); removing one leaves the row derivable, so the diff nets the
        // lost derivation count, and the *membership* row survives.
        let old = db(
            r#"
            object root in Roots { rel : &a; rel : &b; }
            object a { rel : &b; }
            object b { label : "b"; }
        "#,
        );
        let a = old.graph().node_by_name("a").unwrap();
        let b = old.graph().node_by_name("b").unwrap();
        let mut delta = GraphDelta::new();
        delta.remove_edge(a, "rel", Value::Node(b));
        check(&old, &delta, r#"Roots(x), x -> "rel"* -> y"#, &[]);
    }

    #[test]
    fn kleene_insertion_through_middle_of_paths() {
        let old = db(
            r#"
            object root in Roots { rel : &a; }
            object a { label : "a"; }
            object b { label : "b"; }
        "#,
        );
        let a = old.graph().node_by_name("a").unwrap();
        let b = old.graph().node_by_name("b").unwrap();
        let mut delta = GraphDelta::new();
        delta.add_edge(a, "rel", Value::Node(b));
        check(&old, &delta, r#"Roots(x), x -> "rel"* -> y"#, &[]);
    }

    #[test]
    fn negation_diffs_both_directions() {
        let old = db(
            r#"
            object p1 in Pubs { title : "Alpha"; hidden : true; }
            object p2 in Pubs { title : "Beta"; }
        "#,
        );
        let p1 = old.graph().node_by_name("p1").unwrap();
        let p2 = old.graph().node_by_name("p2").unwrap();
        // p1 becomes visible, p2 becomes hidden: one positive and one
        // negative row through the not() filter.
        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "hidden", Value::Bool(true));
        delta.add_edge(p2, "hidden", Value::Bool(true));
        check(&old, &delta, r#"Pubs(x), not(x -> "hidden" -> h)"#, &[]);
    }

    #[test]
    fn seeded_diff_localizes_to_the_seed() {
        let old = db(
            r#"
            object p1 in Pubs { title : "Alpha"; }
            object p2 in Pubs { title : "Beta"; }
        "#,
        );
        let p1 = old.graph().node_by_name("p1").unwrap();
        let p2 = old.graph().node_by_name("p2").unwrap();
        let mut delta = GraphDelta::new();
        delta.add_edge(p1, "title", Value::string("Alpha v2"));
        let seed = vec![("x".to_owned(), Value::Node(p2))];
        check(&old, &delta, r#"Pubs(x), x -> "title" -> t"#, &seed);
        let conds = crate::parse(r#"where Pubs(x), x -> "title" -> t collect Out(x)"#)
            .map(|p| p.blocks[0].where_.clone())
            .unwrap();
        let new = after(&old, &delta);
        let out = diff_where(
            &Evaluator::new(&old),
            &Evaluator::new(&new),
            &conds,
            &seed,
            &DeltaTouch::of(&delta),
        )
        .unwrap();
        assert!(out.rows.is_empty(), "p2 is unaffected by p1's edit");
    }

    #[test]
    fn mixed_insert_retract_coalesces() {
        let old = db(r#"object p1 in Pubs { title : "Alpha"; }"#);
        let p1 = old.graph().node_by_name("p1").unwrap();
        let mut delta = GraphDelta::new();
        delta.remove_edge(p1, "title", Value::string("Alpha"));
        delta.add_edge(p1, "title", Value::string("Alpha"));
        // Net no-op: retraction and re-insertion of the same fact.
        check(&old, &delta, r#"Pubs(x), x -> "title" -> t"#, &[]);
    }

    #[test]
    fn arc_variable_conditions_are_touched_by_any_edge() {
        let old = db(r#"object p1 in Pubs { title : "Alpha"; }"#);
        let p1 = old.graph().node_by_name("p1").unwrap();
        let mut delta = GraphDelta::new();
        delta.add_edge(p1, "anything", Value::Int(7));
        check(&old, &delta, r#"Pubs(x), x -> l -> v"#, &[]);
    }

    #[test]
    fn new_node_with_membership_and_edges() {
        let old = db(r#"object p1 in Pubs { title : "Alpha"; }"#);
        let base = old.graph().node_count();
        let mut delta = GraphDelta::new();
        delta.add_node(Some("p2"));
        let p2 = strudel_graph::Oid::from_index(base);
        delta.add_edge(p2, "title", Value::string("Beta"));
        delta.collect("Pubs", Value::Node(p2));
        check(&old, &delta, r#"Pubs(x), x -> "title" -> t"#, &[]);
    }

    #[test]
    fn apply_diff_tracks_counts_and_rejects_underflow() {
        let row_a: Row = vec![Some(Value::Int(1))];
        let row_b: Row = vec![Some(Value::Int(2))];
        let mut store: Vec<SignedRow> = vec![(row_a.clone(), 2)];
        assert!(apply_diff(&mut store, &[(row_a.clone(), -1), (row_b.clone(), 1)]));
        assert_eq!(store, vec![(row_a.clone(), 1), (row_b.clone(), 1)]);
        assert!(apply_diff(&mut store, &[(row_a.clone(), -1)]));
        assert_eq!(store, vec![(row_b.clone(), 1)]);
        // Retracting a row the store never held signals fallback.
        assert!(!apply_diff(&mut store, &[(row_a, -1)]));
    }
}
